//! The Exploration module of QB2OLAP (Section III-B, Figure 5).
//!
//! The Exploration module "allows to choose a data cube (represented in
//! QB4OLAP) among a collection of cubes stored in an endpoint and, in a
//! user-friendly fashion, navigate its dimension structures and instances".
//! The original demo renders this with D3.js; here the same information is
//! exposed as a library API plus text / DOT renderers used by the runnable
//! examples.
//!
//! Navigation has two serving paths. Opened plainly
//! ([`CubeExplorer::open`]), every step issues SPARQL, as in the paper.
//! Opened on a shared [`cubestore::CubeCatalog`]
//! ([`CubeExplorer::open_with_catalog`]), member listings, counts and
//! roll-up navigation are served from the same live columnar cube the
//! Querying module executes on — no per-step SPARQL — while the SPARQL
//! path stays available (`*_via_sparql`) as a differential oracle.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use cubestore::{CubeCatalog, CubeStoreError, MaterializedCube};
use qb4olap::{member_count, members_of_level, rollup_pairs, CubeSchema, Qb4olapError};
use rdf::vocab::rdfs;
use rdf::{Iri, Term};
use sparql::Endpoint;

/// Errors raised by the Exploration module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplorerError {
    /// The QB4OLAP layer failed.
    Schema(String),
    /// A SPARQL query failed.
    Sparql(String),
    /// The columnar serving layer failed.
    Columnar(String),
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplorerError::Schema(m) => write!(f, "exploration schema error: {m}"),
            ExplorerError::Sparql(m) => write!(f, "exploration SPARQL error: {m}"),
            ExplorerError::Columnar(m) => write!(f, "exploration columnar error: {m}"),
        }
    }
}

impl std::error::Error for ExplorerError {}

impl From<Qb4olapError> for ExplorerError {
    fn from(e: Qb4olapError) -> Self {
        ExplorerError::Schema(e.to_string())
    }
}

impl From<sparql::SparqlError> for ExplorerError {
    fn from(e: sparql::SparqlError) -> Self {
        ExplorerError::Sparql(e.to_string())
    }
}

impl From<qb::QbError> for ExplorerError {
    fn from(e: qb::QbError) -> Self {
        ExplorerError::Schema(e.to_string())
    }
}

impl From<CubeStoreError> for ExplorerError {
    fn from(e: CubeStoreError) -> Self {
        ExplorerError::Columnar(e.to_string())
    }
}

/// A cube available for exploration on the endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeSummary {
    /// The dataset IRI.
    pub dataset: Iri,
    /// Its label, if any.
    pub label: Option<String>,
    /// Number of observations.
    pub observations: usize,
    /// Whether a QB4OLAP schema is available (i.e. the cube was enriched).
    pub enriched: bool,
}

/// Lists the cubes stored on an endpoint, marking those that already carry
/// QB4OLAP semantics.
pub fn list_cubes(endpoint: &dyn Endpoint) -> Result<Vec<CubeSummary>, ExplorerError> {
    let datasets = qb::list_datasets(endpoint)?;
    let mut out: Vec<CubeSummary> = Vec::with_capacity(datasets.len());
    for summary in datasets {
        // After enrichment a dataset points at two structures (the original
        // QB DSD and the generated QB4OLAP one); report each dataset once.
        if out.iter().any(|c| c.dataset == summary.dataset) {
            continue;
        }
        let enriched = qb4olap::schema_from_endpoint(endpoint, &summary.dataset).is_ok();
        out.push(CubeSummary {
            dataset: summary.dataset,
            label: summary.label,
            observations: summary.observations,
            enriched,
        });
    }
    Ok(out)
}

/// A member of a level, with its preferred display label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberInfo {
    /// The member term.
    pub member: Term,
    /// Its `rdfs:label`, or the IRI local name when no label exists (the
    /// descriptive-attribute gap the paper discusses).
    pub label: String,
}

/// The display label of a member, read from a level index's label store
/// (populated at materialization) with the local-name fallback the SPARQL
/// path uses.
fn label_from_index(index: &cubestore::LevelIndex, member: &Term) -> String {
    index
        .dictionary
        .id(member)
        .and_then(|id| index.attribute_value(&rdfs::label(), id))
        .and_then(|value| value.as_literal())
        .map(|literal| literal.lexical().to_string())
        .unwrap_or_else(|| member.display_label())
}

/// An interactive explorer over one enriched cube.
pub struct CubeExplorer<'e> {
    endpoint: &'e dyn Endpoint,
    schema: CubeSchema,
    /// When set, member navigation is served from the catalog's live
    /// columnar cube instead of per-step SPARQL.
    catalog: Option<Arc<CubeCatalog>>,
    /// Per-operation counters (`explorer.<op>`): the catalog's shared
    /// registry when catalog-backed, a private one otherwise.
    metrics: Arc<obs::MetricsRegistry>,
}

impl<'e> CubeExplorer<'e> {
    /// Opens a cube by reading its QB4OLAP schema from the endpoint. Every
    /// navigation step issues SPARQL (the paper's workflow); use
    /// [`Self::open_with_catalog`] for columnar serving.
    pub fn open(endpoint: &'e dyn Endpoint, dataset: &Iri) -> Result<Self, ExplorerError> {
        let schema = qb4olap::schema_from_endpoint(endpoint, dataset)?;
        Ok(CubeExplorer {
            endpoint,
            schema,
            catalog: None,
            metrics: Arc::new(obs::MetricsRegistry::default()),
        })
    }

    /// Opens a cube on a shared [`CubeCatalog`]: member listings, counts
    /// and roll-up navigation are answered from the catalog's live columns
    /// — the same representation the Querying module executes on — with no
    /// per-step SPARQL round-trips.
    pub fn open_with_catalog(
        endpoint: &'e dyn Endpoint,
        dataset: &Iri,
        catalog: Arc<CubeCatalog>,
    ) -> Result<Self, ExplorerError> {
        let schema = qb4olap::schema_from_endpoint(endpoint, dataset)?;
        let metrics = catalog.metrics().clone();
        Ok(CubeExplorer {
            endpoint,
            schema,
            catalog: Some(catalog),
            metrics,
        })
    }

    /// Opens a cube from an already materialised schema.
    pub fn with_schema(endpoint: &'e dyn Endpoint, schema: CubeSchema) -> Self {
        CubeExplorer {
            endpoint,
            schema,
            catalog: None,
            metrics: Arc::new(obs::MetricsRegistry::default()),
        }
    }

    /// Opens a cube from an already materialised schema on a shared
    /// catalog — no per-open SPARQL introspection, columnar navigation
    /// from the shared live columns. The HTTP server opens one of these
    /// per exploration request against its schema cache.
    pub fn with_schema_and_catalog(
        endpoint: &'e dyn Endpoint,
        schema: CubeSchema,
        catalog: Arc<CubeCatalog>,
    ) -> Self {
        let metrics = catalog.metrics().clone();
        CubeExplorer {
            endpoint,
            schema,
            catalog: Some(catalog),
            metrics,
        }
    }

    /// The cube schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// The metrics registry this explorer's per-operation counters live in
    /// (shared with the catalog when catalog-backed).
    pub fn metrics(&self) -> &Arc<obs::MetricsRegistry> {
        &self.metrics
    }

    /// Counts one navigation operation under `explorer.<op>`.
    fn count_op(&self, op: &str) {
        self.metrics.counter(&format!("explorer.{op}")).inc();
    }

    /// True if navigation is served from the columnar catalog.
    pub fn serves_from_columns(&self) -> bool {
        self.catalog.is_some()
    }

    /// A pinned, never-waiting snapshot of the cube (base plus delta
    /// overlay), when catalog-backed. Navigation built on a snapshot keeps
    /// serving while structural maintenance folds in the background.
    pub fn snapshot(&self) -> Result<Option<cubestore::CubeSnapshot>, ExplorerError> {
        match &self.catalog {
            Some(catalog) => Ok(Some(catalog.serve_snapshot(self.endpoint, &self.schema)?)),
            None => Ok(None),
        }
    }

    /// The up-to-date columnar cube, when catalog-backed.
    fn cube(&self) -> Result<Option<Arc<MaterializedCube>>, ExplorerError> {
        match &self.catalog {
            Some(catalog) => Ok(Some(catalog.serve(self.endpoint, &self.schema)?)),
            None => Ok(None),
        }
    }

    /// A summary of this cube (the entry the cube chooser displays). Served
    /// from the catalog's columns when available.
    pub fn summary(&self) -> Result<CubeSummary, ExplorerError> {
        self.count_op("summary");
        if let Some(cube) = self.cube()? {
            return Ok(CubeSummary {
                dataset: self.schema.dataset.clone(),
                label: cube.dataset_label().map(str::to_string),
                observations: cube.stats().observations_seen,
                enriched: true,
            });
        }
        let summaries = qb::list_datasets(self.endpoint)?;
        summaries
            .into_iter()
            .find(|s| s.dataset == self.schema.dataset)
            .map(|s| CubeSummary {
                dataset: s.dataset,
                label: s.label,
                observations: s.observations,
                enriched: true,
            })
            .ok_or_else(|| {
                ExplorerError::Schema(format!(
                    "dataset <{}> is not listed on the endpoint",
                    self.schema.dataset.as_str()
                ))
            })
    }

    /// The members of a level, with display labels. Served from the
    /// catalog's columns when available, in the same order the SPARQL
    /// oracle returns ([`Self::members_via_sparql`]).
    pub fn members(&self, level: &Iri) -> Result<Vec<MemberInfo>, ExplorerError> {
        self.count_op("members");
        if let Some(cube) = self.cube()? {
            if let Some(index) = cube.level(level) {
                let mut members: Vec<Term> =
                    index.dictionary.iter().map(|(_, t)| t.clone()).collect();
                members.sort();
                return Ok(members
                    .into_iter()
                    .map(|member| MemberInfo {
                        label: label_from_index(index, &member),
                        member,
                    })
                    .collect());
            }
            // A level the cube's schema does not know: the oracle returns
            // whatever `qb4o:memberOf` says (typically nothing).
        }
        self.members_via_sparql(level)
    }

    /// The members of a level resolved through SPARQL — the paper's
    /// navigation and the differential oracle for the columnar path.
    pub fn members_via_sparql(&self, level: &Iri) -> Result<Vec<MemberInfo>, ExplorerError> {
        self.count_op("members_via_sparql");
        let members = members_of_level(self.endpoint, level)?;
        let mut out = Vec::with_capacity(members.len());
        for member in members {
            out.push(MemberInfo {
                label: self.label_of(&member)?,
                member,
            });
        }
        Ok(out)
    }

    /// Number of members of a level (from columns when catalog-backed).
    pub fn member_count(&self, level: &Iri) -> Result<usize, ExplorerError> {
        self.count_op("member_count");
        if let Some(cube) = self.cube()? {
            if let Some(index) = cube.level(level) {
                return Ok(index.member_count());
            }
        }
        self.member_count_via_sparql(level)
    }

    /// Number of members of a level, counted on the endpoint (the oracle).
    pub fn member_count_via_sparql(&self, level: &Iri) -> Result<usize, ExplorerError> {
        self.count_op("member_count_via_sparql");
        Ok(member_count(self.endpoint, level)?)
    }

    /// The display label of a member (its `rdfs:label` or IRI local name).
    pub fn label_of(&self, member: &Term) -> Result<String, ExplorerError> {
        self.count_op("label_of");
        if let Term::Iri(iri) = member {
            // ORDER BY ?l pins which label wins for multi-labeled members,
            // matching the first-value-wins label store the columnar path
            // reads (populated from an `ORDER BY ?m ?v` scan).
            let solutions = self.endpoint.select(&format!(
                "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
                 SELECT ?l WHERE {{ <{}> rdfs:label ?l }} ORDER BY ?l LIMIT 1",
                iri.as_str()
            ))?;
            if let Some(label) = solutions
                .get(0, "l")
                .and_then(|t| t.as_literal())
                .map(|l| l.lexical().to_string())
            {
                return Ok(label);
            }
        }
        Ok(member.display_label())
    }

    /// Clusters the members of every level of a dimension: the Figure 5
    /// view, where "Mary explores the dimensional cube data by clustering
    /// the instances according to their level value".
    pub fn cluster_by_level(
        &self,
        dimension: &Iri,
    ) -> Result<BTreeMap<Iri, Vec<MemberInfo>>, ExplorerError> {
        self.count_op("cluster_by_level");
        let levels: Vec<Iri> = self
            .schema
            .dimension(dimension)
            .map(|d| d.levels().into_iter().cloned().collect())
            .unwrap_or_default();
        let mut clusters = BTreeMap::new();
        for level in levels {
            clusters.insert(level.clone(), self.members(&level)?);
        }
        Ok(clusters)
    }

    /// The roll-up edges (child member → parent member) between two levels.
    /// Served from the catalog's broader adjacency when available, in the
    /// same `(child, parent)` order as the SPARQL oracle.
    pub fn rollup_edges(
        &self,
        child_level: &Iri,
        parent_level: &Iri,
    ) -> Result<Vec<(MemberInfo, MemberInfo)>, ExplorerError> {
        self.count_op("rollup_edges");
        if let Some(cube) = self.cube()? {
            if let (Some(child_index), Some(parent_index)) =
                (cube.level(child_level), cube.level(parent_level))
            {
                let mut edges: Vec<(Term, Term)> = Vec::new();
                for (_, child) in child_index.dictionary.iter() {
                    for parent in cube.broader_parents(child) {
                        if parent_index.dictionary.id(parent).is_some() {
                            edges.push((child.clone(), parent.clone()));
                        }
                    }
                }
                edges.sort();
                return Ok(edges
                    .into_iter()
                    .map(|(child, parent)| {
                        (
                            MemberInfo {
                                label: label_from_index(child_index, &child),
                                member: child,
                            },
                            MemberInfo {
                                label: label_from_index(parent_index, &parent),
                                member: parent,
                            },
                        )
                    })
                    .collect());
            }
        }
        self.rollup_edges_via_sparql(child_level, parent_level)
    }

    /// The roll-up edges resolved through SPARQL (the oracle).
    pub fn rollup_edges_via_sparql(
        &self,
        child_level: &Iri,
        parent_level: &Iri,
    ) -> Result<Vec<(MemberInfo, MemberInfo)>, ExplorerError> {
        self.count_op("rollup_edges_via_sparql");
        let pairs = rollup_pairs(self.endpoint, child_level, parent_level)?;
        let mut out = Vec::with_capacity(pairs.len());
        for (child, parent) in pairs {
            out.push((
                MemberInfo {
                    label: self.label_of(&child)?,
                    member: child,
                },
                MemberInfo {
                    label: self.label_of(&parent)?,
                    member: parent,
                },
            ));
        }
        Ok(out)
    }

    /// Renders the cube structure as a tree (the Figure 4 view: dimensions,
    /// hierarchies, levels, attributes, member counts).
    pub fn schema_tree(&self) -> Result<String, ExplorerError> {
        self.count_op("schema_tree");
        let mut out = String::new();
        out.push_str(&format!(
            "Cube <{}> (QB4OLAP DSD <{}>)\n",
            self.schema.dataset.as_str(),
            self.schema.dsd.as_str()
        ));
        for measure in &self.schema.measures {
            out.push_str(&format!(
                "├─ measure {} [{}]\n",
                measure.property.local_name(),
                measure.aggregate.sparql_name()
            ));
        }
        for dimension in &self.schema.dimensions {
            out.push_str(&format!("├─ dimension {}\n", dimension.iri.local_name()));
            for hierarchy in &dimension.hierarchies {
                out.push_str(&format!("│  └─ hierarchy {}\n", hierarchy.iri.local_name()));
                for level in &hierarchy.levels {
                    let members = self.member_count(level).unwrap_or(0);
                    out.push_str(&format!(
                        "│     ├─ level {} ({} members)\n",
                        level.local_name(),
                        members
                    ));
                    for attribute in self.schema.level_attributes(level) {
                        out.push_str(&format!(
                            "│     │  └─ attribute {}\n",
                            attribute.iri.local_name()
                        ));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Renders one dimension's instance graph (members as nodes, roll-up
    /// relationships as edges) in Graphviz DOT format — the data behind the
    /// Figure 5 visualisation.
    pub fn instance_graph_dot(&self, dimension: &Iri) -> Result<String, ExplorerError> {
        self.count_op("instance_graph_dot");
        let mut out = String::new();
        out.push_str("digraph rollups {\n  rankdir=BT;\n");
        let Some(dim) = self.schema.dimension(dimension) else {
            out.push_str("}\n");
            return Ok(out);
        };
        for hierarchy in &dim.hierarchies {
            for step in &hierarchy.steps {
                for (child, parent) in self.rollup_edges(&step.child, &step.parent)? {
                    out.push_str(&format!(
                        "  \"{}\" -> \"{}\";\n",
                        child.label, parent.label
                    ));
                }
            }
        }
        out.push_str("}\n");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{load_demo_endpoint, EurostatConfig};
    use enrichment::{EnrichmentConfig, EnrichmentSession};
    use rdf::vocab::{demo_schema, eurostat_property, sdmx_dimension};
    use sparql::LocalEndpoint;

    fn enriched_endpoint(observations: usize) -> (LocalEndpoint, Iri) {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(observations));
        let config = EnrichmentConfig::default().name_dimension(
            eurostat_property::citizen(),
            "citizenshipDim",
            "citizenshipGeoHier",
        );
        let mut session = EnrichmentSession::start(&endpoint, &data.dataset, config).unwrap();
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let continent = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let level = session
            .add_level(&eurostat_property::citizen(), &continent, "continent")
            .unwrap();
        session
            .add_attribute(&level, &rdf::vocab::rdfs::label(), "continentName")
            .unwrap();
        session.load_into_endpoint().unwrap();
        (endpoint, data.dataset)
    }

    #[test]
    fn cube_listing_marks_enriched_cubes() {
        let (endpoint, dataset) = enriched_endpoint(120);
        let cubes = list_cubes(&endpoint).unwrap();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].dataset, dataset);
        assert!(cubes[0].enriched);
        assert_eq!(cubes[0].observations, 120);

        // A plain QB dataset (no enrichment) is listed but not marked enriched.
        let plain = LocalEndpoint::new();
        let (_, generated) = (
            (),
            datagen::generate(&datagen::EurostatConfig::small(10)),
        );
        plain.insert_triples(&generated.triples).unwrap();
        let cubes = list_cubes(&plain).unwrap();
        assert_eq!(cubes.len(), 1);
        assert!(!cubes[0].enriched);
    }

    #[test]
    fn members_and_labels() {
        let (endpoint, dataset) = enriched_endpoint(150);
        let explorer = CubeExplorer::open(&endpoint, &dataset).unwrap();
        let members = explorer.members(&demo_schema::continent()).unwrap();
        assert!(!members.is_empty());
        assert!(members.iter().any(|m| m.label == "Africa" || m.label == "Asia"));
        assert_eq!(
            explorer.member_count(&demo_schema::continent()).unwrap(),
            members.len()
        );
        // Labels fall back to the local name for unlabeled members.
        assert_eq!(
            explorer
                .label_of(&Term::iri("http://example.org/thing/X99"))
                .unwrap(),
            "X99"
        );
    }

    #[test]
    fn clustering_and_rollup_edges() {
        let (endpoint, dataset) = enriched_endpoint(150);
        let explorer = CubeExplorer::open(&endpoint, &dataset).unwrap();
        let clusters = explorer
            .cluster_by_level(&demo_schema::citizenship_dim())
            .unwrap();
        assert_eq!(clusters.len(), 2, "citizen and continent levels");
        assert!(clusters[&eurostat_property::citizen()].len() > clusters[&demo_schema::continent()].len());

        let edges = explorer
            .rollup_edges(&eurostat_property::citizen(), &demo_schema::continent())
            .unwrap();
        assert!(!edges.is_empty());
        assert!(edges
            .iter()
            .all(|(child, parent)| !child.label.is_empty() && !parent.label.is_empty()));
    }

    #[test]
    fn schema_tree_and_dot_rendering() {
        let (endpoint, dataset) = enriched_endpoint(150);
        let explorer = CubeExplorer::open(&endpoint, &dataset).unwrap();
        let tree = explorer.schema_tree().unwrap();
        assert!(tree.contains("dimension citizenshipDim"));
        assert!(tree.contains("level continent"));
        assert!(tree.contains("attribute continentName"));
        assert!(tree.contains("measure obsValue [SUM]"));

        let dot = explorer
            .instance_graph_dot(&demo_schema::citizenship_dim())
            .unwrap();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));

        // Unknown dimensions produce an empty graph rather than an error.
        let empty = explorer
            .instance_graph_dot(&Iri::new("http://example.org/unknownDim"))
            .unwrap();
        assert!(!empty.contains("->"));
    }

    #[test]
    fn catalog_backed_navigation_matches_the_sparql_oracle() {
        let (endpoint, dataset) = enriched_endpoint(200);
        let catalog = std::sync::Arc::new(cubestore::CubeCatalog::new());
        let explorer = CubeExplorer::open_with_catalog(&endpoint, &dataset, catalog).unwrap();
        assert!(explorer.serves_from_columns());
        // Warm the catalog, then count round-trips: navigation from columns
        // must not touch the endpoint again.
        explorer.members(&eurostat_property::citizen()).unwrap();
        let queries = endpoint.queries_executed();
        let columns = explorer.members(&eurostat_property::citizen()).unwrap();
        let count = explorer.member_count(&eurostat_property::citizen()).unwrap();
        let edges = explorer
            .rollup_edges(&eurostat_property::citizen(), &demo_schema::continent())
            .unwrap();
        let clusters = explorer
            .cluster_by_level(&demo_schema::citizenship_dim())
            .unwrap();
        assert_eq!(
            endpoint.queries_executed(),
            queries,
            "columnar navigation issued SPARQL round-trips"
        );
        // Cell-for-cell parity with the SPARQL oracle, labels included.
        assert_eq!(
            columns,
            explorer.members_via_sparql(&eurostat_property::citizen()).unwrap()
        );
        assert_eq!(
            count,
            explorer
                .member_count_via_sparql(&eurostat_property::citizen())
                .unwrap()
        );
        assert_eq!(
            edges,
            explorer
                .rollup_edges_via_sparql(&eurostat_property::citizen(), &demo_schema::continent())
                .unwrap()
        );
        assert_eq!(clusters.len(), 2);
        assert!(!edges.is_empty());
        assert!(columns.iter().any(|m| m.label == "Syria"));
    }

    #[test]
    fn catalog_backed_summary_matches_the_dataset_listing() {
        let (endpoint, dataset) = enriched_endpoint(130);
        let catalog = std::sync::Arc::new(cubestore::CubeCatalog::new());
        let explorer =
            CubeExplorer::open_with_catalog(&endpoint, &dataset, catalog).unwrap();
        let summary = explorer.summary().unwrap();
        let listed = list_cubes(&endpoint)
            .unwrap()
            .into_iter()
            .find(|c| c.dataset == dataset)
            .unwrap();
        assert_eq!(summary, listed, "columns and SPARQL listing agree");
        assert_eq!(summary.observations, 130);
        assert!(summary.enriched);
        assert!(summary.label.is_some());
    }

    #[test]
    fn catalog_backed_summary_tracks_tombstoned_removals() {
        // A whole-observation removal is absorbed by the catalog as a
        // tombstone (no rebuild); the explorer's summary — served from the
        // cube's stats — must track it exactly like the SPARQL listing.
        let (endpoint, dataset) = enriched_endpoint(140);
        let catalog = std::sync::Arc::new(cubestore::CubeCatalog::new());
        let explorer =
            CubeExplorer::open_with_catalog(&endpoint, &dataset, catalog.clone()).unwrap();
        assert_eq!(explorer.summary().unwrap().observations, 140);

        let node = endpoint
            .select(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 SELECT ?o WHERE { ?o a qb:Observation } ORDER BY ?o LIMIT 1",
            )
            .unwrap()
            .get(0, "o")
            .cloned()
            .unwrap();
        let triples = endpoint.store().triples_matching(Some(&node), None, None);
        assert!(endpoint.store().remove_all(&triples) >= 4);

        let summary = explorer.summary().unwrap();
        assert_eq!(summary.observations, 139, "summary reflects the removal");
        let listed = list_cubes(&endpoint)
            .unwrap()
            .into_iter()
            .find(|c| c.dataset == dataset)
            .unwrap();
        assert_eq!(summary, listed, "columns and SPARQL listing agree");
        // The refresh was a tombstone, not a rebuild, and navigation still
        // matches the oracle.
        let report = catalog.last_report(&dataset).unwrap();
        assert_eq!(report.strategy, cubestore::MaintenanceStrategy::Delta);
        assert_eq!(report.rows_removed, 1);
        assert_eq!(
            explorer.members(&eurostat_property::citizen()).unwrap(),
            explorer
                .members_via_sparql(&eurostat_property::citizen())
                .unwrap()
        );
    }

    #[test]
    fn catalog_backed_summary_tracks_partial_removals() {
        // Partial-observation removals are delta-appliable too, and they
        // split into two accounting classes the summary must mirror: a
        // measure strip leaves the fragment dataset-linked (counted by the
        // SPARQL listing → still counted by the summary), a dataset unlink
        // makes it invisible (dropped from both counts).
        use rdf::vocab::{qb, sdmx_measure};

        let (endpoint, dataset) = enriched_endpoint(120);
        let catalog = std::sync::Arc::new(cubestore::CubeCatalog::new());
        let explorer =
            CubeExplorer::open_with_catalog(&endpoint, &dataset, catalog.clone()).unwrap();
        assert_eq!(explorer.summary().unwrap().observations, 120);

        let nodes: Vec<rdf::Term> = endpoint
            .select(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 SELECT ?o WHERE { ?o a qb:Observation } ORDER BY ?o LIMIT 2",
            )
            .unwrap()
            .rows
            .iter()
            .filter_map(|r| r.first().cloned().flatten())
            .collect();

        // Measure strip: the fragment stays dataset-linked, so the listing
        // (COUNT of ?obs qb:dataSet ?ds) still counts it.
        let removed = endpoint.store().remove_matching(
            Some(&nodes[0]),
            Some(&sdmx_measure::obs_value()),
            None,
        );
        assert_eq!(removed.len(), 1);
        let summary = explorer.summary().unwrap();
        assert_eq!(summary.observations, 120, "still dataset-linked");
        let report = catalog.last_report(&dataset).unwrap();
        assert_eq!(report.strategy, cubestore::MaintenanceStrategy::Delta);
        assert_eq!(report.rows_removed, 1, "the row itself was tombstoned");

        // Dataset unlink: gone from both counts.
        let removed =
            endpoint
                .store()
                .remove_matching(Some(&nodes[1]), Some(&qb::data_set()), None);
        assert_eq!(removed.len(), 1);
        let summary = explorer.summary().unwrap();
        assert_eq!(summary.observations, 119, "unlinked fragment uncounted");
        assert_eq!(
            catalog.last_report(&dataset).unwrap().strategy,
            cubestore::MaintenanceStrategy::Delta
        );
        let listed = list_cubes(&endpoint)
            .unwrap()
            .into_iter()
            .find(|c| c.dataset == dataset)
            .unwrap();
        assert_eq!(summary, listed, "columns and SPARQL listing agree");
    }

    #[test]
    fn qb_errors_map_to_the_schema_variant() {
        let error: ExplorerError = qb::QbError::NotFound("d".into()).into();
        assert!(matches!(error, ExplorerError::Schema(_)), "{error}");
        let error: ExplorerError =
            cubestore::CubeStoreError::Build("boom".into()).into();
        assert!(matches!(error, ExplorerError::Columnar(_)), "{error}");
    }

    #[test]
    fn opening_a_non_enriched_cube_fails() {
        let endpoint = LocalEndpoint::new();
        let generated = datagen::generate(&datagen::EurostatConfig::small(10));
        endpoint.insert_triples(&generated.triples).unwrap();
        assert!(CubeExplorer::open(&endpoint, &generated.dataset).is_err());
    }

    #[test]
    fn navigation_operations_are_counted_in_the_shared_registry() {
        let (endpoint, dataset) = enriched_endpoint(80);
        let catalog = Arc::new(CubeCatalog::new());
        let explorer =
            CubeExplorer::open_with_catalog(&endpoint, &dataset, catalog.clone()).unwrap();
        explorer.summary().unwrap();
        explorer.members(&eurostat_property::citizen()).unwrap();
        explorer.members(&eurostat_property::citizen()).unwrap();
        explorer
            .member_count(&eurostat_property::citizen())
            .unwrap();
        explorer.schema_tree().unwrap();

        // The explorer shares the catalog's registry, so its per-operation
        // counters sit next to the catalog.* metrics of the serve calls the
        // navigation triggered.
        let snapshot = catalog.metrics().snapshot();
        assert_eq!(snapshot.counter("explorer.summary"), 1);
        assert_eq!(snapshot.counter("explorer.members"), 2);
        assert!(snapshot.counter("explorer.member_count") >= 1);
        assert_eq!(snapshot.counter("explorer.schema_tree"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.fresh"), 1);
        assert!(snapshot.counter("catalog.serve.calls") >= 4);

        // A plain (SPARQL-only) explorer gets a private registry.
        let plain = CubeExplorer::open(&endpoint, &dataset).unwrap();
        plain.members(&eurostat_property::citizen()).unwrap();
        let snapshot = plain.metrics().snapshot();
        assert_eq!(snapshot.counter("explorer.members"), 1);
        assert_eq!(snapshot.counter("explorer.members_via_sparql"), 1);
        assert_eq!(snapshot.counter("catalog.serve.calls"), 0);
    }

    #[test]
    fn timedim_members_without_enrichment_are_absent() {
        let (endpoint, dataset) = enriched_endpoint(80);
        let explorer = CubeExplorer::open(&endpoint, &dataset).unwrap();
        // The time dimension was not enriched in this fixture, so the year
        // level does not exist and has no members.
        assert_eq!(explorer.member_count(&demo_schema::year()).unwrap(), 0);
        let members = explorer.members(&sdmx_dimension::ref_period()).unwrap();
        assert!(!members.is_empty(), "bottom-level members exist after enrichment");
    }
}
