//! The Enrichment module of QB2OLAP (Section III-A of the paper).
//!
//! Enrichment semi-automatically transforms a QB dataset into a QB4OLAP one:
//! the user never writes SPARQL; the module "triggers the queries, performs
//! the necessary processing, makes suggestions for the user, and based on
//! her choices enriches the schema".
//!
//! * [`config`] — the fine-tuning parameters (default aggregate, quasi-FD
//!   error threshold, support, sampling, external-source following, naming);
//! * [`fd`] — the (quasi-)functional-dependency analysis over level-instance
//!   properties;
//! * [`candidates`] — the candidate levels / attributes presented to the user;
//! * [`session`] — the three-phase workflow (Redefinition, Enrichment,
//!   Triple Generation) over a SPARQL endpoint.
//!
//! # Example
//!
//! ```
//! use enrichment::{EnrichmentConfig, EnrichmentSession};
//! use rdf::vocab::eurostat_property;
//!
//! let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(100));
//! let mut session =
//!     EnrichmentSession::start(&endpoint, &data.dataset, EnrichmentConfig::default()).unwrap();
//! session.redefine().unwrap();
//! let candidates = session
//!     .discover_candidates(&eurostat_property::citizen())
//!     .unwrap();
//! assert!(!candidates.levels.is_empty());
//! ```

#![warn(missing_docs)]

pub mod candidates;
pub mod config;
pub mod error;
pub mod fd;
pub mod session;

pub use candidates::{CandidateAttribute, CandidateLevel, CandidateSet};
pub use config::{DimensionNaming, EnrichmentConfig};
pub use error::EnrichmentError;
pub use fd::{analyze_members, rollup_assignment, MemberPropertyValues, PropertyProfile};
pub use session::{EnrichmentOutput, EnrichmentSession, EnrichmentStats};
