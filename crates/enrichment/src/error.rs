//! Error type for the Enrichment module.

use std::fmt;

/// Errors raised by the Enrichment module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnrichmentError {
    /// The QB introspection layer failed.
    Qb(String),
    /// A SPARQL query failed.
    Sparql(String),
    /// The QB4OLAP layer failed.
    Qb4olap(String),
    /// The requested operation does not fit the current workflow state
    /// (e.g. adding a level before running the Redefinition phase).
    InvalidState(String),
    /// The user referenced a level, property or candidate that is unknown.
    UnknownElement(String),
}

impl fmt::Display for EnrichmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnrichmentError::Qb(m) => write!(f, "QB layer error: {m}"),
            EnrichmentError::Sparql(m) => write!(f, "SPARQL error: {m}"),
            EnrichmentError::Qb4olap(m) => write!(f, "QB4OLAP layer error: {m}"),
            EnrichmentError::InvalidState(m) => write!(f, "invalid enrichment state: {m}"),
            EnrichmentError::UnknownElement(m) => write!(f, "unknown element: {m}"),
        }
    }
}

impl std::error::Error for EnrichmentError {}

impl From<qb::QbError> for EnrichmentError {
    fn from(e: qb::QbError) -> Self {
        EnrichmentError::Qb(e.to_string())
    }
}

impl From<sparql::SparqlError> for EnrichmentError {
    fn from(e: sparql::SparqlError) -> Self {
        EnrichmentError::Sparql(e.to_string())
    }
}

impl From<qb4olap::Qb4olapError> for EnrichmentError {
    fn from(e: qb4olap::Qb4olapError) -> Self {
        EnrichmentError::Qb4olap(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EnrichmentError = sparql::SparqlError::eval("x").into();
        assert!(e.to_string().contains("x"));
        let e: EnrichmentError = qb::QbError::NotFound("ds".into()).into();
        assert!(e.to_string().contains("ds"));
        let e: EnrichmentError = qb4olap::Qb4olapError::SchemaNotFound("s".into()).into();
        assert!(e.to_string().contains("s"));
        assert!(EnrichmentError::InvalidState("no schema".into())
            .to_string()
            .contains("no schema"));
        assert!(EnrichmentError::UnknownElement("lvl".into())
            .to_string()
            .contains("lvl"));
    }
}
