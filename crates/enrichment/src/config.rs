//! Fine-tuning parameters of the Enrichment module.
//!
//! The paper stresses that, in the Linked Data context of external and
//! non-controlled sources, fine-tuning parameters are "essential to deal
//! with data quality issues, e.g., by searching for quasi FDs (i.e., an FD
//! with an allowed error threshold)". This module gathers all of them in one
//! configuration value with sensible defaults.

use std::collections::BTreeMap;

use qb4olap::AggregateFunction;
use rdf::{Iri, vocab::demo_schema};

/// How a dimension (and its default hierarchy) derived from a QB dimension
/// property should be named.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionNaming {
    /// Local name of the `qb:DimensionProperty` to create (e.g. `citizenshipDim`).
    pub dimension_name: String,
    /// Local name of the default hierarchy (e.g. `citizenshipGeoHier`).
    pub hierarchy_name: String,
}

/// Fine-tuning parameters for the Enrichment module.
#[derive(Debug, Clone, PartialEq)]
pub struct EnrichmentConfig {
    /// Namespace in which generated schema elements (dimensions, hierarchies,
    /// new levels, level attributes, the QB4OLAP DSD) are minted.
    /// Defaults to the paper's `schema:` namespace.
    pub schema_namespace: Iri,
    /// Default aggregate function assigned to measures during redefinition.
    pub default_aggregate: AggregateFunction,
    /// Allowed error for quasi functional dependencies: the fraction of
    /// members that may violate functionality (have more than one value for
    /// the candidate property) while the property is still suggested.
    pub fd_error_threshold: f64,
    /// Minimum fraction of members that must carry the candidate property at
    /// all (coverage / support).
    pub min_support: f64,
    /// Maximum allowed ratio `distinct parent values / members`: a roll-up
    /// only makes sense if it actually groups members (< 1.0).
    pub max_compression_ratio: f64,
    /// Cap on the number of members analysed per level (level-detection
    /// fine-tuning for very large levels). `None` analyses every member.
    pub max_sample_members: Option<usize>,
    /// Follow `owl:sameAs` links into external datasets (DBpedia in the
    /// demo) when collecting member properties.
    pub follow_same_as: bool,
    /// Suggest literal-valued properties (e.g. `rdfs:label`) as level
    /// attributes.
    pub suggest_attributes: bool,
    /// Per-bottom-level naming of the dimension / default hierarchy created
    /// during redefinition. Keys are the original QB dimension properties.
    /// Levels without an entry get names derived from the property's local
    /// name (`<local>Dim`, `<local>Hier`).
    pub dimension_naming: BTreeMap<Iri, DimensionNaming>,
}

impl Default for EnrichmentConfig {
    fn default() -> Self {
        EnrichmentConfig {
            schema_namespace: Iri::new(demo_schema::NAMESPACE),
            default_aggregate: AggregateFunction::Sum,
            fd_error_threshold: 0.0,
            min_support: 0.8,
            max_compression_ratio: 0.9,
            max_sample_members: None,
            follow_same_as: true,
            suggest_attributes: true,
            dimension_naming: BTreeMap::new(),
        }
    }
}

impl EnrichmentConfig {
    /// Sets the quasi-FD error threshold.
    pub fn with_fd_error_threshold(mut self, threshold: f64) -> Self {
        self.fd_error_threshold = threshold;
        self
    }

    /// Sets the minimum support (coverage) threshold.
    pub fn with_min_support(mut self, support: f64) -> Self {
        self.min_support = support;
        self
    }

    /// Disables following `owl:sameAs` links.
    pub fn without_external_sources(mut self) -> Self {
        self.follow_same_as = false;
        self
    }

    /// Registers an explicit dimension / hierarchy naming for a QB dimension
    /// property.
    pub fn name_dimension(
        mut self,
        qb_dimension: Iri,
        dimension_name: impl Into<String>,
        hierarchy_name: impl Into<String>,
    ) -> Self {
        self.dimension_naming.insert(
            qb_dimension,
            DimensionNaming {
                dimension_name: dimension_name.into(),
                hierarchy_name: hierarchy_name.into(),
            },
        );
        self
    }

    /// An IRI in the configured schema namespace.
    pub fn schema_iri(&self, local: &str) -> Iri {
        self.schema_namespace.join(local)
    }

    /// The dimension and hierarchy IRIs for a QB dimension property, using
    /// the explicit naming when configured and derived names otherwise.
    pub fn dimension_iris(&self, qb_dimension: &Iri) -> (Iri, Iri) {
        match self.dimension_naming.get(qb_dimension) {
            Some(naming) => (
                self.schema_iri(&naming.dimension_name),
                self.schema_iri(&naming.hierarchy_name),
            ),
            None => {
                let local = qb_dimension.local_name();
                (
                    self.schema_iri(&format!("{local}Dim")),
                    self.schema_iri(&format!("{local}Hier")),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::eurostat_property;

    #[test]
    fn defaults_match_the_paper_setup() {
        let config = EnrichmentConfig::default();
        assert_eq!(config.schema_namespace.as_str(), demo_schema::NAMESPACE);
        assert_eq!(config.default_aggregate, AggregateFunction::Sum);
        assert_eq!(config.fd_error_threshold, 0.0);
        assert!(config.follow_same_as);
    }

    #[test]
    fn builder_style_setters() {
        let config = EnrichmentConfig::default()
            .with_fd_error_threshold(0.05)
            .with_min_support(0.5)
            .without_external_sources();
        assert_eq!(config.fd_error_threshold, 0.05);
        assert_eq!(config.min_support, 0.5);
        assert!(!config.follow_same_as);
    }

    #[test]
    fn dimension_naming_explicit_and_derived() {
        let config = EnrichmentConfig::default().name_dimension(
            eurostat_property::citizen(),
            "citizenshipDim",
            "citizenshipGeoHier",
        );
        let (dim, hier) = config.dimension_iris(&eurostat_property::citizen());
        assert_eq!(dim, demo_schema::citizenship_dim());
        assert_eq!(hier, demo_schema::citizenship_geo_hier());

        let (dim, hier) = config.dimension_iris(&eurostat_property::geo());
        assert!(dim.as_str().ends_with("geoDim"));
        assert!(hier.as_str().ends_with("geoHier"));
    }

    #[test]
    fn schema_iri_joins_namespace() {
        let config = EnrichmentConfig::default();
        assert_eq!(config.schema_iri("continent"), demo_schema::continent());
    }
}
