//! The Enrichment module workflow (Figure 2 of the paper).
//!
//! An [`EnrichmentSession`] drives the three phases over a SPARQL endpoint:
//!
//! 1. **Redefinition phase** — [`EnrichmentSession::redefine`]: the QB DSD is
//!    adjusted to QB4OLAP semantics (dimensions become levels with a
//!    fact-level cardinality, measures get an aggregate function) and one
//!    dimension with a default hierarchy is created per original dimension.
//! 2. **Enrichment phase** — [`EnrichmentSession::discover_candidates`]
//!    collects the level instances and their properties, runs the
//!    (quasi-)functional-dependency analysis and suggests candidate parent
//!    levels and attributes; [`EnrichmentSession::add_level`] /
//!    [`EnrichmentSession::add_attribute`] apply the user's choices and keep
//!    the dimension hierarchies up to date. The phase is repeated until the
//!    user has added all desired levels.
//! 3. **Triple Generation phase** — [`EnrichmentSession::generate_triples`]
//!    emits the QB4OLAP schema and level-instance triples, and
//!    [`EnrichmentSession::load_into_endpoint`] loads them into the endpoint
//!    for the Exploration and Querying modules.

use std::collections::{BTreeMap, BTreeSet};

use qb::{ComponentKind, QbDataset};
use qb4olap::{
    schema_triples, validate_schema, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
    LevelAttribute, LevelComponent, MeasureSpec, SchemaReport,
};
use rdf::vocab::{owl, qb4o, rdf as rdfv, skos};
use rdf::{Iri, Term, Triple};
use sparql::ast::{GroupGraphPattern, PatternElement, SelectQuery, ValuesRow};
use sparql::{Endpoint, Query};

use crate::candidates::{suggested_local_name, CandidateAttribute, CandidateLevel, CandidateSet};
use crate::config::EnrichmentConfig;
use crate::error::EnrichmentError;
use crate::fd::{analyze_members, rollup_assignment, MemberPropertyValues};

/// The triples produced by the Triple Generation phase.
#[derive(Debug, Clone, Default)]
pub struct EnrichmentOutput {
    /// Schema triples (DSD, dimensions, hierarchies, levels, attributes).
    pub schema_triples: Vec<Triple>,
    /// Instance triples (level members, roll-up links, attribute values).
    pub instance_triples: Vec<Triple>,
}

impl EnrichmentOutput {
    /// Total number of generated triples.
    pub fn len(&self) -> usize {
        self.schema_triples.len() + self.instance_triples.len()
    }

    /// True if nothing was generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Summary statistics of an enrichment run (displayed by the demo UI and
/// recorded by the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnrichmentStats {
    /// Number of schema triples loaded.
    pub schema_triples: usize,
    /// Number of instance triples loaded.
    pub instance_triples: usize,
    /// Number of dimensions in the schema.
    pub dimensions: usize,
    /// Number of levels in the schema.
    pub levels: usize,
    /// Number of level attributes in the schema.
    pub attributes: usize,
}

#[derive(Debug, Clone, Default)]
struct CollectedProperties {
    direct: MemberPropertyValues,
    external: MemberPropertyValues,
}

/// Parsed probe-query templates, built once per session and reused across
/// every phase and candidate: each chunked `VALUES (?m)` probe is executed
/// by patching the rows of a cached AST ([`Endpoint::select_parsed`])
/// instead of formatting and re-parsing SPARQL text per chunk.
#[derive(Debug, Default)]
struct ProbeCache {
    /// `?m ?p ?v` over the member batch (property collection).
    member_properties: Option<SelectQuery>,
    /// The same through one `owl:sameAs` hop (external enrichment).
    member_properties_external: Option<SelectQuery>,
    /// `?m <property> ?v` per attribute source property.
    attribute_direct: BTreeMap<Iri, SelectQuery>,
    /// The same through `owl:sameAs`, per attribute source property.
    attribute_external: BTreeMap<Iri, SelectQuery>,
}

/// The placeholder row every probe template is parsed with; it is replaced
/// by the actual member batch before execution.
const PROBE_PLACEHOLDER: &str = "(<urn:qb2olap:probe>)";

fn probe_template(text: &str) -> SelectQuery {
    sparql::parse_select(text).expect("static probe template parses")
}

fn member_properties_probe() -> SelectQuery {
    probe_template(&format!(
        "SELECT ?m ?p ?v WHERE {{ VALUES (?m) {{ {PROBE_PLACEHOLDER} }} ?m ?p ?v . }}"
    ))
}

fn member_properties_external_probe() -> SelectQuery {
    probe_template(&format!(
        "PREFIX owl: <http://www.w3.org/2002/07/owl#>
         SELECT ?m ?p ?v WHERE {{
           VALUES (?m) {{ {PROBE_PLACEHOLDER} }}
           ?m owl:sameAs ?ext .
           ?ext ?p ?v .
         }}"
    ))
}

fn attribute_probe(property: &Iri, external: bool) -> SelectQuery {
    let text = if external {
        format!(
            "PREFIX owl: <http://www.w3.org/2002/07/owl#>
             SELECT ?m ?v WHERE {{
               VALUES (?m) {{ {PROBE_PLACEHOLDER} }}
               ?m owl:sameAs ?ext . ?ext <{}> ?v .
             }}",
            property.as_str()
        )
    } else {
        format!(
            "SELECT ?m ?v WHERE {{ VALUES (?m) {{ {PROBE_PLACEHOLDER} }} ?m <{}> ?v . }}",
            property.as_str()
        )
    };
    probe_template(&text)
}

/// Instantiates a cached template for one member batch by replacing the
/// rows of its `VALUES` block.
fn probe_for_members(template: &SelectQuery, members: &[&Iri]) -> Query {
    let mut query = template.clone();
    let rows: Vec<ValuesRow> = members
        .iter()
        .map(|iri| vec![Some(Term::Iri((*iri).clone()))])
        .collect();
    replace_values_rows(&mut query.pattern, rows);
    Query::Select(query)
}

fn replace_values_rows(pattern: &mut GroupGraphPattern, rows: Vec<ValuesRow>) {
    for element in &mut pattern.elements {
        if let PatternElement::Values { rows: slot, .. } = element {
            *slot = rows;
            return;
        }
    }
    unreachable!("every probe template starts with a VALUES block");
}

/// An interactive enrichment session over one dataset.
pub struct EnrichmentSession<'e> {
    endpoint: &'e dyn Endpoint,
    config: EnrichmentConfig,
    qb_dataset: QbDataset,
    schema: Option<CubeSchema>,
    members: BTreeMap<Iri, Vec<Term>>,
    collected: BTreeMap<Iri, CollectedProperties>,
    rollups: BTreeSet<(Term, Term)>,
    attribute_values: BTreeSet<(Term, Iri, Term)>,
    probes: ProbeCache,
}

impl<'e> EnrichmentSession<'e> {
    /// Starts a session for a QB dataset already loaded on the endpoint.
    pub fn start(
        endpoint: &'e dyn Endpoint,
        dataset: &Iri,
        config: EnrichmentConfig,
    ) -> Result<Self, EnrichmentError> {
        let qb_dataset = qb::load_dataset(endpoint, dataset)?;
        Ok(EnrichmentSession {
            endpoint,
            config,
            qb_dataset,
            schema: None,
            members: BTreeMap::new(),
            collected: BTreeMap::new(),
            rollups: BTreeSet::new(),
            attribute_values: BTreeSet::new(),
            probes: ProbeCache::default(),
        })
    }

    /// The original QB dataset description.
    pub fn qb_dataset(&self) -> &QbDataset {
        &self.qb_dataset
    }

    /// The evolving QB4OLAP schema (available after [`Self::redefine`]).
    pub fn schema(&self) -> Option<&CubeSchema> {
        self.schema.as_ref()
    }

    fn schema_mut(&mut self) -> Result<&mut CubeSchema, EnrichmentError> {
        self.schema.as_mut().ok_or_else(|| {
            EnrichmentError::InvalidState(
                "the Redefinition phase has not been run yet (call redefine() first)".to_string(),
            )
        })
    }

    // ---- Redefinition phase -------------------------------------------------

    /// Runs the Redefinition phase: dimensions become levels (with a
    /// fact-level `ManyToOne` cardinality), measures are copied with the
    /// default aggregate function, and one dimension + default hierarchy is
    /// created per original QB dimension.
    pub fn redefine(&mut self) -> Result<&CubeSchema, EnrichmentError> {
        let dataset_local = self.qb_dataset.iri.local_name().to_string();
        let dsd_iri = self.config.schema_iri(&format!("{dataset_local}QB4O"));
        let mut schema = CubeSchema::new(dsd_iri, self.qb_dataset.iri.clone());

        for component in &self.qb_dataset.structure.components {
            match component.kind {
                ComponentKind::Dimension => {
                    let level = component.property.clone();
                    let (dimension_iri, hierarchy_iri) = self.config.dimension_iris(&level);
                    schema.level_components.push(LevelComponent {
                        level: level.clone(),
                        cardinality: Cardinality::ManyToOne,
                        dimension: Some(dimension_iri.clone()),
                    });
                    let mut hierarchy = Hierarchy::new(hierarchy_iri);
                    hierarchy.levels.push(level.clone());
                    let mut dimension = Dimension::new(dimension_iri);
                    dimension.hierarchies.push(hierarchy);
                    schema.dimensions.push(dimension);
                    schema.level_mut(&level);
                }
                ComponentKind::Measure => {
                    schema.measures.push(MeasureSpec {
                        property: component.property.clone(),
                        aggregate: self.config.default_aggregate,
                    });
                }
                ComponentKind::Attribute => {
                    // QB attributes (e.g. obsStatus) stay out of the MD schema.
                }
            }
        }

        self.schema = Some(schema);
        Ok(self.schema.as_ref().expect("just set"))
    }

    // ---- Enrichment phase ----------------------------------------------------

    /// Returns (collecting and caching if needed) the members of a level.
    ///
    /// For the original bottom levels, members are the distinct values bound
    /// to the dimension property across the dataset's observations; for
    /// levels added through [`Self::add_level`], members were recorded when
    /// the level was created.
    pub fn level_members(&mut self, level: &Iri) -> Result<Vec<Term>, EnrichmentError> {
        if let Some(members) = self.members.get(level) {
            return Ok(members.clone());
        }
        let is_bottom = self.qb_dataset.structure.dimensions().contains(&level);
        if !is_bottom {
            return Err(EnrichmentError::UnknownElement(format!(
                "level <{}> has no known members (it is neither an original dimension nor an added level)",
                level.as_str()
            )));
        }
        let mut members = qb::dimension_members(self.endpoint, &self.qb_dataset.iri, level)?;
        if let Some(cap) = self.config.max_sample_members {
            members.truncate(cap);
        }
        self.members.insert(level.clone(), members.clone());
        Ok(members)
    }

    /// Collects all properties of the members of a level (directly and,
    /// optionally, through one `owl:sameAs` hop into external datasets).
    fn collect_properties(&mut self, level: &Iri) -> Result<(), EnrichmentError> {
        if self.collected.contains_key(level) {
            return Ok(());
        }
        let members = self.level_members(level)?;
        let iri_members: Vec<&Iri> = members.iter().filter_map(Term::as_iri).collect();

        let mut collected = CollectedProperties::default();
        for member in &members {
            collected.direct.entry(member.clone()).or_default();
        }

        let excluded = [
            rdfv::type_(),
            owl::same_as(),
            qb4o::member_of(),
            skos::broader(),
        ];

        // Parse the probe shapes once per session; each chunk only swaps
        // the VALUES rows of the cached AST.
        let direct_template = self
            .probes
            .member_properties
            .get_or_insert_with(member_properties_probe);
        let external_template = if self.config.follow_same_as {
            Some(
                self.probes
                    .member_properties_external
                    .get_or_insert_with(member_properties_external_probe)
                    .clone(),
            )
        } else {
            None
        };
        for chunk in iri_members.chunks(64) {
            // Direct properties of the members.
            let solutions = self
                .endpoint
                .select_parsed(&probe_for_members(direct_template, chunk))?;
            for i in 0..solutions.len() {
                let (Some(m), Some(Term::Iri(p)), Some(v)) = (
                    solutions.get(i, "m").cloned(),
                    solutions.get(i, "p").cloned(),
                    solutions.get(i, "v").cloned(),
                ) else {
                    continue;
                };
                if excluded.contains(&p) {
                    continue;
                }
                collected
                    .direct
                    .entry(m)
                    .or_default()
                    .entry(p)
                    .or_default()
                    .insert(v);
            }

            // Properties reachable through owl:sameAs (external enrichment).
            if let Some(template) = &external_template {
                let solutions = self
                    .endpoint
                    .select_parsed(&probe_for_members(template, chunk))?;
                for i in 0..solutions.len() {
                    let (Some(m), Some(Term::Iri(p)), Some(v)) = (
                        solutions.get(i, "m").cloned(),
                        solutions.get(i, "p").cloned(),
                        solutions.get(i, "v").cloned(),
                    ) else {
                        continue;
                    };
                    if excluded.contains(&p) {
                        continue;
                    }
                    collected
                        .external
                        .entry(m)
                        .or_default()
                        .entry(p)
                        .or_default()
                        .insert(v);
                }
            }
        }
        self.collected.insert(level.clone(), collected);
        Ok(())
    }

    /// Runs the candidate-discovery step of the Enrichment phase for a level:
    /// analyses the properties of its members and suggests roll-up levels
    /// (object-valued (quasi-)FDs that compress the member set) and
    /// descriptive attributes (literal-valued FDs).
    pub fn discover_candidates(&mut self, level: &Iri) -> Result<CandidateSet, EnrichmentError> {
        self.collect_properties(level)?;
        let collected = self
            .collected
            .get(level)
            .expect("collect_properties just ran");

        let mut profiles = analyze_members(&collected.direct, false);
        if self.config.follow_same_as && !collected.external.is_empty() {
            // External profiles are computed over the same member set so the
            // coverage denominators stay comparable.
            let mut external = collected.external.clone();
            for member in collected.direct.keys() {
                external.entry(member.clone()).or_default();
            }
            profiles.extend(analyze_members(&external, true));
        }

        let mut set = CandidateSet {
            level: Some(level.clone()),
            ..Default::default()
        };
        for profile in profiles {
            if profile.members_with_value == 0 {
                continue;
            }
            let name = suggested_local_name(&profile.property);
            if profile.object_valued {
                let acceptable = profile.is_quasi_functional(self.config.fd_error_threshold)
                    && profile.coverage() + f64::EPSILON >= self.config.min_support
                    && profile.compression_ratio()
                        <= self.config.max_compression_ratio + f64::EPSILON;
                if acceptable {
                    set.levels.push(CandidateLevel {
                        score: profile.score(),
                        suggested_name: name,
                        profile,
                    });
                }
            } else if self.config.suggest_attributes && profile.is_functional() {
                set.attributes.push(CandidateAttribute {
                    suggested_name: name,
                    profile,
                });
            }
        }
        set.levels
            .sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        set.attributes
            .sort_by(|a, b| a.profile.property.cmp(&b.profile.property));
        Ok(set)
    }

    /// Applies a user choice: adds a new (coarser) level above `child_level`,
    /// named `level_name` in the schema namespace, populated through the
    /// candidate's source property. The dimension hierarchy containing
    /// `child_level` is updated automatically, as described in the paper.
    ///
    /// Returns the IRI of the new level so further enrichment rounds can be
    /// run on it.
    pub fn add_level(
        &mut self,
        child_level: &Iri,
        candidate: &CandidateLevel,
        level_name: &str,
    ) -> Result<Iri, EnrichmentError> {
        self.collect_properties(child_level)?;
        let collected = self
            .collected
            .get(child_level)
            .expect("collect_properties just ran");
        let values = if candidate.profile.via_same_as {
            &collected.external
        } else {
            &collected.direct
        };
        let assignment = rollup_assignment(values, &candidate.profile.property);
        if assignment.is_empty() {
            return Err(EnrichmentError::UnknownElement(format!(
                "property <{}> has no values on the members of <{}>",
                candidate.profile.property.as_str(),
                child_level.as_str()
            )));
        }

        let new_level = self.config.schema_iri(level_name);
        let cardinality = if candidate.profile.is_functional() {
            Cardinality::ManyToOne
        } else {
            Cardinality::ManyToMany
        };

        // Record instance data: parents become members of the new level and
        // every child member rolls up to its parent.
        let mut parents: BTreeSet<Term> = BTreeSet::new();
        for (child, parent) in &assignment {
            parents.insert(parent.clone());
            self.rollups.insert((child.clone(), parent.clone()));
        }
        self.members
            .insert(new_level.clone(), parents.into_iter().collect());

        // Update the schema: extend the hierarchy that contains the child level.
        let schema = self.schema_mut()?;
        let dimension = schema
            .dimensions
            .iter_mut()
            .find(|d| d.has_level(child_level))
            .ok_or_else(|| {
                EnrichmentError::UnknownElement(format!(
                    "level <{}> does not belong to any dimension",
                    child_level.as_str()
                ))
            })?;
        let hierarchy = dimension
            .hierarchies
            .iter_mut()
            .find(|h| h.has_level(child_level))
            .expect("dimension found through this level");
        if !hierarchy.levels.contains(&new_level) {
            hierarchy.levels.push(new_level.clone());
        }
        hierarchy.steps.push(HierarchyStep {
            child: child_level.clone(),
            parent: new_level.clone(),
            cardinality,
        });
        schema.level_mut(&new_level);

        Ok(new_level)
    }

    /// Applies a user choice: declares a descriptive attribute on a level,
    /// named `attribute_name` in the schema namespace, populated from
    /// `source_property` on the level's members (directly, or through
    /// `owl:sameAs` when the property was discovered externally).
    pub fn add_attribute(
        &mut self,
        level: &Iri,
        source_property: &Iri,
        attribute_name: &str,
    ) -> Result<Iri, EnrichmentError> {
        let members = self
            .members
            .get(level)
            .cloned()
            .map(Ok)
            .unwrap_or_else(|| self.level_members(level))?;
        let attribute_iri = self.config.schema_iri(attribute_name);

        let mut found = 0usize;
        let iri_members: Vec<&Iri> = members.iter().filter_map(Term::as_iri).collect();
        // One parsed template per source property, shared by every chunk
        // (and by repeated add_attribute calls for the same property).
        let direct_template = self
            .probes
            .attribute_direct
            .entry(source_property.clone())
            .or_insert_with(|| attribute_probe(source_property, false))
            .clone();
        let external_template = if self.config.follow_same_as {
            Some(
                self.probes
                    .attribute_external
                    .entry(source_property.clone())
                    .or_insert_with(|| attribute_probe(source_property, true))
                    .clone(),
            )
        } else {
            None
        };
        for chunk in iri_members.chunks(64) {
            let solutions = self
                .endpoint
                .select_parsed(&probe_for_members(&direct_template, chunk))?;
            let mut matched_members: BTreeSet<Term> = BTreeSet::new();
            for i in 0..solutions.len() {
                if let (Some(m), Some(v)) = (
                    solutions.get(i, "m").cloned(),
                    solutions.get(i, "v").cloned(),
                ) {
                    matched_members.insert(m.clone());
                    self.attribute_values
                        .insert((m, attribute_iri.clone(), v));
                    found += 1;
                }
            }
            if let Some(template) = &external_template {
                let solutions = self
                    .endpoint
                    .select_parsed(&probe_for_members(template, chunk))?;
                for i in 0..solutions.len() {
                    if let (Some(m), Some(v)) = (
                        solutions.get(i, "m").cloned(),
                        solutions.get(i, "v").cloned(),
                    ) {
                        if matched_members.contains(&m) {
                            continue;
                        }
                        self.attribute_values
                            .insert((m, attribute_iri.clone(), v));
                        found += 1;
                    }
                }
            }
        }
        if found == 0 {
            return Err(EnrichmentError::UnknownElement(format!(
                "property <{}> has no values on the members of <{}>",
                source_property.as_str(),
                level.as_str()
            )));
        }

        let schema = self.schema_mut()?;
        let level_entry = schema.level_mut(level);
        if !level_entry.attributes.iter().any(|a| a.iri == attribute_iri) {
            level_entry
                .attributes
                .push(LevelAttribute::new(attribute_iri.clone()));
        }
        Ok(attribute_iri)
    }

    /// Validates the current schema (run after every change by the demo UI).
    pub fn validate(&self) -> Result<SchemaReport, EnrichmentError> {
        let schema = self.schema.as_ref().ok_or_else(|| {
            EnrichmentError::InvalidState("redefine() has not been run yet".to_string())
        })?;
        Ok(validate_schema(schema))
    }

    // ---- Triple Generation phase ----------------------------------------------

    /// Runs the Triple Generation phase: emits schema and instance triples
    /// for everything accumulated so far.
    pub fn generate_triples(&mut self) -> Result<EnrichmentOutput, EnrichmentError> {
        // Bottom levels need their member lists materialised so that
        // qb4o:memberOf triples can be generated for them too.
        let bottom_levels: Vec<Iri> = self
            .qb_dataset
            .structure
            .dimensions()
            .into_iter()
            .cloned()
            .collect();
        for level in &bottom_levels {
            self.level_members(level)?;
        }

        let schema = self.schema.as_ref().ok_or_else(|| {
            EnrichmentError::InvalidState("redefine() has not been run yet".to_string())
        })?;

        let mut output = EnrichmentOutput {
            schema_triples: schema_triples(schema),
            instance_triples: Vec::new(),
        };
        for (level, members) in &self.members {
            for member in members {
                output
                    .instance_triples
                    .push(qb4olap::member_of_triple(member, level));
            }
        }
        for (child, parent) in &self.rollups {
            output
                .instance_triples
                .push(qb4olap::rollup_triple(child, parent));
        }
        for (member, attribute, value) in &self.attribute_values {
            output
                .instance_triples
                .push(qb4olap::attribute_triple(member, attribute, value));
        }
        Ok(output)
    }

    /// Generates the triples and loads them into the endpoint, returning the
    /// run statistics.
    pub fn load_into_endpoint(&mut self) -> Result<EnrichmentStats, EnrichmentError> {
        let output = self.generate_triples()?;
        self.endpoint.insert_triples(&output.schema_triples)?;
        self.endpoint.insert_triples(&output.instance_triples)?;
        let schema = self.schema.as_ref().expect("generate_triples checked");
        Ok(EnrichmentStats {
            schema_triples: output.schema_triples.len(),
            instance_triples: output.instance_triples.len(),
            dimensions: schema.dimensions.len(),
            levels: schema.levels.len(),
            attributes: schema.levels.values().map(|l| l.attributes.len()).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{load_demo_endpoint, EurostatConfig, NoiseConfig};
    use rdf::vocab::{demo_schema, dbpedia, eurostat_property, rdfs, sdmx_measure};
    use sparql::LocalEndpoint;

    fn demo_config() -> EnrichmentConfig {
        EnrichmentConfig::default()
            .name_dimension(
                eurostat_property::citizen(),
                "citizenshipDim",
                "citizenshipGeoHier",
            )
            .name_dimension(eurostat_property::geo(), "destinationDim", "destinationHier")
            .name_dimension(rdf::vocab::sdmx_dimension::ref_period(), "timeDim", "timeHier")
            .name_dimension(eurostat_property::asyl_app(), "asylappDim", "asylappHier")
    }

    fn session_on<'e>(endpoint: &'e LocalEndpoint, dataset: &Iri) -> EnrichmentSession<'e> {
        EnrichmentSession::start(endpoint, dataset, demo_config()).unwrap()
    }

    #[test]
    fn redefinition_creates_levels_dimensions_and_measures() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(150));
        let mut session = session_on(&endpoint, &data.dataset);
        let schema = session.redefine().unwrap().clone();

        assert_eq!(schema.level_components.len(), 6);
        assert_eq!(schema.dimensions.len(), 6);
        assert_eq!(schema.measures.len(), 1);
        assert_eq!(
            schema.measures[0].aggregate,
            qb4olap::AggregateFunction::Sum
        );
        // The paper's naming is honoured.
        assert!(schema.dimension(&demo_schema::citizenship_dim()).is_some());
        assert_eq!(
            schema.bottom_level_of_dimension(&demo_schema::citizenship_dim()),
            Some(eurostat_property::citizen())
        );
        // Every dimension starts with a single-level default hierarchy.
        for dimension in &schema.dimensions {
            assert_eq!(dimension.hierarchies.len(), 1);
            assert_eq!(dimension.hierarchies[0].levels.len(), 1);
        }
    }

    #[test]
    fn candidate_discovery_finds_continent_for_citizen() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(300));
        let mut session = session_on(&endpoint, &data.dataset);
        session.redefine().unwrap();

        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        // The in-dataset continent link is a candidate...
        let continent = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .expect("continent candidate discovered");
        assert!(continent.profile.is_functional());
        assert!(continent.profile.coverage() > 0.9);
        // ... and so are the external DBpedia properties (government type).
        let government = candidates
            .level_candidate(&dbpedia::government_type())
            .expect("external governmentType candidate discovered");
        assert!(government.profile.via_same_as);
        // rdfs:label is suggested as an attribute, not as a level.
        assert!(candidates.attribute_candidate(&rdfs::label()).is_some());
        assert!(candidates.level_candidate(&rdfs::label()).is_none());
    }

    #[test]
    fn add_level_updates_hierarchy_and_members() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(300));
        let mut session = session_on(&endpoint, &data.dataset);
        session.redefine().unwrap();

        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let continent_candidate = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let continent_level = session
            .add_level(&eurostat_property::citizen(), &continent_candidate, "continent")
            .unwrap();
        assert_eq!(continent_level, demo_schema::continent());

        let schema = session.schema().unwrap();
        let dimension = schema.dimension(&demo_schema::citizenship_dim()).unwrap();
        let hierarchy = &dimension.hierarchies[0];
        assert!(hierarchy.has_level(&continent_level));
        assert_eq!(hierarchy.steps.len(), 1);
        assert_eq!(hierarchy.steps[0].cardinality, Cardinality::ManyToOne);

        // The new level's members are the continents of the countries in use.
        let members = session.level_members(&continent_level).unwrap();
        assert!(members.len() >= 2 && members.len() <= 4, "{members:?}");

        // A second round on the new level discovers the all-citizenships level.
        let next = session.discover_candidates(&continent_level).unwrap();
        assert!(next
            .level_candidate(&datagen::eurostat::all_property())
            .is_some());
    }

    #[test]
    fn add_attribute_from_labels() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(200));
        let mut session = session_on(&endpoint, &data.dataset);
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let continent_candidate = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let continent_level = session
            .add_level(&eurostat_property::citizen(), &continent_candidate, "continent")
            .unwrap();

        let attribute = session
            .add_attribute(&continent_level, &rdfs::label(), "continentName")
            .unwrap();
        assert_eq!(attribute, demo_schema::continent_name());
        let schema = session.schema().unwrap();
        assert_eq!(schema.level_attributes(&continent_level).len(), 1);

        // Unknown properties are rejected.
        assert!(matches!(
            session.add_attribute(
                &continent_level,
                &Iri::new("http://example.org/doesNotExist"),
                "broken"
            ),
            Err(EnrichmentError::UnknownElement(_))
        ));
    }

    #[test]
    fn triple_generation_loads_queryable_rollups() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(250));
        let mut session = session_on(&endpoint, &data.dataset);
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let continent_candidate = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let continent_level = session
            .add_level(&eurostat_property::citizen(), &continent_candidate, "continent")
            .unwrap();
        session
            .add_attribute(&continent_level, &rdfs::label(), "continentName")
            .unwrap();

        let before = endpoint.triple_count();
        let stats = session.load_into_endpoint().unwrap();
        assert!(endpoint.triple_count() > before);
        assert!(stats.schema_triples > 0 && stats.instance_triples > 0);
        assert_eq!(stats.dimensions, 6);

        // The schema can be read back (what Exploration/Querying do)...
        let loaded = qb4olap::schema_from_endpoint(&endpoint, &data.dataset).unwrap();
        assert!(loaded.dimension(&demo_schema::citizenship_dim()).is_some());
        // ... and the instance roll-ups are queryable.
        let pairs = qb4olap::rollup_pairs(
            &endpoint,
            &eurostat_property::citizen(),
            &continent_level,
        )
        .unwrap();
        assert!(!pairs.is_empty());
        // Attribute values are present on the continent members.
        let attr = qb4olap::attribute_value(
            &endpoint,
            &datagen::eurostat::continent_member("Africa"),
            &demo_schema::continent_name(),
        )
        .unwrap();
        assert!(attr.is_some());

        // The validation report is clean.
        assert!(session.validate().unwrap().is_valid());
    }

    #[test]
    fn quasi_fd_threshold_controls_noisy_candidates() {
        let noisy = EurostatConfig {
            observations: 200,
            noise: NoiseConfig {
                missing_link_fraction: 0.0,
                conflicting_link_fraction: 0.2,
            },
            ..Default::default()
        };
        let (endpoint, data) = load_demo_endpoint(&noisy);

        // With a strict threshold the conflicting continent links disqualify
        // the property...
        let strict = EnrichmentConfig::default()
            .without_external_sources()
            .with_fd_error_threshold(0.0);
        let mut session = EnrichmentSession::start(&endpoint, &data.dataset, strict).unwrap();
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        assert!(candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .is_none());

        // ... while a quasi-FD threshold of 25% lets it through again.
        let lenient = EnrichmentConfig::default()
            .without_external_sources()
            .with_fd_error_threshold(0.25);
        let mut session = EnrichmentSession::start(&endpoint, &data.dataset, lenient).unwrap();
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let candidate = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .expect("quasi-FD accepted");
        assert!(!candidate.profile.is_functional());
    }

    #[test]
    fn workflow_misuse_is_reported() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(50));
        let mut session = session_on(&endpoint, &data.dataset);
        // Using the Enrichment phase before redefinition.
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        let candidate = candidates.levels.first().cloned().unwrap();
        assert!(matches!(
            session.add_level(&eurostat_property::citizen(), &candidate, "x"),
            Err(EnrichmentError::InvalidState(_))
        ));
        assert!(matches!(
            session.validate(),
            Err(EnrichmentError::InvalidState(_))
        ));
        // Asking for members of an unknown level.
        assert!(matches!(
            session.level_members(&Iri::new("http://example.org/notALevel")),
            Err(EnrichmentError::UnknownElement(_))
        ));
        // Sessions on unknown datasets fail to start.
        assert!(EnrichmentSession::start(
            &endpoint,
            &Iri::new("http://example.org/ghost"),
            EnrichmentConfig::default()
        )
        .is_err());
    }

    #[test]
    fn probe_templates_are_parsed_once_and_reused_across_phases() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(250));
        let mut session = session_on(&endpoint, &data.dataset);
        session.redefine().unwrap();

        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        assert!(session.probes.member_properties.is_some());
        assert!(session.probes.member_properties_external.is_some());
        let cached = session.probes.member_properties.clone().unwrap();

        // A second discovery round (another phase, another level) reuses
        // the very same parsed template instead of re-parsing.
        let continent = candidates
            .level_candidate(&datagen::eurostat::continent_property())
            .unwrap()
            .clone();
        let continent_level = session
            .add_level(&eurostat_property::citizen(), &continent, "continent")
            .unwrap();
        session.discover_candidates(&continent_level).unwrap();
        assert_eq!(session.probes.member_properties.as_ref(), Some(&cached));

        // Attribute probes are cached per source property.
        session
            .add_attribute(&continent_level, &rdfs::label(), "continentName")
            .unwrap();
        assert_eq!(session.probes.attribute_direct.len(), 1);
        session
            .add_attribute(&eurostat_property::citizen(), &rdfs::label(), "citizenName")
            .unwrap();
        assert_eq!(
            session.probes.attribute_direct.len(),
            1,
            "same property, same template"
        );
        assert!(session
            .probes
            .attribute_direct
            .contains_key(&rdfs::label()));
    }

    #[test]
    fn measure_aggregate_follows_configuration() {
        let (endpoint, data) = load_demo_endpoint(&EurostatConfig::small(60));
        let mut config = demo_config();
        config.default_aggregate = qb4olap::AggregateFunction::Avg;
        let mut session = EnrichmentSession::start(&endpoint, &data.dataset, config).unwrap();
        let schema = session.redefine().unwrap();
        assert_eq!(
            schema.measure(&sdmx_measure::obs_value()).map(|m| m.aggregate),
            Some(qb4olap::AggregateFunction::Avg)
        );
    }
}
