//! Candidate roll-up levels and level attributes suggested to the user.
//!
//! After the functional-dependency analysis, the Enrichment module presents
//! the discovered candidates so the user can "choose out of the
//! automatically discovered candidate properties the roll-up relationships
//! of her interest", drastically pruning the search space (Section III-A).

use rdf::Iri;

use crate::fd::PropertyProfile;

/// A property suggested as a coarser-granularity level for some level.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateLevel {
    /// The analysed property (e.g. `dic:continent` or `dbo:governmentType`).
    pub profile: PropertyProfile,
    /// Suggested local name for the new level (derived from the property).
    pub suggested_name: String,
    /// Ranking score (higher is better).
    pub score: f64,
}

/// A literal-valued property suggested as a descriptive level attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateAttribute {
    /// The analysed property (e.g. `rdfs:label`).
    pub profile: PropertyProfile,
    /// Suggested local name for the attribute.
    pub suggested_name: String,
}

/// The candidates discovered for one level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CandidateSet {
    /// The level the candidates were computed for.
    pub level: Option<Iri>,
    /// Roll-up (new level) candidates, best first.
    pub levels: Vec<CandidateLevel>,
    /// Attribute candidates, best first.
    pub attributes: Vec<CandidateAttribute>,
}

impl CandidateSet {
    /// Finds a level candidate by its source property.
    pub fn level_candidate(&self, property: &Iri) -> Option<&CandidateLevel> {
        self.levels.iter().find(|c| &c.profile.property == property)
    }

    /// Finds an attribute candidate by its source property.
    pub fn attribute_candidate(&self, property: &Iri) -> Option<&CandidateAttribute> {
        self.attributes
            .iter()
            .find(|c| &c.profile.property == property)
    }

    /// A short textual report of the candidates (used by the examples to
    /// mimic the Enrichment GUI of Figure 4).
    pub fn to_report(&self) -> String {
        let mut out = String::new();
        if let Some(level) = &self.level {
            out.push_str(&format!("Candidates for level <{}>\n", level.as_str()));
        }
        out.push_str(&format!("  roll-up candidates: {}\n", self.levels.len()));
        for candidate in &self.levels {
            out.push_str(&format!(
                "    {} -> {} distinct parents (coverage {:.0}%, violations {:.1}%, score {:.3}){}\n",
                candidate.profile.property.as_str(),
                candidate.profile.distinct_values,
                candidate.profile.coverage() * 100.0,
                candidate.profile.violation_rate() * 100.0,
                candidate.score,
                if candidate.profile.via_same_as {
                    " [external]"
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!(
            "  attribute candidates: {}\n",
            self.attributes.len()
        ));
        for candidate in &self.attributes {
            out.push_str(&format!(
                "    {} (coverage {:.0}%)\n",
                candidate.profile.property.as_str(),
                candidate.profile.coverage() * 100.0
            ));
        }
        out
    }
}

/// Derives a human-friendly local name for a schema element from a property
/// IRI: the local name with the first character lower-cased
/// (`.../continent` → `continent`, `.../governmentType` → `governmentType`).
pub fn suggested_local_name(property: &Iri) -> String {
    let local = property.local_name();
    let mut chars = local.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => "level".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Term;

    fn profile(property: &str, via_same_as: bool) -> PropertyProfile {
        PropertyProfile {
            property: Iri::new(property),
            via_same_as,
            members_analyzed: 10,
            members_with_value: 10,
            violating_members: 0,
            distinct_values: 3,
            object_valued: true,
            sample_values: vec![Term::iri("http://example.org/v")],
        }
    }

    #[test]
    fn lookup_by_property() {
        let set = CandidateSet {
            level: Some(Iri::new("http://example.org/level")),
            levels: vec![CandidateLevel {
                profile: profile("http://example.org/continent", false),
                suggested_name: "continent".to_string(),
                score: 0.7,
            }],
            attributes: vec![CandidateAttribute {
                profile: profile("http://www.w3.org/2000/01/rdf-schema#label", false),
                suggested_name: "name".to_string(),
            }],
        };
        assert!(set
            .level_candidate(&Iri::new("http://example.org/continent"))
            .is_some());
        assert!(set
            .level_candidate(&Iri::new("http://example.org/other"))
            .is_none());
        assert!(set
            .attribute_candidate(&Iri::new("http://www.w3.org/2000/01/rdf-schema#label"))
            .is_some());
        let report = set.to_report();
        assert!(report.contains("roll-up candidates: 1"));
        assert!(report.contains("attribute candidates: 1"));
    }

    #[test]
    fn external_candidates_are_flagged_in_the_report() {
        let set = CandidateSet {
            level: None,
            levels: vec![CandidateLevel {
                profile: profile("http://dbpedia.org/ontology/governmentType", true),
                suggested_name: "governmentType".to_string(),
                score: 0.5,
            }],
            attributes: vec![],
        };
        assert!(set.to_report().contains("[external]"));
    }

    #[test]
    fn suggested_names_are_lower_camel() {
        assert_eq!(
            suggested_local_name(&Iri::new("http://dbpedia.org/ontology/GovernmentType")),
            "governmentType"
        );
        assert_eq!(
            suggested_local_name(&Iri::new("http://x.org/dic/continent")),
            "continent"
        );
    }
}
