//! Functional-dependency analysis over level-instance properties.
//!
//! This is the analytical core of the Enrichment phase (Section III-A): for
//! each property observed on the members of a level, decide whether the
//! property behaves as a functional dependency member → value (or a quasi-FD
//! within an error threshold), because such properties are sound candidates
//! for coarser-granularity levels [Romero & Abelló, DKE 2010].

use std::collections::{BTreeMap, BTreeSet};

use rdf::{Iri, Term};

/// The observed values of every property over the members of a level:
/// `member → property → set of values`.
pub type MemberPropertyValues = BTreeMap<Term, BTreeMap<Iri, BTreeSet<Term>>>;

/// Statistics of one property over the analysed members.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyProfile {
    /// The property.
    pub property: Iri,
    /// Whether the property was reached through an `owl:sameAs` hop into an
    /// external dataset.
    pub via_same_as: bool,
    /// Number of members analysed.
    pub members_analyzed: usize,
    /// Members carrying at least one value for the property.
    pub members_with_value: usize,
    /// Members carrying more than one distinct value (FD violations).
    pub violating_members: usize,
    /// Number of distinct values across all members.
    pub distinct_values: usize,
    /// True if every observed value is an IRI (object-valued property —
    /// a roll-up candidate); false if any value is a literal (an attribute
    /// candidate).
    pub object_valued: bool,
    /// A few sample values, for display in the user interface.
    pub sample_values: Vec<Term>,
}

impl PropertyProfile {
    /// Fraction of members that carry the property at all.
    pub fn coverage(&self) -> f64 {
        if self.members_analyzed == 0 {
            0.0
        } else {
            self.members_with_value as f64 / self.members_analyzed as f64
        }
    }

    /// Fraction of value-carrying members that violate functionality.
    pub fn violation_rate(&self) -> f64 {
        if self.members_with_value == 0 {
            0.0
        } else {
            self.violating_members as f64 / self.members_with_value as f64
        }
    }

    /// `distinct values / members with value`: below 1.0 the property groups
    /// members, i.e. rolling up to it reduces cardinality.
    pub fn compression_ratio(&self) -> f64 {
        if self.members_with_value == 0 {
            1.0
        } else {
            self.distinct_values as f64 / self.members_with_value as f64
        }
    }

    /// True if the property is a strict functional dependency on the sample.
    pub fn is_functional(&self) -> bool {
        self.violating_members == 0
    }

    /// True if the property is a quasi-FD within the given error threshold.
    pub fn is_quasi_functional(&self, error_threshold: f64) -> bool {
        self.violation_rate() <= error_threshold + f64::EPSILON
    }

    /// A ranking score: high coverage and strong grouping first.
    /// `coverage × (1 − compression) × (1 − violation rate)`.
    pub fn score(&self) -> f64 {
        self.coverage() * (1.0 - self.compression_ratio()).max(0.0) * (1.0 - self.violation_rate())
    }
}

/// Computes a [`PropertyProfile`] for every property present on the members.
pub fn analyze_members(values: &MemberPropertyValues, via_same_as: bool) -> Vec<PropertyProfile> {
    let members_analyzed = values.len();
    let mut per_property: BTreeMap<&Iri, (usize, usize, BTreeSet<&Term>, bool)> = BTreeMap::new();
    for properties in values.values() {
        for (property, member_values) in properties {
            let entry = per_property
                .entry(property)
                .or_insert((0, 0, BTreeSet::new(), true));
            if !member_values.is_empty() {
                entry.0 += 1;
                if member_values.len() > 1 {
                    entry.1 += 1;
                }
                for value in member_values {
                    entry.2.insert(value);
                    if !value.is_iri() {
                        entry.3 = false;
                    }
                }
            }
        }
    }

    per_property
        .into_iter()
        .map(
            |(property, (members_with_value, violating_members, distinct, object_valued))| {
                let sample_values = distinct.iter().take(5).map(|t| (*t).clone()).collect();
                PropertyProfile {
                    property: property.clone(),
                    via_same_as,
                    members_analyzed,
                    members_with_value,
                    violating_members,
                    distinct_values: distinct.len(),
                    object_valued,
                    sample_values,
                }
            },
        )
        .collect()
}

/// For a (quasi-)functional property, the chosen parent value per member.
/// When a member has several values (quasi-FD violations) the
/// lexicographically smallest value is chosen deterministically; members
/// without a value are omitted.
pub fn rollup_assignment(
    values: &MemberPropertyValues,
    property: &Iri,
) -> BTreeMap<Term, Term> {
    let mut assignment = BTreeMap::new();
    for (member, properties) in values {
        if let Some(parent_values) = properties.get(property) {
            if let Some(parent) = parent_values.iter().next() {
                assignment.insert(member.clone(), parent.clone());
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(name: &str) -> Term {
        Term::iri(format!("http://example.org/m/{name}"))
    }

    fn value(name: &str) -> Term {
        Term::iri(format!("http://example.org/v/{name}"))
    }

    fn property(name: &str) -> Iri {
        Iri::new(format!("http://example.org/p/{name}"))
    }

    fn dataset() -> MemberPropertyValues {
        // 4 members; `continent` is a perfect FD with 2 distinct values,
        // `contested` gives one member two values, `rare` appears on one
        // member only, `label` is literal-valued.
        let mut values: MemberPropertyValues = BTreeMap::new();
        for (m, continent) in [("SY", "Asia"), ("AF", "Asia"), ("NG", "Africa"), ("ML", "Africa")] {
            let mut properties: BTreeMap<Iri, BTreeSet<Term>> = BTreeMap::new();
            properties.insert(property("continent"), BTreeSet::from([value(continent)]));
            properties.insert(property("label"), BTreeSet::from([Term::string(m)]));
            values.insert(member(m), properties);
        }
        values
            .get_mut(&member("SY"))
            .unwrap()
            .insert(property("contested"), BTreeSet::from([value("A"), value("B")]));
        values
            .get_mut(&member("AF"))
            .unwrap()
            .insert(property("contested"), BTreeSet::from([value("A")]));
        values
            .get_mut(&member("NG"))
            .unwrap()
            .insert(property("rare"), BTreeSet::from([value("X")]));
        values
    }

    fn profile<'a>(profiles: &'a [PropertyProfile], name: &str) -> &'a PropertyProfile {
        profiles
            .iter()
            .find(|p| p.property == property(name))
            .expect("profile exists")
    }

    #[test]
    fn perfect_fd_is_detected() {
        let profiles = analyze_members(&dataset(), false);
        let continent = profile(&profiles, "continent");
        assert!(continent.is_functional());
        assert_eq!(continent.coverage(), 1.0);
        assert_eq!(continent.distinct_values, 2);
        assert_eq!(continent.compression_ratio(), 0.5);
        assert!(continent.object_valued);
        assert!(continent.score() > 0.0);
    }

    #[test]
    fn violations_and_quasi_fd_threshold() {
        let profiles = analyze_members(&dataset(), false);
        let contested = profile(&profiles, "contested");
        assert!(!contested.is_functional());
        assert_eq!(contested.members_with_value, 2);
        assert_eq!(contested.violating_members, 1);
        assert!((contested.violation_rate() - 0.5).abs() < 1e-12);
        assert!(!contested.is_quasi_functional(0.1));
        assert!(contested.is_quasi_functional(0.5));
    }

    #[test]
    fn coverage_reflects_missing_members() {
        let profiles = analyze_members(&dataset(), false);
        let rare = profile(&profiles, "rare");
        assert_eq!(rare.members_with_value, 1);
        assert!((rare.coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn literal_valued_properties_are_not_object_valued() {
        let profiles = analyze_members(&dataset(), false);
        let label = profile(&profiles, "label");
        assert!(!label.object_valued);
        assert!(label.is_functional());
    }

    #[test]
    fn rollup_assignment_picks_a_single_parent() {
        let data = dataset();
        let assignment = rollup_assignment(&data, &property("continent"));
        assert_eq!(assignment.len(), 4);
        assert_eq!(assignment.get(&member("SY")), Some(&value("Asia")));
        // For the contested property the smallest value is chosen.
        let contested = rollup_assignment(&data, &property("contested"));
        assert_eq!(contested.get(&member("SY")), Some(&value("A")));
        assert_eq!(contested.len(), 2);
    }

    #[test]
    fn empty_input_is_handled() {
        let profiles = analyze_members(&BTreeMap::new(), false);
        assert!(profiles.is_empty());
        let profile = PropertyProfile {
            property: property("x"),
            via_same_as: false,
            members_analyzed: 0,
            members_with_value: 0,
            violating_members: 0,
            distinct_values: 0,
            object_valued: true,
            sample_values: Vec::new(),
        };
        assert_eq!(profile.coverage(), 0.0);
        assert_eq!(profile.violation_rate(), 0.0);
        assert_eq!(profile.compression_ratio(), 1.0);
    }
}

// Randomised invariant tests. The seed repo expressed these with `proptest`,
// which is unavailable in the offline build; seeded `StdRng` sampling keeps
// the same invariant coverage (without shrinking) and stays deterministic.
#[cfg(test)]
mod proptests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    const CASES: u64 = 256;

    /// Random instance data shaped like proptest's original strategy:
    /// members 0..20, properties 0..4, each member/property pair carrying
    /// 0..3 values drawn from a pool of 6.
    fn random_values(rng: &mut StdRng) -> MemberPropertyValues {
        let mut values: MemberPropertyValues = BTreeMap::new();
        for _ in 0..rng.gen_range(0..20usize) {
            let member = Term::iri(format!("http://m/{}", rng.gen_range(0..20u8)));
            let mut properties = BTreeMap::new();
            for _ in 0..rng.gen_range(0..4usize) {
                let property = Iri::new(format!("http://p/{}", rng.gen_range(0..4u8)));
                let mut objects = BTreeSet::new();
                for _ in 0..rng.gen_range(0..3usize) {
                    objects.insert(Term::iri(format!("http://v/{}", rng.gen_range(0..6u8))));
                }
                properties.insert(property, objects);
            }
            values.insert(member, properties);
        }
        values
    }

    /// Profile counters are internally consistent and the derived ratios
    /// stay inside [0, 1].
    #[test]
    fn profile_invariants() {
        for seed in 0..CASES {
            let values = random_values(&mut StdRng::seed_from_u64(seed));
            let profiles = analyze_members(&values, false);
            for p in &profiles {
                assert!(p.members_with_value <= p.members_analyzed, "seed {seed}");
                assert!(p.violating_members <= p.members_with_value, "seed {seed}");
                assert!((0.0..=1.0).contains(&p.coverage()), "seed {seed}");
                assert!((0.0..=1.0).contains(&p.violation_rate()), "seed {seed}");
                assert!(p.compression_ratio() >= 0.0, "seed {seed}");
                assert!(p.score() >= 0.0 && p.score() <= 1.0, "seed {seed}");
                // A strict FD is always a quasi-FD for any threshold.
                if p.is_functional() {
                    assert!(p.is_quasi_functional(0.0), "seed {seed}");
                }
                // Quasi-FD acceptance is monotone in the threshold.
                if p.is_quasi_functional(0.1) {
                    assert!(p.is_quasi_functional(0.5), "seed {seed}");
                }
            }
        }
    }

    /// The roll-up assignment never invents members and only maps members
    /// that actually carry the property.
    #[test]
    fn rollup_assignment_is_subset() {
        for seed in 0..CASES {
            let values = random_values(&mut StdRng::seed_from_u64(seed));
            let profiles = analyze_members(&values, false);
            for p in &profiles {
                let assignment = rollup_assignment(&values, &p.property);
                assert_eq!(assignment.len(), p.members_with_value, "seed {seed}");
                for (member, parent) in assignment {
                    let member_values =
                        values.get(&member).and_then(|props| props.get(&p.property));
                    assert!(
                        member_values.map(|vs| vs.contains(&parent)).unwrap_or(false),
                        "seed {seed}"
                    );
                }
            }
        }
    }
}
