//! Dictionary encoding of RDF terms into dense `u32` member ids.
//!
//! Every dimension column and every level of the materialized cube has its
//! own dictionary, so member ids stay small and the roll-up maps can be
//! plain `Vec<MemberId>` lookups. The interning itself is [`rdf::Interner`]
//! (the same structure the triple store uses); this module adds the
//! member-id sentinels and the overflow guard they require.
//!
//! Dictionaries are **copy-on-write**: the interner lives behind an `Arc`,
//! so cloning a cube shares every dictionary, and [`Dictionary::encode`]
//! copies the interner only when a delta introduces a member the
//! dictionary has never seen. A refresh that appends observations over
//! *existing* members — the serving-layer hot case — leaves all
//! dictionaries fully shared with the previous cube.

use std::sync::Arc;

use rdf::{Interner, Term};

/// A dense identifier for a member within one [`Dictionary`].
pub type MemberId = u32;

/// Sentinel id for "no member": an unbound dimension value on an
/// observation, or a member with no ancestor at the roll-up target level
/// (ragged hierarchies).
pub const NO_MEMBER: MemberId = MemberId::MAX;

/// Sentinel id for a member with *several* ancestors at the roll-up target
/// level. The SPARQL backend duplicates the observation across the
/// ancestors in that case; the columnar engine refuses to aggregate such
/// non-functional roll-ups and reports an error when the member is reached.
pub const AMBIGUOUS_MEMBER: MemberId = MemberId::MAX - 1;

/// Interns [`Term`]s into dense [`MemberId`]s and back: a thin wrapper
/// around [`rdf::Interner`] that keeps the id space clear of the
/// [`NO_MEMBER`] / [`AMBIGUOUS_MEMBER`] sentinels.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    interner: Arc<Interner>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with room for `capacity` members.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut interner = Interner::new();
        interner.reserve(capacity);
        Dictionary {
            interner: Arc::new(interner),
        }
    }

    /// Returns the id for `term`, interning it if necessary. Interning a
    /// *new* term copies the shared interner first (copy-on-write);
    /// re-encoding a known term never does.
    pub fn encode(&mut self, term: &Term) -> MemberId {
        if let Some(id) = self.interner.get(term) {
            return id;
        }
        let id = Arc::make_mut(&mut self.interner).intern(term);
        assert!(id < AMBIGUOUS_MEMBER, "dictionary overflow");
        id
    }

    /// The id of `term` if it has been interned.
    pub fn id(&self, term: &Term) -> Option<MemberId> {
        self.interner.get(term)
    }

    /// The term behind a previously issued id.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this dictionary (including the
    /// [`NO_MEMBER`] / [`AMBIGUOUS_MEMBER`] sentinels).
    pub fn term(&self, id: MemberId) -> &Term {
        self.interner.resolve(id)
    }

    /// Number of distinct members.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// True if no member has been interned.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (MemberId, &Term)> {
        self.interner.iter()
    }

    /// True if two dictionaries share one interner allocation — how the
    /// copy-on-write tests (and the maintenance experiments) verify that
    /// a refresh did not deep-copy a dictionary.
    pub fn shares_storage_with(&self, other: &Dictionary) -> bool {
        Arc::ptr_eq(&self.interner, &other.interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut dict = Dictionary::with_capacity(4);
        let a = Term::iri("http://example.org/a");
        let b = Term::iri("http://example.org/b");
        let ia = dict.encode(&a);
        let ib = dict.encode(&b);
        assert_ne!(ia, ib);
        assert_eq!(dict.encode(&a), ia, "re-encoding is stable");
        assert_eq!(dict.term(ia), &a);
        assert_eq!(dict.id(&b), Some(ib));
        assert_eq!(dict.id(&Term::iri("http://example.org/c")), None);
        assert_eq!(dict.len(), 2);
        assert!(!dict.is_empty());
        assert_eq!(dict.iter().count(), 2);
    }

    #[test]
    fn empty_dictionary() {
        let dict = Dictionary::new();
        assert!(dict.is_empty());
        assert_eq!(dict.len(), 0);
    }

    #[test]
    fn clones_share_the_interner_until_a_new_member_arrives() {
        let mut dict = Dictionary::new();
        let a = Term::iri("http://example.org/a");
        let ia = dict.encode(&a);
        let mut clone = dict.clone();
        assert!(Arc::ptr_eq(&dict.interner, &clone.interner));
        // Re-encoding a known term keeps the sharing.
        assert_eq!(clone.encode(&a), ia);
        assert!(Arc::ptr_eq(&dict.interner, &clone.interner));
        // A genuinely new member copies the clone's interner only.
        clone.encode(&Term::iri("http://example.org/b"));
        assert!(!Arc::ptr_eq(&dict.interner, &clone.interner));
        assert_eq!(dict.len(), 1);
        assert_eq!(clone.len(), 2);
    }
}
