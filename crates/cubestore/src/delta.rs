//! Incremental maintenance: applies recorded store deltas
//! ([`rdf::StoreDelta`]) to a [`MaterializedCube`] without touching the
//! endpoint.
//!
//! The delta path handles every *pure-data* mutation — appending new
//! observations (any measure type: float aggregation is order-independent
//! via [`sparql::NumericSum`], so append order cannot diverge from a
//! rebuild's row order), introducing brand-new members (with their
//! roll-up links, labels and attribute values), and removing observations
//! whole **or in part** — by extending the copy-on-write columns and
//! roll-up maps and tombstoning removed rows. A partial removal
//! re-classifies the surviving fragment exactly as a fresh build would:
//! unlinked from the dataset → invisible; untyped or missing a measure →
//! recorded as *dropped*; still complete → re-appended as a live row with
//! the removed dimension values unbound. Every mutation the path cannot
//! replay with bit-identical results refuses with
//! [`CubeStoreError::DeltaUnsupported`], whose typed [`DeltaRefusal`]
//! becomes the rebuild reason in the catalog's maintenance report, so a
//! wrong classification can cost a rebuild but never correctness.
//!
//! # Delta-vs-rebuild decision table
//!
//! What is appliable, what is refused, and why. The refusal kinds are the
//! [`RefusalKind`] variants; `tests::refusal_kinds_match_the_decision_table`
//! keeps this table and the classifier in sync. (EXPERIMENTS.md §E13
//! measures the cost difference between the two columns.)
//!
//! | Mutation | Decision | Refusal kind / rationale |
//! |---|---|---|
//! | Insert a complete new observation (typed, linked, every measure) over known members | **apply**: extend each column's tail | — |
//! | Insert a complete new observation referencing a brand-new member | **apply**: extend level index, adjacency and roll-up maps, then append | — |
//! | Insert `qb4o:memberOf` for a fresh term | **apply**: add to the level index | — |
//! | Insert `skos:broader` for a fresh (not yet materialized) child | **apply**: extend the adjacency | — |
//! | Insert an attribute/label value filling an empty slot | **apply**: set the slot | — |
//! | Remove **all** triples of one materialized observation in one delta | **apply**: tombstone its row (executor skips it; catalog compacts when the live fraction drops) | — |
//! | Remove the `qb:dataSet` link (and possibly more) of a materialized observation | **apply**: tombstone; the fragment is invisible to a fresh build | — |
//! | Remove the type triple or a measure value of a materialized observation | **apply**: tombstone and record the fragment as *dropped* (a fresh build drops it too); later mutations of it rebuild | — |
//! | Remove only dimension values of a materialized observation | **apply**: tombstone the old row and re-append the surviving row with those dimensions unbound | — |
//! | Remove a dimension/measure value of a materialized observation that the build never materialized (a duplicate the store held) | refuse | [`RefusalKind::ObservationMutated`] — a fresh build could now pick a different value |
//! | Partially remove an observation that carried **several** values for some dimension/measure at build time | refuse | [`RefusalKind::ObservationMutated`] — stripping the frozen value would silently expose the duplicate a fresh build now picks |
//! | Insert/remove a schema or hierarchy-structure triple (`qb:*` components, `qb4o:*` structure) | refuse | [`RefusalKind::SchemaStructure`] — every roll-up map could change |
//! | Add a `skos:broader` link to an existing member | refuse | [`RefusalKind::RollupLinkAdded`] — frozen roll-up entries could change |
//! | Remove a `skos:broader` link of a known member | refuse | [`RefusalKind::RollupLinkRemoved`] — ragged-hierarchy drops must be recomputed |
//! | Remove a `qb4o:memberOf` declaration | refuse | [`RefusalKind::MemberRemoved`] |
//! | Declare a member for a term already in the fact columns / reachable in the hierarchy | refuse | [`RefusalKind::MemberConflict`] — its frozen roll-up entries were computed without the declaration |
//! | Give a materialized observation a new dimension/measure value | refuse | [`RefusalKind::ObservationMutated`] |
//! | Touch (insert into or remove from) a previously *dropped* observation | refuse | [`RefusalKind::DroppedObservationMutated`] — a fresh build might classify it differently now |
//! | Insert an incomplete observation (untyped or missing a measure) | refuse | [`RefusalKind::IncompleteObservation`] — a later delta may complete it |
//! | Insert an observation with several values per dimension/measure, or a non-literal measure | refuse | [`RefusalKind::MalformedObservation`] |
//! | Append to a populated **float** measure column | **apply**: extend the tail — SUM/AVG go through the order-independent compensated accumulator, so append order cannot move any aggregate off a rebuild's result by even an ulp | — |
//! | Attribute value conflicting with the materialized one | refuse | [`RefusalKind::AttributeConflict`] (first-value-wins needs build order) |
//! | Remove an attribute value / change or remove the dataset label | refuse | [`RefusalKind::AttributeRemoved`] / [`RefusalKind::DatasetLabelChanged`] |
//! | Attribute value for a member the cube never saw | refuse | [`RefusalKind::UnknownMemberAttribute`] — it may matter to a member of a later delta |
//! | Anything in a named graph, or triples invisible to the materialization | **skip** (no-op) | the cube materializes the default graph only |
//!
//! Removal batching still matters, just less than it used to: a removal
//! spread across several `Store::remove` calls arrives as several
//! single-triple deltas, each of which is applied as a *partial* removal —
//! the first one usually turns the fragment into a *dropped* observation,
//! and the next delta touching that dropped fragment refuses with
//! [`RefusalKind::DroppedObservationMutated`] and rebuilds. Callers that
//! want a clean one-step tombstone batch the whole observation through
//! [`rdf::Store::remove_all`] (or [`rdf::Store::remove_matching`]).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rdf::vocab::{qb, qb4o, rdf as rdfv, rdfs, skos};
use rdf::{Iri, StoreDelta, Term, Triple};

use crate::build::{resolve_rollup_target, MaterializedCube};
use crate::dictionary::NO_MEMBER;
use crate::error::{CubeStoreError, DeltaRefusal, RefusalKind};

impl MaterializedCube {
    /// Applies a sequence of store deltas, returning the refreshed cube.
    ///
    /// On success the result is query-equivalent to a fresh
    /// [`MaterializedCube::from_endpoint`] over the mutated store. On
    /// [`CubeStoreError::DeltaUnsupported`] the cube is untouched and the
    /// caller should rebuild (the [`DeltaRefusal`] is the reason). Deltas
    /// of named graphs are skipped: the cube materializes the default
    /// graph, which is all the local SPARQL engine queries.
    ///
    /// The returned cube shares every untouched component with `self`
    /// (copy-on-write): a pure observation append copies only each
    /// column's mutable tail and the small observation-index overlay, a
    /// whole-observation removal additionally copies the tombstone words —
    /// never the sealed column segments, dictionaries or roll-up maps.
    pub fn apply_delta(&self, deltas: &[StoreDelta]) -> Result<MaterializedCube, CubeStoreError> {
        let context = DeltaContext::for_cube(self);
        let mut cube = self.clone();
        for delta in deltas {
            if delta.graph.is_some() {
                continue;
            }
            apply_one(&mut cube, &context, delta)?;
        }
        // Extend the zone maps over whatever rows the deltas appended
        // (observation appends and partial-removal re-appends alike):
        // O(appended rows), touching only each map's tail entries. A
        // tombstone-only delta appends nothing, so the maps are untouched —
        // zone sets are never loosened by removals (a dead row's codes
        // staying recorded costs precision, not soundness).
        let mut zones = std::mem::take(&mut cube.zones);
        zones.extend(&cube.dimensions, &cube.measures, cube.row_count);
        cube.zones = zones;
        Ok(cube)
    }
}

/// Predicate classification tables, computed once per `apply_delta` call.
struct DeltaContext {
    /// Predicates that define schema/hierarchy structure: any effective
    /// insert or removal using them forces a rebuild.
    schema_predicates: BTreeSet<Iri>,
    /// Per-dimension bottom-level observation properties, in column order.
    bottom_order: Vec<Iri>,
    /// Measure properties, in column order.
    measure_order: Vec<Iri>,
    /// Attributes tracked on some level index (declared attributes plus the
    /// `rdfs:label` store exploration reads).
    tracked_attributes: BTreeSet<Iri>,
    /// The dataset node observations link to.
    dataset: Term,
}

impl DeltaContext {
    fn for_cube(cube: &MaterializedCube) -> Self {
        let schema_predicates: BTreeSet<Iri> = [
            qb::structure(),
            qb::component(),
            qb::dimension(),
            qb::measure(),
            qb::attribute(),
            qb::component_property(),
            qb4o::level(),
            qb4o::has_hierarchy(),
            qb4o::in_dimension(),
            qb4o::has_level(),
            qb4o::in_hierarchy(),
            qb4o::child_level(),
            qb4o::parent_level(),
            qb4o::pc_cardinality(),
            qb4o::cardinality(),
            qb4o::has_attribute(),
            qb4o::in_level(),
            qb4o::aggregate_function(),
        ]
        .into_iter()
        .collect();
        let tracked_attributes = cube
            .levels
            .values()
            .flat_map(|index| index.attribute_iris().cloned())
            .collect();
        DeltaContext {
            schema_predicates,
            bottom_order: cube
                .dimensions
                .iter()
                .map(|c| c.bottom_level.clone())
                .collect(),
            measure_order: cube.measures.iter().map(|m| m.property.clone()).collect(),
            tracked_attributes,
            dataset: Term::Iri(cube.schema.dataset.clone()),
        }
    }

    /// True if the triple is part of what the materialization reads off an
    /// observation node: its type, dataset link, dimension or measure
    /// values.
    fn is_fact_triple(&self, triple: &Triple) -> bool {
        let predicate = &triple.predicate;
        *predicate == qb::data_set()
            || (*predicate == rdfv::type_() && triple.object == Term::Iri(qb::observation()))
            || self.bottom_order.contains(predicate)
            || self.measure_order.contains(predicate)
    }
}

/// A new observation assembled from the inserted triples of one delta.
#[derive(Default)]
struct PendingObservation {
    typed: bool,
    linked: bool,
    dimensions: BTreeMap<Iri, Vec<Term>>,
    measures: BTreeMap<Iri, Vec<Term>>,
}

fn unsupported(kind: RefusalKind, detail: impl Into<String>) -> CubeStoreError {
    CubeStoreError::DeltaUnsupported(DeltaRefusal::new(kind, detail))
}

/// True if the term is dictionary-encoded in some fact column: its roll-up
/// map entries are already frozen, so hierarchy changes around it cannot be
/// replayed incrementally.
fn term_in_columns(cube: &MaterializedCube, term: &Term) -> bool {
    cube.dimensions
        .iter()
        .any(|column| column.dictionary.id(term).is_some())
}

/// True if the term appears as a parent in the broader adjacency: existing
/// members' roll-up walks can pass through it.
fn is_adjacency_parent(cube: &MaterializedCube, term: &Term) -> bool {
    cube.broader.values().any(|parents| parents.contains(term))
}

fn apply_one(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    delta: &StoreDelta,
) -> Result<(), CubeStoreError> {
    // Removals of a materialized observation's fact triples are collected
    // per node: the row is tombstoned and the surviving fragment (if any)
    // re-classified against the build rules — dropped, invisible, or
    // re-appended live.
    let mut pending_removals: BTreeMap<Term, Vec<&Triple>> = BTreeMap::new();
    for triple in &delta.removed {
        if cube.observations.contains(&triple.subject) && context.is_fact_triple(triple) {
            pending_removals
                .entry(triple.subject.clone())
                .or_default()
                .push(triple);
            continue;
        }
        check_removal(cube, context, triple)?;
    }
    for (node, removed) in pending_removals {
        apply_observation_removal(cube, context, &node, &removed)?;
    }
    if delta.inserted.is_empty() {
        return Ok(());
    }

    // Classify every inserted triple against the pre-delta state.
    let mut new_members: Vec<(Term, Iri)> = Vec::new();
    let mut new_broader: Vec<(Term, Term)> = Vec::new();
    let mut attribute_inserts: Vec<&Triple> = Vec::new();
    let mut pending: BTreeMap<Term, PendingObservation> = BTreeMap::new();
    for triple in &delta.inserted {
        let predicate = &triple.predicate;
        if context.schema_predicates.contains(predicate) {
            return Err(unsupported(
                RefusalKind::SchemaStructure,
                format!("schema/hierarchy triple inserted (<{}>)", predicate.as_str()),
            ));
        }
        if *predicate == skos::broader() {
            if cube.broader.contains_key(&triple.subject)
                || is_adjacency_parent(cube, &triple.subject)
                || term_in_columns(cube, &triple.subject)
            {
                return Err(unsupported(
                    RefusalKind::RollupLinkAdded,
                    format!("roll-up link added to existing member {}", triple.subject),
                ));
            }
            new_broader.push((triple.subject.clone(), triple.object.clone()));
            continue;
        }
        if *predicate == qb4o::member_of() {
            let Term::Iri(level) = &triple.object else {
                continue;
            };
            let Some(index) = cube.levels.get(level) else {
                continue; // a level of some other cube
            };
            if index.dictionary.id(&triple.subject).is_some() {
                continue;
            }
            if term_in_columns(cube, &triple.subject) {
                return Err(unsupported(
                    RefusalKind::MemberConflict,
                    format!(
                        "member {} declared for a term already present in the fact columns",
                        triple.subject
                    ),
                ));
            }
            if is_adjacency_parent(cube, &triple.subject) {
                return Err(unsupported(
                    RefusalKind::MemberConflict,
                    format!(
                        "member {} declared for a term already reachable in the hierarchy",
                        triple.subject
                    ),
                ));
            }
            new_members.push((triple.subject.clone(), level.clone()));
            continue;
        }
        if *predicate == rdfv::type_() {
            if triple.object == Term::Iri(qb::observation())
                && !cube.observations.contains(&triple.subject)
            {
                pending.entry(triple.subject.clone()).or_default().typed = true;
            }
            continue;
        }
        if *predicate == qb::data_set() {
            if triple.object == context.dataset && !cube.observations.contains(&triple.subject) {
                pending.entry(triple.subject.clone()).or_default().linked = true;
            }
            continue;
        }
        if context.bottom_order.contains(predicate) {
            if cube.observations.contains(&triple.subject) {
                return Err(unsupported(
                    RefusalKind::ObservationMutated,
                    format!(
                        "materialized observation {} gained a dimension value",
                        triple.subject
                    ),
                ));
            }
            pending
                .entry(triple.subject.clone())
                .or_default()
                .dimensions
                .entry(predicate.clone())
                .or_default()
                .push(triple.object.clone());
            continue;
        }
        if context.measure_order.contains(predicate) {
            if cube.observations.contains(&triple.subject) {
                return Err(unsupported(
                    RefusalKind::ObservationMutated,
                    format!(
                        "materialized observation {} gained a measure value",
                        triple.subject
                    ),
                ));
            }
            pending
                .entry(triple.subject.clone())
                .or_default()
                .measures
                .entry(predicate.clone())
                .or_default()
                .push(triple.object.clone());
            continue;
        }
        if context.tracked_attributes.contains(predicate) {
            attribute_inserts.push(triple);
            continue;
        }
        // Anything else (owl:sameAs links, notations, other datasets'
        // triples, ...) is invisible to the materialization.
    }

    // Apply in dependency order: members, hierarchy links, attribute
    // values, observations, then extend the roll-up maps.
    for (member, level) in &new_members {
        let index = cube.levels.get_mut(level).expect("level classified above");
        index.add_member(member);
    }
    for (child, parent) in new_broader {
        // Keep each parent list sorted, exactly as the `ORDER BY ?c ?p`
        // read at build time leaves it.
        let parents = Arc::make_mut(&mut cube.broader).entry(child).or_default();
        if let Err(position) = parents.binary_search(&parent) {
            parents.insert(position, parent);
            cube.stats.broader_links += 1;
        }
    }
    for triple in attribute_inserts {
        apply_attribute_insert(cube, context, triple)?;
    }
    let mut appended = false;
    for (node, observation) in pending {
        if !observation.linked {
            if cube.dropped_observations.contains(&node) {
                // A previously dropped (incomplete) observation of this
                // dataset gained triples; a fresh build might now accept
                // it, so the delta path may not silently ignore it.
                return Err(unsupported(
                    RefusalKind::DroppedObservationMutated,
                    format!("dropped observation {node} mutated"),
                ));
            }
            // Never linked to this cube's dataset: another dataset's
            // observation, or a fragment whose `qb:dataSet` link arrives
            // in a later delta (which then rebuilds). A fresh build would
            // skip it too.
            continue;
        }
        append_observation(cube, context, node, observation)?;
        appended = true;
    }
    if appended || !new_members.is_empty() {
        extend_rollup_maps(cube);
    }
    Ok(())
}

fn check_removal(
    cube: &MaterializedCube,
    context: &DeltaContext,
    triple: &Triple,
) -> Result<(), CubeStoreError> {
    let predicate = &triple.predicate;
    if context.schema_predicates.contains(predicate) {
        return Err(unsupported(
            RefusalKind::SchemaStructure,
            format!("schema/hierarchy triple removed (<{}>)", predicate.as_str()),
        ));
    }
    if *predicate == skos::broader() {
        if cube
            .broader
            .get(&triple.subject)
            .is_some_and(|parents| parents.contains(&triple.object))
        {
            return Err(unsupported(
                RefusalKind::RollupLinkRemoved,
                format!("roll-up link removed from member {}", triple.subject),
            ));
        }
        return Ok(());
    }
    if *predicate == qb4o::member_of() {
        if let Term::Iri(level) = &triple.object {
            if cube
                .levels
                .get(level)
                .is_some_and(|index| index.dictionary.id(&triple.subject).is_some())
            {
                return Err(unsupported(
                    RefusalKind::MemberRemoved,
                    format!(
                        "member {} removed from level <{}>",
                        triple.subject,
                        level.as_str()
                    ),
                ));
            }
        }
        return Ok(());
    }
    if cube.dropped_observations.contains(&triple.subject) && context.is_fact_triple(triple) {
        // Unlinking or stripping a dropped observation changes what a
        // fresh build would count as seen/dropped.
        return Err(unsupported(
            RefusalKind::DroppedObservationMutated,
            format!("dropped observation {} mutated by a removal", triple.subject),
        ));
    }
    if cube.observations.contains(&triple.subject) {
        // Fact triples of materialized observations were routed to the
        // tombstone path before this function; what reaches here are
        // irrelevant decorations (labels etc.) on observation nodes.
        return Ok(());
    }
    if context.tracked_attributes.contains(predicate) {
        if *predicate == rdfs::label() && triple.subject == context.dataset {
            let removed = triple.object.as_literal().map(|l| l.lexical());
            if cube.dataset_label.as_deref() == removed {
                return Err(unsupported(
                    RefusalKind::DatasetLabelChanged,
                    "dataset label removed",
                ));
            }
            return Ok(());
        }
        for index in cube.levels.values() {
            if let Some(id) = index.dictionary.id(&triple.subject) {
                if index.attribute_value(predicate, id) == Some(&triple.object) {
                    return Err(unsupported(
                        RefusalKind::AttributeRemoved,
                        format!("attribute value removed from member {}", triple.subject),
                    ));
                }
            }
        }
        return Ok(());
    }
    Ok(())
}

/// Applies one delta's removals of a materialized observation's fact
/// triples. The materialized triple set is reconstructed from the columns
/// (the dictionaries decode the dimension members,
/// [`crate::columns::MeasureVector::term_at`] the measure literals), so
/// the classification is exact:
///
/// * a removal of a value the build never materialized (a duplicate the
///   store held) refuses — a fresh build could now pick a different value;
/// * a removal covering *everything* tombstones the row, exactly as
///   before;
/// * a partial removal tombstones the row and re-classifies the surviving
///   fragment the way a fresh build would: no `qb:dataSet` link →
///   invisible (not even counted as seen); untyped or missing a measure →
///   recorded in `dropped_observations` (so any later mutation of the
///   fragment refuses and rebuilds, keeping first-touch semantics); still
///   a complete observation (only optional dimension values gone) →
///   re-appended at the column tail with those dimensions unbound.
fn apply_observation_removal(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    node: &Term,
    removed: &[&Triple],
) -> Result<(), CubeStoreError> {
    let row = cube.observations.row_of(node).expect("caller checked");
    let type_triple = Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation()));
    let dataset_triple = Triple::new(node.clone(), qb::data_set(), context.dataset.clone());
    let mut expected: BTreeSet<Triple> = BTreeSet::new();
    expected.insert(type_triple.clone());
    expected.insert(dataset_triple.clone());
    for column in &cube.dimensions {
        let code = column.code(row);
        if code != NO_MEMBER {
            expected.insert(Triple::new(
                node.clone(),
                column.bottom_level.clone(),
                column.dictionary.term(code).clone(),
            ));
        }
    }
    for measure in &cube.measures {
        expected.insert(Triple::new(
            node.clone(),
            measure.property.clone(),
            measure.data.term_at(row),
        ));
    }
    let removed_set: BTreeSet<Triple> = removed.iter().map(|t| (*t).clone()).collect();
    if !removed_set.is_subset(&expected) {
        return Err(unsupported(
            RefusalKind::ObservationMutated,
            format!(
                "removal from observation {node} covers values the build never materialized \
                 (a fresh build could now read different ones)"
            ),
        ));
    }
    if removed_set.len() != expected.len() && cube.multivalued_observations.contains(node) {
        // The store held several values for one of this observation's
        // slots and the build froze one; a partial removal could strip the
        // frozen value and silently expose the duplicate a fresh build now
        // picks. Only a rebuild knows the surviving values.
        return Err(unsupported(
            RefusalKind::ObservationMutated,
            format!(
                "partial removal from observation {node}, which carried several values \
                 for a dimension or measure at build time"
            ),
        ));
    }

    // Every case below kills the current row and drops it from the index;
    // they differ in how the surviving fragment is accounted for.
    cube.observations.remove(node);
    cube.tombstones.kill(row);
    cube.stats.rows -= 1;

    if removed_set.len() == expected.len() {
        // Whole removal: the node is gone from the dataset entirely.
        cube.stats.observations_seen -= 1;
        return Ok(());
    }
    if removed_set.contains(&dataset_triple) {
        // The surviving fragment is no longer linked to this dataset: a
        // fresh build neither materializes nor counts it.
        cube.stats.observations_seen -= 1;
        return Ok(());
    }
    let lost_type = removed_set.contains(&type_triple);
    let lost_measure = cube.measures.iter().any(|measure| {
        removed_set.contains(&Triple::new(
            node.clone(),
            measure.property.clone(),
            measure.data.term_at(row),
        ))
    });
    if lost_type || lost_measure {
        // Still dataset-linked, but a fresh build would *drop* it (untyped
        // or missing a measure). Track it so later mutations of the
        // fragment refuse — first-touch semantics, like any dropped
        // observation.
        cube.stats.rows_dropped += 1;
        Arc::make_mut(&mut cube.dropped_observations).insert(node.clone());
        return Ok(());
    }

    // Only (optional) dimension values were removed: a fresh build still
    // materializes the observation, with those dimensions unbound. Re-append
    // the surviving row at the tail; order-independent aggregation makes the
    // row position irrelevant to every query.
    let surviving_members: Vec<Option<Term>> = cube
        .dimensions
        .iter()
        .map(|column| {
            let code = column.code(row);
            if code == NO_MEMBER {
                return None;
            }
            let member = column.dictionary.term(code).clone();
            let removed_this = removed_set.contains(&Triple::new(
                node.clone(),
                column.bottom_level.clone(),
                member.clone(),
            ));
            (!removed_this).then_some(member)
        })
        .collect();
    let measure_literals: Vec<rdf::Literal> = cube
        .measures
        .iter()
        .map(|measure| match measure.data.term_at(row) {
            Term::Literal(literal) => literal,
            other => unreachable!("measure columns reconstruct literals, got {other}"),
        })
        .collect();
    for (column, member) in cube.dimensions.iter_mut().zip(&surviving_members) {
        column.push_row(member.as_ref());
    }
    for (measure, literal) in cube.measures.iter_mut().zip(&measure_literals) {
        measure.push_value(literal)?;
    }
    cube.observations.insert(node.clone(), cube.row_count);
    cube.row_count += 1;
    cube.stats.rows += 1;
    Ok(())
}

fn apply_attribute_insert(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    triple: &Triple,
) -> Result<(), CubeStoreError> {
    if triple.subject == context.dataset && triple.predicate == rdfs::label() {
        let label = triple
            .object
            .as_literal()
            .map(|l| l.lexical().to_string())
            .ok_or_else(|| {
                unsupported(RefusalKind::DatasetLabelChanged, "non-literal dataset label")
            })?;
        match &cube.dataset_label {
            None => cube.dataset_label = Some(label),
            Some(existing) if *existing == label => {}
            Some(_) => {
                return Err(unsupported(
                    RefusalKind::DatasetLabelChanged,
                    "dataset label changed",
                ))
            }
        }
        return Ok(());
    }
    if cube.observations.contains(&triple.subject) {
        // Labels or attribute-named properties on observation nodes never
        // reach any query; ignore them.
        return Ok(());
    }
    let mut known_member = false;
    for index in cube.levels.values_mut() {
        let Some(id) = index.dictionary.id(&triple.subject) else {
            continue;
        };
        known_member = true;
        match index.attribute_value(&triple.predicate, id) {
            // The attribute is not tracked on this level, or the member has
            // no value yet: set_member_attribute handles both.
            None => {
                index.set_member_attribute(&triple.predicate, id, triple.object.clone());
            }
            Some(existing) if *existing == triple.object => {}
            Some(_) => {
                return Err(unsupported(
                    RefusalKind::AttributeConflict,
                    format!(
                        "member {} gained a second value for attribute <{}>",
                        triple.subject,
                        triple.predicate.as_str()
                    ),
                ));
            }
        }
    }
    if !known_member {
        // The value may matter to a member added in a *later* delta or to a
        // future rebuild; refusing keeps the cube bit-identical with one.
        return Err(unsupported(
            RefusalKind::UnknownMemberAttribute,
            format!("attribute value for unknown member {}", triple.subject),
        ));
    }
    Ok(())
}

fn append_observation(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    node: Term,
    observation: PendingObservation,
) -> Result<(), CubeStoreError> {
    if !observation.typed {
        // A dataset-linked but untyped fragment would be dropped today yet
        // could be completed by a later mutation; a rebuild decides.
        return Err(unsupported(
            RefusalKind::IncompleteObservation,
            format!("observation {node} arrives incomplete (not typed qb:Observation)"),
        ));
    }
    // Any measure type appends in place — float columns included: SUM/AVG
    // accumulate through the order-independent compensated summator, so an
    // appended row's position cannot diverge from a rebuild's ORDER BY
    // ?obs row order by even an ulp.
    for (position, property) in context.measure_order.iter().enumerate() {
        let values = observation
            .measures
            .get(property)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        match values {
            [Term::Literal(literal)] => cube.measures[position].push_value(literal)?,
            [] => {
                return Err(unsupported(
                    RefusalKind::IncompleteObservation,
                    format!("observation {node} is missing measure <{}>", property.as_str()),
                ))
            }
            [_] => {
                return Err(unsupported(
                    RefusalKind::MalformedObservation,
                    format!(
                        "observation {node} has a non-literal value for measure <{}>",
                        property.as_str()
                    ),
                ))
            }
            _ => {
                return Err(unsupported(
                    RefusalKind::MalformedObservation,
                    format!(
                        "observation {node} has several values for measure <{}>",
                        property.as_str()
                    ),
                ))
            }
        }
    }
    for (position, bottom) in context.bottom_order.iter().enumerate() {
        let values = observation
            .dimensions
            .get(bottom)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        match values {
            [] => cube.dimensions[position].push_row(None),
            [member] => cube.dimensions[position].push_row(Some(member)),
            _ => {
                return Err(unsupported(
                    RefusalKind::MalformedObservation,
                    format!(
                        "observation {node} has several values for dimension <{}>",
                        bottom.as_str()
                    ),
                ))
            }
        }
    }
    cube.observations.insert(node, cube.row_count);
    cube.row_count += 1;
    cube.stats.rows += 1;
    cube.stats.observations_seen += 1;
    Ok(())
}

/// Extends every roll-up map to cover bottom members that entered a column
/// dictionary since the map was built, using the same
/// broader-walk-with-path-counts the initial build uses.
fn extend_rollup_maps(cube: &mut MaterializedCube) {
    let MaterializedCube {
        schema,
        dimensions,
        levels,
        rollups,
        broader,
        ..
    } = cube;
    let broader: &BTreeMap<Term, Vec<Term>> = broader;
    for column in dimensions.iter() {
        let bottom = &column.bottom_level;
        let dimension = schema
            .dimension(&column.dimension)
            .expect("every column has a schema dimension");

        // Identity map (bottom level): anchor new codes at the declared
        // bottom members.
        let identity_key = (column.dimension.clone(), bottom.clone());
        if let Some(map) = rollups.get_mut(&identity_key) {
            let bottom_index = levels.get(bottom).expect("bottom level indexed");
            for code in map.len()..column.dictionary.len() {
                let term = column.dictionary.term(code as crate::dictionary::MemberId);
                map.push(bottom_index.dictionary.id(term).unwrap_or(NO_MEMBER));
            }
        }

        for target in dimension.ancestor_levels(bottom) {
            let steps = match dimension.rollup_path(bottom, &target) {
                Some((_, steps)) => steps.len(),
                None => continue,
            };
            let key = (column.dimension.clone(), target.clone());
            let Some(map) = rollups.get_mut(&key) else {
                continue;
            };
            let target_index = levels.get(&target).expect("all levels indexed");
            for code in map.len()..column.dictionary.len() {
                let term = column.dictionary.term(code as crate::dictionary::MemberId);
                map.push(resolve_rollup_target(term, steps, broader, target_index));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use qb4olap::AggregateFunction;
    use rdf::vocab::{qb, rdf as rdfv, rdfs};
    use rdf::{Literal, Term, Triple};
    use sparql::{Endpoint, LocalEndpoint};

    use crate::executor::{execute, CubeQuery};
    use crate::testutil::{fixture, iri, member, observation_triples};
    use crate::{CubeStoreError, MaterializedCube, RefusalKind};

    use super::*;

    /// Builds the fixture cube with change tracking on, so mutations made
    /// through the endpoint are recorded as replayable deltas.
    fn tracked() -> (LocalEndpoint, MaterializedCube, u64) {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        (endpoint, cube, epoch)
    }

    fn deltas_after(endpoint: &LocalEndpoint, epoch: u64) -> Vec<StoreDelta> {
        endpoint.deltas_since(epoch).expect("change log enabled")
    }

    fn rollup_to_country() -> CubeQuery {
        CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        }
    }

    /// The refusal of an error that must be a `DeltaUnsupported`.
    fn refusal(error: CubeStoreError) -> DeltaRefusal {
        match error {
            CubeStoreError::DeltaUnsupported(refusal) => refusal,
            other => panic!("expected a delta refusal, got {other}"),
        }
    }

    /// After a successful delta application, every query the fixture can
    /// answer must agree with a from-scratch materialization.
    fn assert_matches_rebuild(endpoint: &LocalEndpoint, cube: &MaterializedCube) {
        let rebuilt = MaterializedCube::from_endpoint(endpoint, cube.schema()).unwrap();
        for query in [CubeQuery::default(), rollup_to_country()] {
            assert_eq!(
                execute(cube, &query).unwrap(),
                execute(&rebuilt, &query).unwrap(),
                "delta-applied cube diverges from a rebuild"
            );
        }
    }

    #[test]
    fn pure_observation_append_is_applied_in_place() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&observation_triples("o6", "c1", "m2", 40, 2))
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), cube.row_count() + 1);
        assert_eq!(refreshed.stats().rows, cube.stats().rows + 1);
        assert!(refreshed.is_observation(&Term::iri("http://example.org/obs/o6")));
        assert_matches_rebuild(&endpoint, &refreshed);
        // The original cube is untouched (apply returns a new one).
        assert_eq!(cube.row_count(), 5);
    }

    #[test]
    fn new_member_with_rollup_link_label_and_observation() {
        let (endpoint, cube, epoch) = tracked();
        // A brand-new city c4 in country K2, with a label, plus an
        // observation that references it — all in one batch.
        let mut batch = vec![
            qb4olap::member_of_triple(&member("c4"), &iri("lv/city")),
            qb4olap::rollup_triple(&member("c4"), &member("K2")),
            Triple::new(member("c4"), rdfs::label(), Literal::string("City Four")),
        ];
        batch.extend(observation_triples("o7", "c4", "m1", 11, 1));
        endpoint.insert_triples(&batch).unwrap();

        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), 6);
        let city_index = refreshed.level(&iri("lv/city")).unwrap();
        let id = city_index.dictionary.id(&member("c4")).expect("declared");
        assert_eq!(
            city_index.attribute_value(&rdfs::label(), id),
            Some(&Term::Literal(Literal::string("City Four")))
        );
        assert_eq!(refreshed.broader_parents(&member("c4")), &[member("K2")]);
        // The K2 group gains the new observation's value.
        let output = execute(&refreshed, &rollup_to_country()).unwrap();
        let k2m1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K2"), member("m1")])
            .unwrap();
        assert_eq!(k2m1.values[0], Some(Term::integer(16)), "5 + 11");
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn consecutive_deltas_apply_in_order() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&observation_triples("o6", "c2", "m1", 1, 1))
            .unwrap();
        endpoint
            .insert_triples(&observation_triples("o7", "c1", "m2", 2, 2))
            .unwrap();
        let deltas = deltas_after(&endpoint, epoch);
        assert_eq!(deltas.len(), 2);
        let refreshed = cube.apply_delta(&deltas).unwrap();
        assert_eq!(refreshed.row_count(), 7);
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn whole_observation_removal_tombstones_the_row() {
        let (endpoint, cube, epoch) = tracked();
        // Remove o3 (c2, m1, 5, 1) completely, as ONE batch → one delta.
        let o3 = Term::iri("http://example.org/obs/o3");
        let removed = endpoint.store().remove_all(&[
            Triple::new(o3.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(o3.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
            Triple::new(o3.clone(), iri("lv/city"), member("c2")),
            Triple::new(o3.clone(), iri("lv/month"), member("m1")),
            Triple::new(o3.clone(), iri("measure/value"), Literal::integer(5)),
            Triple::new(o3.clone(), iri("measure/score"), Literal::integer(1)),
        ]);
        assert_eq!(removed, 6);
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        // The row stays physically present but dead.
        assert_eq!(refreshed.row_count(), 5, "physical rows unchanged");
        assert_eq!(refreshed.live_row_count(), 4);
        assert_eq!(refreshed.tombstoned_rows(), 1);
        assert_eq!(refreshed.stats().rows, 4);
        assert_eq!(refreshed.stats().observations_seen, 4);
        assert!(!refreshed.is_observation(&o3));
        assert_matches_rebuild(&endpoint, &refreshed);
        // The K2/m1 cell (5) is gone; K2/m2 (7) survives.
        let output = execute(&refreshed, &rollup_to_country()).unwrap();
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates == vec![member("K2"), member("m1")]));
        // The original cube is untouched.
        assert_eq!(cube.live_row_count(), 5);
        assert!(cube.is_observation(&o3));
    }

    #[test]
    fn removal_then_reappend_of_the_same_node_is_appliable() {
        let (endpoint, cube, epoch) = tracked();
        let o3 = Term::iri("http://example.org/obs/o3");
        endpoint.store().remove_all(&[
            Triple::new(o3.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(o3.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
            Triple::new(o3.clone(), iri("lv/city"), member("c2")),
            Triple::new(o3.clone(), iri("lv/month"), member("m1")),
            Triple::new(o3.clone(), iri("measure/value"), Literal::integer(5)),
            Triple::new(o3.clone(), iri("measure/score"), Literal::integer(1)),
        ]);
        // The same node comes back with a different value.
        endpoint
            .insert_triples(&observation_triples("o3", "c2", "m1", 50, 2))
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), 6, "old row dead, new row appended");
        assert_eq!(refreshed.live_row_count(), 5);
        assert!(refreshed.is_observation(&o3));
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn partial_measure_removal_tombstones_and_drops_the_fragment() {
        // Previously refused as PartialObservationRemoval; now the row is
        // tombstoned and the surviving fragment recorded as *dropped*,
        // exactly as a fresh build classifies it.
        let (endpoint, cube, epoch) = tracked();
        let o1 = Term::iri("http://example.org/obs/o1");
        assert!(endpoint
            .store()
            .remove(&Triple::new(o1.clone(), iri("measure/value"), Literal::integer(10))));
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), 5, "row stays physically present");
        assert_eq!(refreshed.live_row_count(), 4);
        assert_eq!(refreshed.stats().rows, 4);
        assert_eq!(refreshed.stats().observations_seen, 5, "still dataset-linked");
        assert_eq!(refreshed.stats().rows_dropped, 1);
        assert!(!refreshed.is_observation(&o1));
        assert_matches_rebuild(&endpoint, &refreshed);

        // Mutating the now-dropped fragment refuses — first-touch
        // semantics, like any other dropped observation.
        let epoch = endpoint.epoch();
        endpoint
            .insert_triples(&[Triple::new(o1, iri("measure/value"), Literal::integer(11))])
            .unwrap();
        let error = refreshed
            .apply_delta(&deltas_after(&endpoint, epoch))
            .unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::DroppedObservationMutated);
    }

    #[test]
    fn partial_dataset_unlink_hides_the_fragment() {
        let (endpoint, cube, epoch) = tracked();
        let o3 = Term::iri("http://example.org/obs/o3");
        assert!(endpoint.store().remove(&Triple::new(
            o3.clone(),
            qb::data_set(),
            Term::iri("http://example.org/ds")
        )));
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.live_row_count(), 4);
        assert_eq!(refreshed.stats().observations_seen, 4, "no longer counted");
        assert_eq!(refreshed.stats().rows_dropped, 0, "invisible, not dropped");
        assert!(!refreshed.is_observation(&o3));
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn partial_dimension_removal_reappends_the_surviving_row() {
        let (endpoint, cube, epoch) = tracked();
        let o1 = Term::iri("http://example.org/obs/o1");
        // Stripping only the city value leaves a complete observation with
        // an unbound city: tombstone the old row, re-append the survivor.
        assert!(endpoint
            .store()
            .remove(&Triple::new(o1.clone(), iri("lv/city"), member("c1"))));
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), 6, "old row dead, survivor re-appended");
        assert_eq!(refreshed.live_row_count(), 5);
        assert_eq!(refreshed.tombstoned_rows(), 1);
        assert_eq!(refreshed.stats().rows, 5);
        assert_eq!(refreshed.stats().observations_seen, 5);
        assert_eq!(refreshed.stats().rows_dropped, 0);
        assert!(refreshed.is_observation(&o1));
        let column = refreshed.dimension_column(&iri("dim/city")).unwrap();
        assert_eq!(column.code(5), NO_MEMBER, "the stripped dimension is unbound");
        assert_matches_rebuild(&endpoint, &refreshed);
        // o1's 10 leaves every city roll-up (no city binding joins)...
        let output = execute(&refreshed, &rollup_to_country()).unwrap();
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates == vec![member("K1"), member("m1")]));
        // ... but still counts when the city dimension is sliced away.
        let sliced = CubeQuery {
            slices: vec![iri("dim/city")],
            ..CubeQuery::default()
        };
        let output = execute(&refreshed, &sliced).unwrap();
        let m1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("m1")])
            .unwrap();
        assert_eq!(m1.values[0], Some(Term::integer(115)), "10 + 5 + 100");
    }

    #[test]
    fn per_triple_whole_removal_drops_then_refuses() {
        // Removing a whole observation one triple at a time: the first
        // single-triple delta applies as a partial removal that *drops*
        // the fragment; the next delta touches a dropped observation and
        // refuses — so callers still batch whole removals through
        // `Store::remove_all` for a clean one-step tombstone.
        let (endpoint, cube, epoch) = tracked();
        let o3 = Term::iri("http://example.org/obs/o3");
        for triple in [
            Triple::new(o3.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(o3.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
            Triple::new(o3.clone(), iri("lv/city"), member("c2")),
            Triple::new(o3.clone(), iri("lv/month"), member("m1")),
            Triple::new(o3.clone(), iri("measure/value"), Literal::integer(5)),
            Triple::new(o3.clone(), iri("measure/score"), Literal::integer(1)),
        ] {
            assert!(endpoint.store().remove(&triple));
        }
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::DroppedObservationMutated);
    }

    #[test]
    fn removal_of_an_unmaterialized_duplicate_value_refuses() {
        // o1 carries TWO city values in the store; the build materialized
        // one of them. Removing the *other* invalidates the frozen choice
        // (a fresh build could now read a different value), so the delta
        // refuses as a mutation.
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let o1 = Term::iri("http://example.org/obs/o1");
        endpoint
            .insert_triples(&[Triple::new(o1.clone(), iri("lv/city"), member("c2"))])
            .unwrap();
        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        let row = cube.observations.row_of(&o1).expect("o1 materialized");
        let column = cube.dimension_column(&iri("dim/city")).unwrap();
        let materialized = column.dictionary.term(column.code(row)).clone();
        let other = if materialized == member("c1") {
            member("c2")
        } else {
            member("c1")
        };
        assert!(endpoint
            .store()
            .remove(&Triple::new(o1.clone(), iri("lv/city"), other)));
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        let refusal_a = refusal(error);
        assert_eq!(refusal_a.kind, RefusalKind::ObservationMutated);
        assert!(refusal_a.detail.contains("never materialized"), "{refusal_a}");

        // Removing the *materialized* value of the duplicated slot must
        // refuse too: the surviving duplicate is what a fresh build would
        // now pick, and only a rebuild can see it.
        let epoch = endpoint.epoch();
        assert!(endpoint
            .store()
            .remove(&Triple::new(o1, iri("lv/city"), materialized)));
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        let refusal_b = refusal(error);
        assert_eq!(refusal_b.kind, RefusalKind::ObservationMutated);
        assert!(refusal_b.detail.contains("several values"), "{refusal_b}");
        // Rebuilding (what the catalog does on refusal) restores lockstep.
        let rebuilt = MaterializedCube::from_endpoint(&endpoint, cube.schema()).unwrap();
        assert_eq!(rebuilt.row_count(), 5, "o1 survives with the other value");
    }

    #[test]
    fn relevant_removals_force_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        // Cutting a roll-up link (the ragged-hierarchy mutation) cannot be
        // replayed in place.
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        let refusal = refusal(error);
        assert_eq!(refusal.kind, RefusalKind::RollupLinkRemoved);
        assert!(refusal.detail.contains("roll-up link removed"), "{refusal}");
    }

    #[test]
    fn observation_mutations_force_a_rebuild() {
        // Giving an existing observation a second dimension value refuses.
        let (endpoint, cube, epoch) = tracked();
        let o1 = Term::iri("http://example.org/obs/o1");
        endpoint
            .insert_triples(&[Triple::new(o1, iri("lv/city"), member("c2"))])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        let refusal = refusal(error);
        assert_eq!(refusal.kind, RefusalKind::ObservationMutated);
        assert!(refusal.detail.contains("gained a dimension value"), "{refusal}");
    }

    #[test]
    fn schema_and_hierarchy_structure_changes_force_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[Triple::new(
                Term::iri("http://example.org/dsdQB4O"),
                rdf::vocab::qb4o::has_level(),
                Term::iri("http://example.org/lv/region"),
            )])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::SchemaStructure);
    }

    #[test]
    fn incomplete_and_conflicting_inserts_force_a_rebuild() {
        // An observation fragment missing its measures.
        let (endpoint, cube, epoch) = tracked();
        let node = Term::iri("http://example.org/obs/half");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node, qb::data_set(), Term::iri("http://example.org/ds")),
            ])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::IncompleteObservation);

        // A broader link added to an already-materialized member.
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[qb4olap::rollup_triple(&member("c3"), &member("K2"))])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::RollupLinkAdded);

        // An attribute value for a member the cube has never seen.
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[Triple::new(
                Term::iri("http://example.org/member/ghost"),
                iri("attr/countryName"),
                Literal::string("Ghost"),
            )])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::UnknownMemberAttribute);
    }

    #[test]
    fn attribute_value_fills_an_empty_slot() {
        let (endpoint, cube, epoch) = tracked();
        // K2 has no countryName in the fixture; the delta provides one.
        endpoint
            .insert_triples(&[qb4olap::attribute_triple(
                &member("K2"),
                &iri("attr/countryName"),
                &Term::Literal(Literal::string("Beta")),
            )])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        let country = refreshed.level(&iri("lv/country")).unwrap();
        let id = country.dictionary.id(&member("K2")).unwrap();
        assert_eq!(
            country.attribute_value(&iri("attr/countryName"), id),
            Some(&Term::Literal(Literal::string("Beta")))
        );
        // A *second*, different value conflicts.
        let epoch = endpoint.epoch();
        endpoint
            .insert_triples(&[qb4olap::attribute_triple(
                &member("K2"),
                &iri("attr/countryName"),
                &Term::Literal(Literal::string("Gamma")),
            )])
            .unwrap();
        let error = refreshed
            .apply_delta(&deltas_after(&endpoint, epoch))
            .unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::AttributeConflict);
    }

    #[test]
    fn appends_to_float_measure_columns_apply_in_place() {
        // Previously refused as NonIntegralAppend: appending would have
        // summed floats in a different order than a rebuild. With the
        // order-independent compensated summator the append replays
        // bit-identically, on any thread count.
        let city = iri("lv/city");
        let value = iri("measure/value");
        let mut builder = ::qb::QbDatasetBuilder::new(iri("ds"), iri("dsd"))
            .dimension(city.clone())
            .measure(value.clone());
        let mut obs = ::qb::Observation::new(Term::iri("http://example.org/obs/f1"));
        obs.dimensions.insert(city.clone(), member("c1"));
        obs.measures
            .insert(value.clone(), Term::Literal(Literal::decimal(1.5)));
        builder = builder.observation(obs);
        let (_, mut triples) = builder.build();
        triples.push(qb4olap::member_of_triple(&member("c1"), &city));
        let endpoint = LocalEndpoint::new();
        endpoint.insert_triples(&triples).unwrap();

        let mut schema = qb4olap::CubeSchema::new(iri("dsdQB4O"), iri("ds"));
        let mut hierarchy = qb4olap::Hierarchy::new(iri("hier/city"));
        hierarchy.levels = vec![city.clone()];
        let mut dimension = qb4olap::Dimension::new(iri("dim/city"));
        dimension.hierarchies.push(hierarchy);
        schema.dimensions.push(dimension);
        schema.measures.push(qb4olap::MeasureSpec {
            property: value.clone(),
            aggregate: AggregateFunction::Sum,
        });

        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        // Adversarial decimal appends, one delta each: cancellation-heavy
        // magnitudes whose naive left-to-right sum depends on the order.
        for (serial, measure_value) in
            [2.5, 0.1, 0.2, 1e15, 0.3, -1e15, 0.30000000000000004, -0.7]
                .into_iter()
                .enumerate()
        {
            let node = Term::iri(format!("http://example.org/obs/f{}", serial + 2));
            endpoint
                .insert_triples(&[
                    Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                    Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
                    Triple::new(node.clone(), city.clone(), member("c1")),
                    Triple::new(node, value.clone(), Literal::decimal(measure_value)),
                ])
                .unwrap();
        }
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), 9);
        // Bit-identical to a from-scratch rebuild, for any thread count.
        let rebuilt = MaterializedCube::from_endpoint(&endpoint, refreshed.schema()).unwrap();
        let reference =
            crate::executor::execute_with_threads(&rebuilt, &CubeQuery::default(), 1).unwrap();
        for threads in [1usize, 2, 8] {
            assert_eq!(
                crate::executor::execute_with_threads(&refreshed, &CubeQuery::default(), threads)
                    .unwrap(),
                reference,
                "float delta-applied cube diverges from a rebuild at {threads} threads"
            );
        }
    }

    #[test]
    fn other_datasets_observations_do_not_disturb_the_delta_path() {
        let (endpoint, cube, epoch) = tracked();
        // A complete observation of a *different* dataset, sharing the
        // measure property: invisible to this cube, so the delta applies
        // as a no-op instead of forcing a rebuild.
        let node = Term::iri("http://example.org/other/obs1");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/otherDs")),
                Triple::new(node, iri("measure/value"), Literal::integer(123)),
            ])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), cube.row_count());
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn completing_a_dropped_observation_forces_a_rebuild() {
        // An observation that is dataset-linked but untyped is dropped at
        // build time; a delta typing it must rebuild (a fresh build now
        // accepts it), not be skipped as foreign.
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let node = Term::iri("http://example.org/obs/late");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
                Triple::new(node.clone(), iri("lv/city"), member("c1")),
                Triple::new(node.clone(), iri("lv/month"), member("m1")),
                Triple::new(node.clone(), iri("measure/value"), Literal::integer(7)),
                Triple::new(node.clone(), iri("measure/score"), Literal::integer(7)),
            ])
            .unwrap();
        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(cube.stats().rows_dropped, 1, "untyped observation dropped");

        endpoint
            .insert_triples(&[Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation()))])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::DroppedObservationMutated);

        // Removing a fact triple from the dropped observation refuses too:
        // a fresh build would no longer see (or count) the fragment.
        let epoch = endpoint.epoch();
        assert!(endpoint
            .store()
            .remove(&Triple::new(node, qb::data_set(), Term::iri("http://example.org/ds"))));
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert_eq!(refusal(error).kind, RefusalKind::DroppedObservationMutated);
    }

    #[test]
    fn delta_applied_adjacency_stays_sorted_like_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        // Two roll-up links for a new member, inserted in reverse order;
        // the delta-applied adjacency must match the rebuilt (ordered)
        // read. (The member becomes ambiguous — fine, queries refusing it
        // is covered elsewhere.)
        endpoint
            .insert_triples(&[
                qb4olap::member_of_triple(&member("c9"), &iri("lv/city")),
                qb4olap::rollup_triple(&member("c9"), &member("K2")),
                qb4olap::rollup_triple(&member("c9"), &member("K1")),
            ])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        let rebuilt = MaterializedCube::from_endpoint(&endpoint, refreshed.schema()).unwrap();
        assert_eq!(
            refreshed.broader_parents(&member("c9")),
            rebuilt.broader_parents(&member("c9")),
            "adjacency order diverges from a rebuild"
        );
        assert_eq!(refreshed.broader_parents(&member("c9")), &[member("K1"), member("K2")]);
    }

    #[test]
    fn named_graph_and_irrelevant_deltas_are_ignored() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples_named(
                &Iri::new("http://example.org/graph/staging"),
                &observation_triples("staged", "c1", "m1", 999, 9),
            )
            .unwrap();
        // Unrelated triples in the default graph are invisible too.
        endpoint
            .insert_triples(&[Triple::new(
                Term::iri("http://example.org/elsewhere"),
                Iri::new("http://example.org/unrelated"),
                Literal::string("noise"),
            )])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), cube.row_count());
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    /// Every refusal the classifier can produce is one of the enumerated
    /// kinds, and every kind documented in the module-level decision table
    /// exists — this is the "tests and docs can enumerate them" guarantee
    /// the typed refusals were introduced for.
    #[test]
    fn refusal_kinds_match_the_decision_table() {
        let table = include_str!("delta.rs")
            .split("# Delta-vs-rebuild decision table")
            .nth(1)
            .expect("module docs contain the decision table")
            .split("use std::collections")
            .next()
            .expect("table precedes the code");
        for kind in RefusalKind::ALL {
            assert!(
                table.contains(&format!("{kind:?}")),
                "RefusalKind::{kind:?} is missing from the decision table in the module docs"
            );
        }
    }

    /// A pure append's refresh must share (not copy) the heavy components
    /// with the cube it refreshed — the copy-on-write guarantee.
    #[test]
    fn pure_append_shares_dictionaries_and_maps() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&observation_triples("o6", "c1", "m1", 8, 8))
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        // Dictionaries saw no new member: fully shared.
        for (before, after) in cube.dimensions.iter().zip(&refreshed.dimensions) {
            assert!(
                before.dictionary.shares_storage_with(&after.dictionary),
                "append over existing members must not copy the column dictionary"
            );
        }
        for (level, index) in cube.levels.iter() {
            assert!(
                index
                    .dictionary
                    .shares_storage_with(&refreshed.levels[level].dictionary),
                "level <{}> dictionary copied on a pure append",
                level.as_str()
            );
        }
    }

    /// Removes the fixture's o4 observation (the only row bound to city
    /// `c3`) through the endpoint so the next delta tombstones it.
    fn remove_o4(endpoint: &LocalEndpoint) {
        let o4 = Term::iri("http://example.org/obs/o4");
        let removed = endpoint.store().remove_all(&[
            Triple::new(o4.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(o4.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
            Triple::new(o4.clone(), iri("lv/city"), member("c3")),
            Triple::new(o4.clone(), iri("lv/month"), member("m1")),
            Triple::new(o4.clone(), iri("measure/value"), Literal::integer(100)),
            Triple::new(o4.clone(), iri("measure/score"), Literal::integer(9)),
        ]);
        assert_eq!(removed, 6);
    }

    /// A pure append extends only the tail segment's zone entries; the
    /// code sets of already-sealed segments are not touched.
    #[test]
    fn append_deltas_extend_only_the_tail_zone_entries() {
        let (endpoint, cube, epoch) = tracked();
        // Enough appended rows to seal segment 0 (the fixture holds 5).
        // Names are zero-padded so node order matches append order.
        let mut triples = Vec::new();
        for i in 0..crate::cowvec::SEGMENT_LEN {
            triples.extend(observation_triples(&format!("a{i:06}"), "c1", "m1", 1, 1));
        }
        endpoint.insert_triples(&triples).unwrap();
        let sealed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        sealed.verify_zone_invariants().unwrap();
        assert_eq!(sealed.zone_maps().segment_count(), 2);
        let frozen: Vec<Vec<_>> = (0..sealed.dimensions.len())
            .map(|d| sealed.zone_maps().dimension_codes(d, 0).unwrap().collect())
            .collect();

        let epoch = endpoint.epoch();
        endpoint
            .insert_triples(&observation_triples("b000000", "c3", "m2", 2, 2))
            .unwrap();
        let extended = sealed.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        extended.verify_zone_invariants().unwrap();
        for (d, codes) in frozen.iter().enumerate() {
            let after: Vec<_> = extended
                .zone_maps()
                .dimension_codes(d, 0)
                .unwrap()
                .collect();
            assert_eq!(&after, codes, "sealed zone sets must not change on append");
        }
        // The tail previously held only `c1` rows; the appended `c3` row
        // widens it to two codes.
        let city = extended
            .dimensions
            .iter()
            .position(|d| d.dimension == iri("dim/city"))
            .unwrap();
        let tail: Vec<_> = extended
            .zone_maps()
            .dimension_codes(city, 1)
            .unwrap()
            .collect();
        assert_eq!(tail.len(), 2, "tail zone gains the new row's member code");
        assert_matches_rebuild(&endpoint, &extended);
    }

    /// A tombstone-only delta leaves every zone entry exactly as it was:
    /// the dead row's codes stay recorded (zones never loosen), and the
    /// invariant checker still accepts the cube.
    #[test]
    fn tombstone_only_deltas_never_loosen_zone_entries() {
        let (endpoint, cube, epoch) = tracked();
        let before: Vec<Vec<_>> = (0..cube.dimensions.len())
            .map(|d| cube.zone_maps().dimension_codes(d, 0).unwrap().collect())
            .collect();
        remove_o4(&endpoint);
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.tombstoned_rows(), 1);
        refreshed.verify_zone_invariants().unwrap();
        assert_eq!(refreshed.zone_maps().rows(), 5, "zones still cover the dead row");
        for (d, codes) in before.iter().enumerate() {
            let after: Vec<_> = refreshed
                .zone_maps()
                .dimension_codes(d, 0)
                .unwrap()
                .collect();
            assert_eq!(&after, codes, "tombstone-only deltas keep zone sets intact");
        }
    }

    /// Compaction re-materializes from the endpoint, so the rebuilt cube's
    /// zone maps cover only live rows and drop codes that existed solely in
    /// tombstoned rows.
    #[test]
    fn compaction_rebuild_regenerates_zone_maps_from_live_rows() {
        let (endpoint, cube, epoch) = tracked();
        let city = cube
            .dimensions
            .iter()
            .position(|d| d.dimension == iri("dim/city"))
            .unwrap();
        remove_o4(&endpoint);
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        refreshed.verify_zone_invariants().unwrap();
        // The delta-applied cube still lists the dead row's city code.
        assert_eq!(
            refreshed.zone_maps().dimension_codes(city, 0).unwrap().count(),
            3
        );
        let rebuilt = MaterializedCube::from_endpoint(&endpoint, cube.schema()).unwrap();
        assert_eq!(rebuilt.row_count(), 4);
        rebuilt.verify_zone_invariants().unwrap();
        assert_eq!(rebuilt.zone_maps().rows(), 4);
        assert_eq!(
            rebuilt.zone_maps().dimension_codes(city, 0).unwrap().count(),
            2,
            "the rebuilt zones no longer mention the compacted-away member"
        );
    }
}
