//! Incremental maintenance: applies recorded store deltas
//! ([`rdf::StoreDelta`]) to a [`MaterializedCube`] without touching the
//! endpoint.
//!
//! The delta path handles the serving-friendly mutations — appending new
//! observations, introducing brand-new members (with their roll-up links,
//! labels and attribute values) — by extending the dictionary-encoded
//! columns and roll-up maps in place. Every mutation it cannot replay with
//! bit-identical results refuses with
//! [`CubeStoreError::DeltaUnsupported`], whose message becomes the rebuild
//! reason in the catalog's maintenance report: removals of relevant
//! triples, changes to schema/hierarchy structure, and mutations of
//! already-materialized observations or members all fall back to a full
//! rebuild rather than risking divergence from the SPARQL oracle.

use std::collections::{BTreeMap, BTreeSet};

use rdf::vocab::{qb, qb4o, rdf as rdfv, rdfs, skos};
use rdf::{Iri, StoreDelta, Term, Triple};

use crate::build::{resolve_rollup_target, MaterializedCube};
use crate::dictionary::NO_MEMBER;
use crate::error::CubeStoreError;

impl MaterializedCube {
    /// Applies a sequence of store deltas, returning the refreshed cube.
    ///
    /// On success the result is query-equivalent to a fresh
    /// [`MaterializedCube::from_endpoint`] over the mutated store. On
    /// [`CubeStoreError::DeltaUnsupported`] the cube is untouched and the
    /// caller should rebuild (the error message is the reason). Deltas of
    /// named graphs are skipped: the cube materializes the default graph,
    /// which is all the local SPARQL engine queries.
    pub fn apply_delta(&self, deltas: &[StoreDelta]) -> Result<MaterializedCube, CubeStoreError> {
        let context = DeltaContext::for_cube(self);
        let mut cube = self.clone();
        for delta in deltas {
            if delta.graph.is_some() {
                continue;
            }
            apply_one(&mut cube, &context, delta)?;
        }
        Ok(cube)
    }
}

/// Predicate classification tables, computed once per `apply_delta` call.
struct DeltaContext {
    /// Predicates that define schema/hierarchy structure: any effective
    /// insert or removal using them forces a rebuild.
    schema_predicates: BTreeSet<Iri>,
    /// Per-dimension bottom-level observation properties, in column order.
    bottom_order: Vec<Iri>,
    /// Measure properties, in column order.
    measure_order: Vec<Iri>,
    /// Attributes tracked on some level index (declared attributes plus the
    /// `rdfs:label` store exploration reads).
    tracked_attributes: BTreeSet<Iri>,
    /// The dataset node observations link to.
    dataset: Term,
}

impl DeltaContext {
    fn for_cube(cube: &MaterializedCube) -> Self {
        let schema_predicates: BTreeSet<Iri> = [
            qb::structure(),
            qb::component(),
            qb::dimension(),
            qb::measure(),
            qb::attribute(),
            qb::component_property(),
            qb4o::level(),
            qb4o::has_hierarchy(),
            qb4o::in_dimension(),
            qb4o::has_level(),
            qb4o::in_hierarchy(),
            qb4o::child_level(),
            qb4o::parent_level(),
            qb4o::pc_cardinality(),
            qb4o::cardinality(),
            qb4o::has_attribute(),
            qb4o::in_level(),
            qb4o::aggregate_function(),
        ]
        .into_iter()
        .collect();
        let tracked_attributes = cube
            .levels
            .values()
            .flat_map(|index| index.attribute_iris().cloned())
            .collect();
        DeltaContext {
            schema_predicates,
            bottom_order: cube
                .dimensions
                .iter()
                .map(|c| c.bottom_level.clone())
                .collect(),
            measure_order: cube.measures.iter().map(|m| m.property.clone()).collect(),
            tracked_attributes,
            dataset: Term::Iri(cube.schema.dataset.clone()),
        }
    }
}

/// A new observation assembled from the inserted triples of one delta.
#[derive(Default)]
struct PendingObservation {
    typed: bool,
    linked: bool,
    dimensions: BTreeMap<Iri, Vec<Term>>,
    measures: BTreeMap<Iri, Vec<Term>>,
}

fn unsupported(reason: impl Into<String>) -> CubeStoreError {
    CubeStoreError::DeltaUnsupported(reason.into())
}

/// True if the term is dictionary-encoded in some fact column: its roll-up
/// map entries are already frozen, so hierarchy changes around it cannot be
/// replayed incrementally.
fn term_in_columns(cube: &MaterializedCube, term: &Term) -> bool {
    cube.dimensions
        .iter()
        .any(|column| column.dictionary.id(term).is_some())
}

/// True if the term appears as a parent in the broader adjacency: existing
/// members' roll-up walks can pass through it.
fn is_adjacency_parent(cube: &MaterializedCube, term: &Term) -> bool {
    cube.broader.values().any(|parents| parents.contains(term))
}

fn apply_one(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    delta: &StoreDelta,
) -> Result<(), CubeStoreError> {
    for triple in &delta.removed {
        check_removal(cube, context, triple)?;
    }
    if delta.inserted.is_empty() {
        return Ok(());
    }

    // Classify every inserted triple against the pre-delta state.
    let mut new_members: Vec<(Term, Iri)> = Vec::new();
    let mut new_broader: Vec<(Term, Term)> = Vec::new();
    let mut attribute_inserts: Vec<&Triple> = Vec::new();
    let mut pending: BTreeMap<Term, PendingObservation> = BTreeMap::new();
    for triple in &delta.inserted {
        let predicate = &triple.predicate;
        if context.schema_predicates.contains(predicate) {
            return Err(unsupported(format!(
                "schema/hierarchy triple inserted (<{}>)",
                predicate.as_str()
            )));
        }
        if *predicate == skos::broader() {
            if cube.broader.contains_key(&triple.subject)
                || is_adjacency_parent(cube, &triple.subject)
                || term_in_columns(cube, &triple.subject)
            {
                return Err(unsupported(format!(
                    "roll-up link added to existing member {}",
                    triple.subject
                )));
            }
            new_broader.push((triple.subject.clone(), triple.object.clone()));
            continue;
        }
        if *predicate == qb4o::member_of() {
            let Term::Iri(level) = &triple.object else {
                continue;
            };
            let Some(index) = cube.levels.get(level) else {
                continue; // a level of some other cube
            };
            if index.dictionary.id(&triple.subject).is_some() {
                continue;
            }
            if term_in_columns(cube, &triple.subject) {
                return Err(unsupported(format!(
                    "member {} declared for a term already present in the fact columns",
                    triple.subject
                )));
            }
            if is_adjacency_parent(cube, &triple.subject) {
                return Err(unsupported(format!(
                    "member {} declared for a term already reachable in the hierarchy",
                    triple.subject
                )));
            }
            new_members.push((triple.subject.clone(), level.clone()));
            continue;
        }
        if *predicate == rdfv::type_() {
            if triple.object == Term::Iri(qb::observation())
                && !cube.observations.contains_key(&triple.subject)
            {
                pending.entry(triple.subject.clone()).or_default().typed = true;
            }
            continue;
        }
        if *predicate == qb::data_set() {
            if triple.object == context.dataset && !cube.observations.contains_key(&triple.subject)
            {
                pending.entry(triple.subject.clone()).or_default().linked = true;
            }
            continue;
        }
        if context.bottom_order.contains(predicate) {
            if cube.observations.contains_key(&triple.subject) {
                return Err(unsupported(format!(
                    "materialized observation {} gained a dimension value",
                    triple.subject
                )));
            }
            pending
                .entry(triple.subject.clone())
                .or_default()
                .dimensions
                .entry(predicate.clone())
                .or_default()
                .push(triple.object.clone());
            continue;
        }
        if context.measure_order.contains(predicate) {
            if cube.observations.contains_key(&triple.subject) {
                return Err(unsupported(format!(
                    "materialized observation {} gained a measure value",
                    triple.subject
                )));
            }
            pending
                .entry(triple.subject.clone())
                .or_default()
                .measures
                .entry(predicate.clone())
                .or_default()
                .push(triple.object.clone());
            continue;
        }
        if context.tracked_attributes.contains(predicate) {
            attribute_inserts.push(triple);
            continue;
        }
        // Anything else (owl:sameAs links, notations, other datasets'
        // triples, ...) is invisible to the materialization.
    }

    // Apply in dependency order: members, hierarchy links, attribute
    // values, observations, then extend the roll-up maps.
    for (member, level) in &new_members {
        let index = cube.levels.get_mut(level).expect("level classified above");
        index.add_member(member);
    }
    for (child, parent) in new_broader {
        // Keep each parent list sorted, exactly as the `ORDER BY ?c ?p`
        // read at build time leaves it.
        let parents = cube.broader.entry(child).or_default();
        if let Err(position) = parents.binary_search(&parent) {
            parents.insert(position, parent);
            cube.stats.broader_links += 1;
        }
    }
    for triple in attribute_inserts {
        apply_attribute_insert(cube, context, triple)?;
    }
    let mut appended = false;
    for (node, observation) in pending {
        if !observation.linked {
            if cube.dropped_observations.contains(&node) {
                // A previously dropped (incomplete) observation of this
                // dataset gained triples; a fresh build might now accept
                // it, so the delta path may not silently ignore it.
                return Err(unsupported(format!(
                    "dropped observation {node} mutated"
                )));
            }
            // Never linked to this cube's dataset: another dataset's
            // observation, or a fragment whose `qb:dataSet` link arrives
            // in a later delta (which then rebuilds). A fresh build would
            // skip it too.
            continue;
        }
        append_observation(cube, context, node, observation)?;
        appended = true;
    }
    if appended || !new_members.is_empty() {
        extend_rollup_maps(cube);
    }
    Ok(())
}

fn check_removal(
    cube: &MaterializedCube,
    context: &DeltaContext,
    triple: &Triple,
) -> Result<(), CubeStoreError> {
    let predicate = &triple.predicate;
    if context.schema_predicates.contains(predicate) {
        return Err(unsupported(format!(
            "schema/hierarchy triple removed (<{}>)",
            predicate.as_str()
        )));
    }
    if *predicate == skos::broader() {
        if cube
            .broader
            .get(&triple.subject)
            .is_some_and(|parents| parents.contains(&triple.object))
        {
            return Err(unsupported(format!(
                "roll-up link removed from member {}",
                triple.subject
            )));
        }
        return Ok(());
    }
    if *predicate == qb4o::member_of() {
        if let Term::Iri(level) = &triple.object {
            if cube
                .levels
                .get(level)
                .is_some_and(|index| index.dictionary.id(&triple.subject).is_some())
            {
                return Err(unsupported(format!(
                    "member {} removed from level <{}>",
                    triple.subject,
                    level.as_str()
                )));
            }
        }
        return Ok(());
    }
    if cube.observations.contains_key(&triple.subject) {
        let relevant = *predicate == qb::data_set()
            || (*predicate == rdfv::type_() && triple.object == Term::Iri(qb::observation()))
            || context.bottom_order.contains(predicate)
            || context.measure_order.contains(predicate);
        if relevant {
            return Err(unsupported(format!(
                "materialized observation {} mutated by a removal",
                triple.subject
            )));
        }
        return Ok(());
    }
    if context.tracked_attributes.contains(predicate) {
        if *predicate == rdfs::label() && triple.subject == context.dataset {
            let removed = triple.object.as_literal().map(|l| l.lexical());
            if cube.dataset_label.as_deref() == removed {
                return Err(unsupported("dataset label removed"));
            }
            return Ok(());
        }
        for index in cube.levels.values() {
            if let Some(id) = index.dictionary.id(&triple.subject) {
                if index.attribute_value(predicate, id) == Some(&triple.object) {
                    return Err(unsupported(format!(
                        "attribute value removed from member {}",
                        triple.subject
                    )));
                }
            }
        }
        return Ok(());
    }
    Ok(())
}

fn apply_attribute_insert(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    triple: &Triple,
) -> Result<(), CubeStoreError> {
    if triple.subject == context.dataset && triple.predicate == rdfs::label() {
        let label = triple
            .object
            .as_literal()
            .map(|l| l.lexical().to_string())
            .ok_or_else(|| unsupported("non-literal dataset label"))?;
        match &cube.dataset_label {
            None => cube.dataset_label = Some(label),
            Some(existing) if *existing == label => {}
            Some(_) => return Err(unsupported("dataset label changed")),
        }
        return Ok(());
    }
    if cube.observations.contains_key(&triple.subject) {
        // Labels or attribute-named properties on observation nodes never
        // reach any query; ignore them.
        return Ok(());
    }
    let mut known_member = false;
    for index in cube.levels.values_mut() {
        let Some(id) = index.dictionary.id(&triple.subject) else {
            continue;
        };
        known_member = true;
        match index.attribute_value(&triple.predicate, id) {
            // The attribute is not tracked on this level, or the member has
            // no value yet: set_member_attribute handles both.
            None => {
                index.set_member_attribute(&triple.predicate, id, triple.object.clone());
            }
            Some(existing) if *existing == triple.object => {}
            Some(_) => {
                return Err(unsupported(format!(
                    "member {} gained a second value for attribute <{}>",
                    triple.subject,
                    triple.predicate.as_str()
                )));
            }
        }
    }
    if !known_member {
        // The value may matter to a member added in a *later* delta or to a
        // future rebuild; refusing keeps the cube bit-identical with one.
        return Err(unsupported(format!(
            "attribute value for unknown member {}",
            triple.subject
        )));
    }
    Ok(())
}

fn append_observation(
    cube: &mut MaterializedCube,
    context: &DeltaContext,
    node: Term,
    observation: PendingObservation,
) -> Result<(), CubeStoreError> {
    if !observation.typed {
        // A dataset-linked but untyped fragment would be dropped today yet
        // could be completed by a later mutation; a rebuild decides.
        return Err(unsupported(format!(
            "observation {node} arrives incomplete (not typed qb:Observation)"
        )));
    }
    // Appending to a populated float column would accumulate SUM/AVG in a
    // different order than a rebuild's ORDER BY ?obs row order — the same
    // last-ulp hazard the executor's scan guards against by staying
    // single-threaded for non-integral measures. Integral sums are exact
    // in any order; floats go through the rebuild.
    if cube.measures.iter().any(|m| {
        !m.data.is_empty() && !matches!(m.data, crate::columns::MeasureVector::Integer(_))
    }) {
        return Err(unsupported(format!(
            "observation {node} appends to a non-integral measure column \
             (float accumulation order would diverge from a rebuild)"
        )));
    }
    for (position, property) in context.measure_order.iter().enumerate() {
        let values = observation
            .measures
            .get(property)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        match values {
            [Term::Literal(literal)] => cube.measures[position].push_value(literal)?,
            [] => {
                return Err(unsupported(format!(
                    "observation {node} is missing measure <{}>",
                    property.as_str()
                )))
            }
            [_] => {
                return Err(unsupported(format!(
                    "observation {node} has a non-literal value for measure <{}>",
                    property.as_str()
                )))
            }
            _ => {
                return Err(unsupported(format!(
                    "observation {node} has several values for measure <{}>",
                    property.as_str()
                )))
            }
        }
    }
    for (position, bottom) in context.bottom_order.iter().enumerate() {
        let values = observation
            .dimensions
            .get(bottom)
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        match values {
            [] => cube.dimensions[position].push_row(None),
            [member] => cube.dimensions[position].push_row(Some(member)),
            _ => {
                return Err(unsupported(format!(
                    "observation {node} has several values for dimension <{}>",
                    bottom.as_str()
                )))
            }
        }
    }
    cube.observations.insert(node, cube.row_count);
    cube.row_count += 1;
    cube.stats.rows += 1;
    cube.stats.observations_seen += 1;
    Ok(())
}

/// Extends every roll-up map to cover bottom members that entered a column
/// dictionary since the map was built, using the same
/// broader-walk-with-path-counts the initial build uses.
fn extend_rollup_maps(cube: &mut MaterializedCube) {
    let MaterializedCube {
        schema,
        dimensions,
        levels,
        rollups,
        broader,
        ..
    } = cube;
    for column in dimensions.iter() {
        let bottom = &column.bottom_level;
        let dimension = schema
            .dimension(&column.dimension)
            .expect("every column has a schema dimension");

        // Identity map (bottom level): anchor new codes at the declared
        // bottom members.
        let identity_key = (column.dimension.clone(), bottom.clone());
        if let Some(map) = rollups.get_mut(&identity_key) {
            let bottom_index = levels.get(bottom).expect("bottom level indexed");
            for code in map.len()..column.dictionary.len() {
                let term = column.dictionary.term(code as crate::dictionary::MemberId);
                map.push(bottom_index.dictionary.id(term).unwrap_or(NO_MEMBER));
            }
        }

        for target in dimension.ancestor_levels(bottom) {
            let steps = match dimension.rollup_path(bottom, &target) {
                Some((_, steps)) => steps.len(),
                None => continue,
            };
            let key = (column.dimension.clone(), target.clone());
            let Some(map) = rollups.get_mut(&key) else {
                continue;
            };
            let target_index = levels.get(&target).expect("all levels indexed");
            for code in map.len()..column.dictionary.len() {
                let term = column.dictionary.term(code as crate::dictionary::MemberId);
                map.push(resolve_rollup_target(term, steps, broader, target_index));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use qb4olap::AggregateFunction;
    use rdf::vocab::{qb, rdf as rdfv, rdfs};
    use rdf::{Literal, Term, Triple};
    use sparql::{Endpoint, LocalEndpoint};

    use crate::executor::{execute, CubeQuery};
    use crate::testutil::{fixture, iri, member, observation_triples};
    use crate::{CubeStoreError, MaterializedCube};

    use super::*;

    /// Builds the fixture cube with change tracking on, so mutations made
    /// through the endpoint are recorded as replayable deltas.
    fn tracked() -> (LocalEndpoint, MaterializedCube, u64) {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        (endpoint, cube, epoch)
    }

    fn deltas_after(endpoint: &LocalEndpoint, epoch: u64) -> Vec<StoreDelta> {
        endpoint.deltas_since(epoch).expect("change log enabled")
    }

    fn rollup_to_country() -> CubeQuery {
        CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        }
    }

    /// After a successful delta application, every query the fixture can
    /// answer must agree with a from-scratch materialization.
    fn assert_matches_rebuild(endpoint: &LocalEndpoint, cube: &MaterializedCube) {
        let rebuilt = MaterializedCube::from_endpoint(endpoint, cube.schema()).unwrap();
        for query in [CubeQuery::default(), rollup_to_country()] {
            assert_eq!(
                execute(cube, &query).unwrap(),
                execute(&rebuilt, &query).unwrap(),
                "delta-applied cube diverges from a rebuild"
            );
        }
    }

    #[test]
    fn pure_observation_append_is_applied_in_place() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&observation_triples("o6", "c1", "m2", 40, 2))
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), cube.row_count() + 1);
        assert_eq!(refreshed.stats().rows, cube.stats().rows + 1);
        assert!(refreshed.is_observation(&Term::iri("http://example.org/obs/o6")));
        assert_matches_rebuild(&endpoint, &refreshed);
        // The original cube is untouched (apply returns a new one).
        assert_eq!(cube.row_count(), 5);
    }

    #[test]
    fn new_member_with_rollup_link_label_and_observation() {
        let (endpoint, cube, epoch) = tracked();
        // A brand-new city c4 in country K2, with a label, plus an
        // observation that references it — all in one batch.
        let mut batch = vec![
            qb4olap::member_of_triple(&member("c4"), &iri("lv/city")),
            qb4olap::rollup_triple(&member("c4"), &member("K2")),
            Triple::new(member("c4"), rdfs::label(), Literal::string("City Four")),
        ];
        batch.extend(observation_triples("o7", "c4", "m1", 11, 1));
        endpoint.insert_triples(&batch).unwrap();

        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), 6);
        let city_index = refreshed.level(&iri("lv/city")).unwrap();
        let id = city_index.dictionary.id(&member("c4")).expect("declared");
        assert_eq!(
            city_index.attribute_value(&rdfs::label(), id),
            Some(&Term::Literal(Literal::string("City Four")))
        );
        assert_eq!(refreshed.broader_parents(&member("c4")), &[member("K2")]);
        // The K2 group gains the new observation's value.
        let output = execute(&refreshed, &rollup_to_country()).unwrap();
        let k2m1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K2"), member("m1")])
            .unwrap();
        assert_eq!(k2m1.values[0], Some(Term::integer(16)), "5 + 11");
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn consecutive_deltas_apply_in_order() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&observation_triples("o6", "c2", "m1", 1, 1))
            .unwrap();
        endpoint
            .insert_triples(&observation_triples("o7", "c1", "m2", 2, 2))
            .unwrap();
        let deltas = deltas_after(&endpoint, epoch);
        assert_eq!(deltas.len(), 2);
        let refreshed = cube.apply_delta(&deltas).unwrap();
        assert_eq!(refreshed.row_count(), 7);
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn relevant_removals_force_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        // Cutting a roll-up link (the ragged-hierarchy mutation) cannot be
        // replayed in place.
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("roll-up link removed")),
            "{error}"
        );
    }

    #[test]
    fn observation_mutations_force_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        let o1 = Term::iri("http://example.org/obs/o1");
        // Removing a measure value of a materialized observation...
        assert!(endpoint
            .store()
            .remove(&Triple::new(o1.clone(), iri("measure/value"), Literal::integer(10))));
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(matches!(error, CubeStoreError::DeltaUnsupported(_)), "{error}");

        // ... and giving an existing observation a second dimension value
        // both refuse.
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[Triple::new(o1, iri("lv/city"), member("c2"))])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("gained a dimension value")),
            "{error}"
        );
    }

    #[test]
    fn schema_and_hierarchy_structure_changes_force_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[Triple::new(
                Term::iri("http://example.org/dsdQB4O"),
                rdf::vocab::qb4o::has_level(),
                Term::iri("http://example.org/lv/region"),
            )])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("schema/hierarchy")),
            "{error}"
        );
    }

    #[test]
    fn incomplete_and_conflicting_inserts_force_a_rebuild() {
        // An observation fragment missing its measures.
        let (endpoint, cube, epoch) = tracked();
        let node = Term::iri("http://example.org/obs/half");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node, qb::data_set(), Term::iri("http://example.org/ds")),
            ])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(matches!(error, CubeStoreError::DeltaUnsupported(_)), "{error}");

        // A broader link added to an already-materialized member.
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[qb4olap::rollup_triple(&member("c3"), &member("K2"))])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("existing member")),
            "{error}"
        );

        // An attribute value for a member the cube has never seen.
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples(&[Triple::new(
                Term::iri("http://example.org/member/ghost"),
                iri("attr/countryName"),
                Literal::string("Ghost"),
            )])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("unknown member")),
            "{error}"
        );
    }

    #[test]
    fn attribute_value_fills_an_empty_slot() {
        let (endpoint, cube, epoch) = tracked();
        // K2 has no countryName in the fixture; the delta provides one.
        endpoint
            .insert_triples(&[qb4olap::attribute_triple(
                &member("K2"),
                &iri("attr/countryName"),
                &Term::Literal(Literal::string("Beta")),
            )])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        let country = refreshed.level(&iri("lv/country")).unwrap();
        let id = country.dictionary.id(&member("K2")).unwrap();
        assert_eq!(
            country.attribute_value(&iri("attr/countryName"), id),
            Some(&Term::Literal(Literal::string("Beta")))
        );
        // A *second*, different value conflicts.
        let epoch = endpoint.epoch();
        endpoint
            .insert_triples(&[qb4olap::attribute_triple(
                &member("K2"),
                &iri("attr/countryName"),
                &Term::Literal(Literal::string("Gamma")),
            )])
            .unwrap();
        let error = refreshed
            .apply_delta(&deltas_after(&endpoint, epoch))
            .unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("second value")),
            "{error}"
        );
    }

    #[test]
    fn appends_to_float_measure_columns_force_a_rebuild() {
        // A decimal-measure cube: appending would sum floats in a
        // different order than a rebuild, so the delta path refuses.
        let city = iri("lv/city");
        let value = iri("measure/value");
        let mut builder = ::qb::QbDatasetBuilder::new(iri("ds"), iri("dsd"))
            .dimension(city.clone())
            .measure(value.clone());
        let mut obs = ::qb::Observation::new(Term::iri("http://example.org/obs/f1"));
        obs.dimensions.insert(city.clone(), member("c1"));
        obs.measures
            .insert(value.clone(), Term::Literal(Literal::decimal(1.5)));
        builder = builder.observation(obs);
        let (_, mut triples) = builder.build();
        triples.push(qb4olap::member_of_triple(&member("c1"), &city));
        let endpoint = LocalEndpoint::new();
        endpoint.insert_triples(&triples).unwrap();

        let mut schema = qb4olap::CubeSchema::new(iri("dsdQB4O"), iri("ds"));
        let mut hierarchy = qb4olap::Hierarchy::new(iri("hier/city"));
        hierarchy.levels = vec![city.clone()];
        let mut dimension = qb4olap::Dimension::new(iri("dim/city"));
        dimension.hierarchies.push(hierarchy);
        schema.dimensions.push(dimension);
        schema.measures.push(qb4olap::MeasureSpec {
            property: value.clone(),
            aggregate: AggregateFunction::Sum,
        });

        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        let node = Term::iri("http://example.org/obs/f2");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
                Triple::new(node.clone(), city, member("c1")),
                Triple::new(node, value, Literal::decimal(2.5)),
            ])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("non-integral")),
            "{error}"
        );
    }

    #[test]
    fn other_datasets_observations_do_not_disturb_the_delta_path() {
        let (endpoint, cube, epoch) = tracked();
        // A complete observation of a *different* dataset, sharing the
        // measure property: invisible to this cube, so the delta applies
        // as a no-op instead of forcing a rebuild.
        let node = Term::iri("http://example.org/other/obs1");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/otherDs")),
                Triple::new(node, iri("measure/value"), Literal::integer(123)),
            ])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), cube.row_count());
        assert_matches_rebuild(&endpoint, &refreshed);
    }

    #[test]
    fn completing_a_dropped_observation_forces_a_rebuild() {
        // An observation that is dataset-linked but untyped is dropped at
        // build time; a delta typing it must rebuild (a fresh build now
        // accepts it), not be skipped as foreign.
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let node = Term::iri("http://example.org/obs/late");
        endpoint
            .insert_triples(&[
                Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
                Triple::new(node.clone(), iri("lv/city"), member("c1")),
                Triple::new(node.clone(), iri("lv/month"), member("m1")),
                Triple::new(node.clone(), iri("measure/value"), Literal::integer(7)),
                Triple::new(node.clone(), iri("measure/score"), Literal::integer(7)),
            ])
            .unwrap();
        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(cube.stats().rows_dropped, 1, "untyped observation dropped");

        endpoint
            .insert_triples(&[Triple::new(node, rdfv::type_(), Term::Iri(qb::observation()))])
            .unwrap();
        let error = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap_err();
        assert!(
            matches!(error, CubeStoreError::DeltaUnsupported(ref m) if m.contains("dropped observation")),
            "{error}"
        );
    }

    #[test]
    fn delta_applied_adjacency_stays_sorted_like_a_rebuild() {
        let (endpoint, cube, epoch) = tracked();
        // Two roll-up links for a new member, inserted in reverse order;
        // the delta-applied adjacency must match the rebuilt (ordered)
        // read. (The member becomes ambiguous — fine, queries refusing it
        // is covered elsewhere.)
        endpoint
            .insert_triples(&[
                qb4olap::member_of_triple(&member("c9"), &iri("lv/city")),
                qb4olap::rollup_triple(&member("c9"), &member("K2")),
                qb4olap::rollup_triple(&member("c9"), &member("K1")),
            ])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        let rebuilt = MaterializedCube::from_endpoint(&endpoint, refreshed.schema()).unwrap();
        assert_eq!(
            refreshed.broader_parents(&member("c9")),
            rebuilt.broader_parents(&member("c9")),
            "adjacency order diverges from a rebuild"
        );
        assert_eq!(refreshed.broader_parents(&member("c9")), &[member("K1"), member("K2")]);
    }

    #[test]
    fn named_graph_and_irrelevant_deltas_are_ignored() {
        let (endpoint, cube, epoch) = tracked();
        endpoint
            .insert_triples_named(
                &Iri::new("http://example.org/graph/staging"),
                &observation_triples("staged", "c1", "m1", 999, 9),
            )
            .unwrap();
        // Unrelated triples in the default graph are invisible too.
        endpoint
            .insert_triples(&[Triple::new(
                Term::iri("http://example.org/elsewhere"),
                Iri::new("http://example.org/unrelated"),
                Literal::string("noise"),
            )])
            .unwrap();
        let refreshed = cube.apply_delta(&deltas_after(&endpoint, epoch)).unwrap();
        assert_eq!(refreshed.row_count(), cube.row_count());
        assert_matches_rebuild(&endpoint, &refreshed);
    }
}
