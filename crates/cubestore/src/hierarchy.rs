//! The hierarchy side of a materialized cube: per-level member indexes with
//! attribute values, and precomputed bottom-level → ancestor roll-up maps.
//!
//! Both structures are copy-on-write: the attribute store of a
//! [`LevelIndex`] and the target array of a [`RollupMap`] live behind
//! `Arc`s, so a delta refresh that adds no members (the common case)
//! shares them outright with the previous cube, and one that does add
//! members copies only the indexes and maps that actually grow.

use std::collections::BTreeMap;
use std::sync::Arc;

use rdf::{Iri, Term};

use crate::dictionary::{Dictionary, MemberId, AMBIGUOUS_MEMBER, NO_MEMBER};

/// The members declared `qb4o:memberOf` one level, with the attribute values
/// the dices need, dictionary-encoded.
#[derive(Debug, Clone)]
pub struct LevelIndex {
    /// The level IRI.
    pub level: Iri,
    /// The declared members of the level.
    pub dictionary: Dictionary,
    /// Attribute IRI → per-member value (indexed by member id; `None` where
    /// the member has no value for the attribute). Only the first value of a
    /// multi-valued attribute is kept, matching the single-valued data the
    /// SPARQL backend is exercised on. `Arc`-shared between a cube and its
    /// delta-refreshed clones until a delta mutates it.
    attributes: Arc<BTreeMap<Iri, Vec<Option<Term>>>>,
}

impl LevelIndex {
    /// Creates an index over the declared members of a level.
    pub fn new(level: Iri, dictionary: Dictionary) -> Self {
        LevelIndex {
            level,
            dictionary,
            attributes: Arc::new(BTreeMap::new()),
        }
    }

    /// Records the values of one attribute, given as `(member, value)`
    /// pairs. Pairs whose member is not declared on the level are ignored;
    /// for multi-valued members the first pair wins.
    pub fn set_attribute(&mut self, attribute: Iri, pairs: &[(Term, Term)]) {
        let mut values: Vec<Option<Term>> = vec![None; self.dictionary.len()];
        for (member, value) in pairs {
            if let Some(id) = self.dictionary.id(member) {
                let slot = &mut values[id as usize];
                if slot.is_none() {
                    *slot = Some(value.clone());
                }
            }
        }
        Arc::make_mut(&mut self.attributes).insert(attribute, values);
    }

    /// The value of `attribute` on the member with id `member`, if any.
    pub fn attribute_value(&self, attribute: &Iri, member: MemberId) -> Option<&Term> {
        self.attributes
            .get(attribute)?
            .get(member as usize)?
            .as_ref()
    }

    /// Declares one more member on the level (incremental maintenance).
    /// Every tracked attribute is extended with an empty slot. Returns the
    /// member's id and whether it was new.
    pub fn add_member(&mut self, member: &Term) -> (MemberId, bool) {
        if let Some(id) = self.dictionary.id(member) {
            return (id, false);
        }
        let id = self.dictionary.encode(member);
        for values in Arc::make_mut(&mut self.attributes).values_mut() {
            values.push(None);
        }
        (id, true)
    }

    /// Sets the value of a tracked attribute on one member (incremental
    /// maintenance; the slot must currently be empty). Returns `false` when
    /// the attribute is not tracked on this level.
    pub fn set_member_attribute(&mut self, attribute: &Iri, member: MemberId, value: Term) -> bool {
        if !self.attributes.contains_key(attribute) {
            return false;
        }
        let values = Arc::make_mut(&mut self.attributes)
            .get_mut(attribute)
            .expect("checked above");
        let slot = &mut values[member as usize];
        debug_assert!(slot.is_none(), "delta application checked the slot is empty");
        *slot = Some(value);
        true
    }

    /// The attributes tracked on this level.
    pub fn attribute_iris(&self) -> impl Iterator<Item = &Iri> {
        self.attributes.keys()
    }

    /// True if the index holds values for `attribute`.
    pub fn has_attribute(&self, attribute: &Iri) -> bool {
        self.attributes.contains_key(attribute)
    }

    /// Number of declared members.
    pub fn member_count(&self) -> usize {
        self.dictionary.len()
    }
}

/// A precomputed roll-up map for one `(dimension, target level)` pair:
/// bottom-member code → code of the ancestor member at the target level (in
/// the target level's [`LevelIndex`] dictionary).
///
/// Entries are [`NO_MEMBER`] where the bottom member has no ancestor at the
/// target level (ragged hierarchies — the SPARQL backend drops those
/// observations, and so does the columnar executor) and
/// [`AMBIGUOUS_MEMBER`] where it has several (non-functional roll-ups — the
/// columnar executor refuses those).
#[derive(Debug, Clone)]
pub struct RollupMap {
    /// The dimension the map belongs to.
    pub dimension: Iri,
    /// The level the map rolls up to.
    pub target_level: Iri,
    /// `Arc`-shared with delta-refreshed clones; copied only when a delta
    /// introduces new bottom members (the map grows with the bottom
    /// dictionary, not with the fact rows).
    map: Arc<Vec<MemberId>>,
}

impl RollupMap {
    /// Creates a map from the raw per-bottom-code targets.
    pub fn new(dimension: Iri, target_level: Iri, map: Vec<MemberId>) -> Self {
        RollupMap {
            dimension,
            target_level,
            map: Arc::new(map),
        }
    }

    /// The target code for a bottom-member code.
    #[inline]
    pub fn target(&self, bottom: MemberId) -> MemberId {
        self.map[bottom as usize]
    }

    /// Appends the target for the next bottom-member code (incremental
    /// maintenance: the bottom dictionary grew by one member). Copies the
    /// shared map on the first push of a refresh.
    pub fn push(&mut self, target: MemberId) {
        Arc::make_mut(&mut self.map).push(target);
    }

    /// Number of bottom members covered.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the map covers no members.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of bottom members with no ancestor at the target level.
    pub fn unmapped_members(&self) -> usize {
        self.map.iter().filter(|&&t| t == NO_MEMBER).count()
    }

    /// Number of bottom members with several ancestors at the target level.
    pub fn ambiguous_members(&self) -> usize {
        self.map.iter().filter(|&&t| t == AMBIGUOUS_MEMBER).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(names: &[&str]) -> Dictionary {
        let mut dict = Dictionary::new();
        for n in names {
            dict.encode(&Term::iri(format!("http://m/{n}")));
        }
        dict
    }

    #[test]
    fn attribute_lookup_first_value_wins() {
        let mut index = LevelIndex::new(Iri::new("http://level"), members(&["a", "b"]));
        let attr = Iri::new("http://attr/name");
        index.set_attribute(
            attr.clone(),
            &[
                (Term::iri("http://m/a"), Term::string("first")),
                (Term::iri("http://m/a"), Term::string("second")),
                (Term::iri("http://m/unknown"), Term::string("ignored")),
            ],
        );
        assert!(index.has_attribute(&attr));
        assert_eq!(index.member_count(), 2);
        assert_eq!(index.attribute_value(&attr, 0), Some(&Term::string("first")));
        assert_eq!(index.attribute_value(&attr, 1), None);
        assert!(!index.has_attribute(&Iri::new("http://attr/other")));
        assert_eq!(index.attribute_value(&Iri::new("http://attr/other"), 0), None);
    }

    #[test]
    fn rollup_map_counters() {
        let map = RollupMap::new(
            Iri::new("http://dim"),
            Iri::new("http://level/top"),
            vec![0, NO_MEMBER, 1, AMBIGUOUS_MEMBER],
        );
        assert_eq!(map.len(), 4);
        assert!(!map.is_empty());
        assert_eq!(map.target(0), 0);
        assert_eq!(map.target(1), NO_MEMBER);
        assert_eq!(map.unmapped_members(), 1);
        assert_eq!(map.ambiguous_members(), 1);
    }
}
