//! Materialization: one pass over the endpoint turns a QB4OLAP dataset into
//! a [`MaterializedCube`] — dictionary-encoded dimension columns, dense
//! typed measure vectors, per-level member indexes with attribute values,
//! and precomputed bottom-level → ancestor roll-up maps.
//!
//! The build runs a handful of SPARQL queries *once*; afterwards every QL
//! pipeline executes directly over the columns with no endpoint round-trip.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use qb4olap::CubeSchema;
use rdf::{Iri, Term};
use sparql::Endpoint;

use crate::columns::{DimensionColumn, MeasureColumn, MeasureVector};
use crate::dictionary::{Dictionary, MemberId, AMBIGUOUS_MEMBER, NO_MEMBER};
use crate::error::CubeStoreError;
use crate::hierarchy::{LevelIndex, RollupMap};
use crate::observations::ObservationIndex;
use crate::tombstone::Tombstones;
use crate::zonemap::ZoneMaps;

/// Counters describing what one materialization did, kept up to date by
/// incremental maintenance (appends increment, tombstoned removals
/// decrement), so they always describe what a fresh build of the current
/// store would produce.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Observations of the dataset on the endpoint (delta-applied removals
    /// subtract, so this tracks what the endpoint currently holds).
    pub observations_seen: usize,
    /// *Live* fact rows (physical rows minus tombstoned rows).
    pub rows: usize,
    /// Observations dropped (not typed `qb:Observation`, or missing a
    /// measure value — the SPARQL backend's join drops them too).
    pub rows_dropped: usize,
    /// Level indexes built.
    pub levels: usize,
    /// Roll-up maps precomputed.
    pub rollup_maps: usize,
    /// `skos:broader` member links read from the endpoint.
    pub broader_links: usize,
}

/// A QB4OLAP dataset materialized into columnar form.
///
/// Besides the fact columns and roll-up maps the executor needs, the cube
/// retains the member-level `skos:broader` adjacency, the observation →
/// row index and the display labels — the state incremental maintenance
/// ([`MaterializedCube::apply_delta`]) and the columnar Exploration paths
/// are served from.
///
/// # Copy-on-write refreshes
///
/// Every sizable component is either segmented ([`crate::cowvec::CowVec`]
/// columns), layered ([`ObservationIndex`]) or `Arc`-shared (dictionaries,
/// level indexes, roll-up maps, the broader adjacency, the tombstone
/// bitmap), so `cube.clone()` is O(components), not O(rows), and
/// [`MaterializedCube::apply_delta`] copies only the pieces a delta
/// actually extends. See `ARCHITECTURE.md` § "COW and tombstone
/// invariants" for the full cost model.
///
/// # Tombstones
///
/// Removed observations stay physically present in the columns but are
/// marked dead in a bitmap ([`MaterializedCube::tombstoned_rows`]); the
/// executor skips dead rows, and the catalog re-materializes the cube once
/// the live fraction falls below the compaction threshold.
#[derive(Debug, Clone)]
pub struct MaterializedCube {
    pub(crate) schema: Arc<CubeSchema>,
    /// Physical fact rows, tombstoned rows included.
    pub(crate) row_count: usize,
    pub(crate) dimensions: Vec<DimensionColumn>,
    pub(crate) measures: Vec<MeasureColumn>,
    pub(crate) levels: BTreeMap<Iri, LevelIndex>,
    pub(crate) rollups: BTreeMap<(Iri, Iri), RollupMap>,
    /// Materialized observation node → fact row (live rows only).
    pub(crate) observations: ObservationIndex,
    /// Dataset-linked observation nodes that were *dropped* (untyped, or
    /// missing a measure). A delta completing one of these must rebuild —
    /// a fresh materialization would accept the now-complete observation.
    pub(crate) dropped_observations: Arc<BTreeSet<Term>>,
    /// Materialized observations that carried **several distinct values**
    /// for some dimension or measure in the store (QB-malformed; the
    /// build froze one). Partial removals of these must rebuild: removing
    /// the frozen value would silently expose the duplicate a fresh build
    /// now picks.
    pub(crate) multivalued_observations: Arc<BTreeSet<Term>>,
    /// Member-level `skos:broader` adjacency (child → sorted parents),
    /// `Arc`-shared until a delta adds links for new members.
    pub(crate) broader: Arc<BTreeMap<Term, Vec<Term>>>,
    /// The dataset's `rdfs:label`, for catalog-served cube summaries.
    pub(crate) dataset_label: Option<String>,
    /// Dead-row bitmap; rows it marks are skipped by every scan.
    pub(crate) tombstones: Tombstones,
    /// Per-segment pruning metadata (distinct member codes per dimension,
    /// min/max per measure), built here and extended under
    /// [`MaterializedCube::apply_delta`].
    pub(crate) zones: ZoneMaps,
    pub(crate) stats: BuildStats,
}

impl MaterializedCube {
    /// Materializes the dataset described by `schema` from the endpoint.
    ///
    /// The cube is a snapshot: triples loaded into the endpoint afterwards
    /// are not reflected (rebuild to pick them up). Observations are
    /// assumed to carry at most one value per dimension and per measure
    /// (QB well-formedness); extra values are ignored rather than
    /// multiplying rows the way a raw SPARQL join would.
    pub fn from_endpoint(
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
    ) -> Result<Self, CubeStoreError> {
        Builder { endpoint, schema }.build()
    }

    /// The schema the cube was materialized for.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// Number of physical fact rows, tombstoned rows included (the row-id
    /// space of the columns).
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of live fact rows (what a fresh build of the current store
    /// would materialize).
    pub fn live_row_count(&self) -> usize {
        self.row_count - self.tombstones.dead_rows()
    }

    /// Number of tombstoned (removed but not yet compacted) fact rows.
    pub fn tombstoned_rows(&self) -> usize {
        self.tombstones.dead_rows()
    }

    /// The dead-row bitmap (scans must skip the rows it marks).
    pub(crate) fn tombstones(&self) -> &Tombstones {
        &self.tombstones
    }

    /// The per-segment zone maps (the executor's pruning metadata).
    pub(crate) fn zone_maps(&self) -> &ZoneMaps {
        &self.zones
    }

    /// Checks every zone-map invariant against the actual column contents
    /// and the tombstone bitmap: exact distinct-code sets per (dimension,
    /// segment), exact min/max per (measure, segment), and per-segment
    /// dead counts that re-count from the bitmap. `Err` carries the first
    /// violation found. Exposed so lifecycle tests (build → delta-append →
    /// tombstone → compaction) can assert the maps stay sound at every
    /// step.
    pub fn verify_zone_invariants(&self) -> Result<(), String> {
        self.zones
            .verify(&self.dimensions, &self.measures, self.row_count, &self.tombstones)
    }

    /// The column of a dimension, if the schema declares it.
    pub fn dimension_column(&self, dimension: &Iri) -> Option<&DimensionColumn> {
        self.dimensions.iter().find(|c| &c.dimension == dimension)
    }

    /// All dimension columns, in schema order.
    pub fn dimension_columns(&self) -> &[DimensionColumn] {
        &self.dimensions
    }

    /// All measure columns, in schema order.
    pub fn measure_columns(&self) -> &[MeasureColumn] {
        &self.measures
    }

    /// The member index of a level.
    pub fn level(&self, level: &Iri) -> Option<&LevelIndex> {
        self.levels.get(level)
    }

    /// The precomputed roll-up map of a dimension to a target level
    /// (including the identity-with-membership map for the bottom level).
    pub fn rollup(&self, dimension: &Iri, level: &Iri) -> Option<&RollupMap> {
        self.rollups.get(&(dimension.clone(), level.clone()))
    }

    /// Build counters.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// All level indexes, keyed by level IRI.
    pub fn levels(&self) -> &BTreeMap<Iri, LevelIndex> {
        &self.levels
    }

    /// The `skos:broader` parents of a member (empty if none are known).
    pub fn broader_parents(&self, member: &Term) -> &[Term] {
        self.broader.get(member).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The full member-level `skos:broader` adjacency (child → parents).
    pub fn broader_map(&self) -> &BTreeMap<Term, Vec<Term>> {
        &self.broader
    }

    /// True if `node` is one of the live materialized observations
    /// (removed observations stop being reported here the moment their row
    /// is tombstoned).
    pub fn is_observation(&self, node: &Term) -> bool {
        self.observations.contains(node)
    }

    /// The dataset's `rdfs:label`, if it has one.
    pub fn dataset_label(&self) -> Option<&str> {
        self.dataset_label.as_deref()
    }
}

/// Resolves the roll-up target of one bottom member: walks the `broader`
/// adjacency for exactly `steps` hops (tracking path *counts*, because the
/// SPARQL join counts an observation once per distinct path) and anchors
/// the result at the target level's members. Shared by the initial build
/// and by incremental maintenance so both produce identical maps.
pub(crate) fn resolve_rollup_target(
    term: &Term,
    steps: usize,
    broader: &BTreeMap<Term, Vec<Term>>,
    target_index: &LevelIndex,
) -> MemberId {
    let mut frontier: BTreeMap<&Term, usize> = BTreeMap::new();
    frontier.insert(term, 1);
    for _ in 0..steps {
        let mut next: BTreeMap<&Term, usize> = BTreeMap::new();
        for (current, paths) in frontier {
            for parent in broader.get(current).into_iter().flatten() {
                *next.entry(parent).or_default() += paths;
            }
        }
        frontier = next;
    }
    let anchored: Vec<(MemberId, usize)> = frontier
        .into_iter()
        .filter_map(|(t, paths)| target_index.dictionary.id(t).map(|id| (id, paths)))
        .collect();
    match anchored.as_slice() {
        [] => NO_MEMBER,
        [(id, 1)] => *id,
        _ => AMBIGUOUS_MEMBER,
    }
}

struct Builder<'a> {
    endpoint: &'a dyn Endpoint,
    schema: &'a CubeSchema,
}

impl Builder<'_> {
    fn build(self) -> Result<MaterializedCube, CubeStoreError> {
        let mut stats = BuildStats::default();

        // The observations the SPARQL backend sees: typed `qb:Observation`
        // AND linked to the dataset. `qb::load_observations` only requires
        // the `qb:dataSet` link, so intersect with the typed set.
        let typed: BTreeSet<Term> = self
            .endpoint
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 SELECT ?o WHERE {{ ?o a qb:Observation ; qb:dataSet <{}> }}",
                self.schema.dataset.as_str()
            ))?
            .rows
            .iter()
            .filter_map(|r| r.first().cloned().flatten())
            .collect();

        let structure = qb::load_dataset(self.endpoint, &self.schema.dataset)?.structure;
        let observations =
            qb::load_observations(self.endpoint, &self.schema.dataset, &structure, None)?;
        stats.observations_seen = observations.len();

        // Per-dimension bottom levels (the level IRI doubles as the
        // observation property, exactly as the SPARQL translator assumes).
        let mut bottoms: Vec<Iri> = Vec::with_capacity(self.schema.dimensions.len());
        for dimension in &self.schema.dimensions {
            let bottom = self
                .schema
                .bottom_level_of_dimension(&dimension.iri)
                .ok_or_else(|| {
                    CubeStoreError::Build(format!(
                        "dimension <{}> has no bottom level",
                        dimension.iri.as_str()
                    ))
                })?;
            bottoms.push(bottom);
        }

        // Fact columns. A row is accepted only if the observation is typed
        // and carries a literal value for every measure (the SPARQL
        // pattern's inner joins enforce the same).
        let mut dictionaries: Vec<Dictionary> =
            vec![Dictionary::new(); self.schema.dimensions.len()];
        let mut codes: Vec<Vec<MemberId>> = vec![Vec::new(); self.schema.dimensions.len()];
        let mut measure_data: Vec<Option<MeasureVector>> = vec![None; self.schema.measures.len()];
        let mut row_count = 0usize;
        let mut observation_rows: HashMap<Term, usize> = HashMap::new();
        let mut dropped_observations: BTreeSet<Term> = BTreeSet::new();
        let mut multivalued_observations: BTreeSet<Term> = BTreeSet::new();
        for observation in &observations {
            if !typed.contains(&observation.node) {
                stats.rows_dropped += 1;
                dropped_observations.insert(observation.node.clone());
                continue;
            }
            let mut literals = Vec::with_capacity(self.schema.measures.len());
            for measure in &self.schema.measures {
                match observation.measure(&measure.property).and_then(Term::as_literal) {
                    Some(literal) => literals.push(literal),
                    None => break,
                }
            }
            if literals.len() != self.schema.measures.len() {
                stats.rows_dropped += 1;
                dropped_observations.insert(observation.node.clone());
                continue;
            }
            for (index, literal) in literals.into_iter().enumerate() {
                let vector = match &mut measure_data[index] {
                    Some(v) => v,
                    slot => slot.insert(MeasureVector::for_literal(literal)?),
                };
                vector.push(literal)?;
            }
            for (index, bottom) in bottoms.iter().enumerate() {
                let code = match observation.dimension(bottom) {
                    Some(member) => dictionaries[index].encode(member),
                    None => NO_MEMBER,
                };
                codes[index].push(code);
            }
            if !observation.multivalued.is_empty() {
                multivalued_observations.insert(observation.node.clone());
            }
            observation_rows.insert(observation.node.clone(), row_count);
            row_count += 1;
        }
        stats.rows = row_count;

        let dimensions: Vec<DimensionColumn> = self
            .schema
            .dimensions
            .iter()
            .zip(bottoms.iter())
            .zip(codes.into_iter().zip(dictionaries))
            .map(|((dimension, bottom), (codes, dictionary))| {
                DimensionColumn::new(dimension.iri.clone(), bottom.clone(), codes, dictionary)
            })
            .collect();

        let measures: Vec<MeasureColumn> = self
            .schema
            .measures
            .iter()
            .zip(measure_data)
            .map(|(spec, data)| MeasureColumn {
                property: spec.property.clone(),
                aggregate: spec.aggregate,
                // No accepted row: an empty integer vector keeps the cube
                // usable (every query returns zero cells).
                data: data.unwrap_or(MeasureVector::Integer(crate::cowvec::CowVec::new())),
            })
            .collect();

        // Display labels, read once and shared by every level index (the
        // columnar Exploration paths serve member labels from here instead
        // of one SPARQL lookup per member).
        let label_pairs: Vec<(Term, Term)> = self
            .endpoint
            .select(
                "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
                 SELECT ?m ?v WHERE { ?m rdfs:label ?v } ORDER BY ?m ?v",
            )?
            .rows
            .iter()
            .filter_map(|r| {
                match (r.first().cloned().flatten(), r.get(1).cloned().flatten()) {
                    (Some(m), Some(v)) => Some((m, v)),
                    _ => None,
                }
            })
            .collect();
        let dataset_node = Term::Iri(self.schema.dataset.clone());
        let dataset_label = label_pairs
            .iter()
            .find(|(m, _)| m == &dataset_node)
            .and_then(|(_, v)| v.as_literal())
            .map(|l| l.lexical().to_string());

        // Level indexes: declared members + the attribute values dices read
        // + the display labels exploration reads.
        let mut levels: BTreeMap<Iri, LevelIndex> = BTreeMap::new();
        for dimension in &self.schema.dimensions {
            for level in dimension.levels() {
                if levels.contains_key(level) {
                    continue;
                }
                let mut dictionary = Dictionary::new();
                for member in qb4olap::members_of_level(self.endpoint, level)? {
                    dictionary.encode(&member);
                }
                let mut index = LevelIndex::new(level.clone(), dictionary);
                for attribute in self.schema.level_attributes(level) {
                    let pairs: Vec<(Term, Term)> = self
                        .endpoint
                        .select(&format!(
                            "SELECT ?m ?v WHERE {{ ?m <{}> ?v }} ORDER BY ?m ?v",
                            attribute.iri.as_str()
                        ))?
                        .rows
                        .iter()
                        .filter_map(|r| {
                            match (r.first().cloned().flatten(), r.get(1).cloned().flatten()) {
                                (Some(m), Some(v)) => Some((m, v)),
                                _ => None,
                            }
                        })
                        .collect();
                    index.set_attribute(attribute.iri.clone(), &pairs);
                }
                if !index.has_attribute(&rdf::vocab::rdfs::label()) {
                    index.set_attribute(rdf::vocab::rdfs::label(), &label_pairs);
                }
                levels.insert(level.clone(), index);
            }
        }
        stats.levels = levels.len();

        // Member-level `skos:broader` adjacency, read once and retained on
        // the cube (incremental maintenance and exploration replay it).
        let broader_rows = self.endpoint.select(
            "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
             SELECT ?c ?p WHERE { ?c skos:broader ?p } ORDER BY ?c ?p",
        )?;
        let mut broader: BTreeMap<Term, Vec<Term>> = BTreeMap::new();
        for row in &broader_rows.rows {
            if let (Some(child), Some(parent)) =
                (row.first().cloned().flatten(), row.get(1).cloned().flatten())
            {
                broader.entry(child).or_default().push(parent);
                stats.broader_links += 1;
            }
        }

        // Roll-up maps: for every level reachable upward from the bottom,
        // walk the broader links for exactly the path length the hierarchy
        // declares and anchor the result at the target level's members —
        // the same navigation the generated SPARQL performs. Path *counts*
        // are tracked, not just reachable members: the SPARQL join counts
        // an observation once per distinct broader path, so a member with
        // several paths (even to a single ancestor) is marked ambiguous
        // and refused at execution time rather than silently undercounted.
        let mut rollups: BTreeMap<(Iri, Iri), RollupMap> = BTreeMap::new();
        for (dimension, column) in self.schema.dimensions.iter().zip(&dimensions) {
            let bottom = &column.bottom_level;
            let bottom_index = levels.get(bottom).expect("all levels indexed");
            let identity: Vec<MemberId> = column
                .dictionary
                .iter()
                .map(|(_, term)| bottom_index.dictionary.id(term).unwrap_or(NO_MEMBER))
                .collect();
            rollups.insert(
                (dimension.iri.clone(), bottom.clone()),
                RollupMap::new(dimension.iri.clone(), bottom.clone(), identity),
            );

            for target in dimension.ancestor_levels(bottom) {
                let steps = match dimension.rollup_path(bottom, &target) {
                    Some((_, steps)) => steps.len(),
                    None => continue,
                };
                let target_index = levels.get(&target).expect("all levels indexed");
                let map: Vec<MemberId> = column
                    .dictionary
                    .iter()
                    .map(|(_, term)| resolve_rollup_target(term, steps, &broader, target_index))
                    .collect();
                rollups.insert(
                    (dimension.iri.clone(), target.clone()),
                    RollupMap::new(dimension.iri.clone(), target, map),
                );
            }
        }
        stats.rollup_maps = rollups.len();

        let zones = ZoneMaps::build(&dimensions, &measures, row_count);

        Ok(MaterializedCube {
            schema: Arc::new(self.schema.clone()),
            row_count,
            dimensions,
            measures,
            levels,
            rollups,
            observations: ObservationIndex::from_map(observation_rows),
            dropped_observations: Arc::new(dropped_observations),
            multivalued_observations: Arc::new(multivalued_observations),
            broader: Arc::new(broader),
            dataset_label,
            tombstones: Tombstones::new(),
            zones,
            stats,
        })
    }
}
