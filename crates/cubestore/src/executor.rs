//! The vectorized executor: runs a simplified OLAP pipeline
//! (slice → dice → roll-up → aggregate) directly over the columns of a
//! [`MaterializedCube`], with no SPARQL round-trip.
//!
//! The executor is written to agree **cell-for-cell** with the SPARQL
//! backend of the querying module: member coordinates come from the same
//! `qb4o:memberOf`-anchored navigation (precomputed into roll-up maps),
//! attribute dices keep the generated query's inner-join semantics (a
//! member with no attribute value is dropped even under `OR`), comparisons
//! reuse [`sparql::compare_terms`], and aggregate values are accumulated
//! through the same order-independent [`sparql::NumericSum`] the SPARQL
//! engine uses (integers exactly in `i128`, floats through a compensated
//! two-sum expansion), with identical typing rules (integer sums stay
//! integers, averages are decimals, MIN/MAX return input terms).
//!
//! Because the sums are order-independent, the scan may be chunked across
//! any number of worker threads — and the delta path may append rows in an
//! order a rebuild would not produce — without moving any aggregate by even
//! an ulp.
//!
//! The unit of both parallelism and pruning is the sealed
//! [`SEGMENT_LEN`]-row column segment: before any worker spawns, the scan
//! classifies every segment against the cube's [`ZoneMaps`] (and the
//! tombstone bitmap's per-segment dead counts), skipping segments that are
//! provably irrelevant to the query or fully dead, and the surviving
//! segments *are* the work queue — workers pull whole segments, so stats
//! flushes and compensated-sum partials align with segment boundaries and
//! the result is bit-identical to the unpruned scan at any worker count
//! (`QB2OLAP_NO_PRUNE=1` force-disables pruning for differential runs).

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use obs::{Counter, ExecutionProfile};
use qb4olap::AggregateFunction;
use rdf::{Iri, Literal, Term};
use sparql::ast::CmpOp;
use sparql::numeric::{float_max, float_min};
use sparql::compare_terms;

use crate::build::MaterializedCube;
use crate::columns::{DimensionColumn, MeasureColumn, MeasureValue, MeasureVector};
use crate::cowvec::SEGMENT_LEN;
use crate::dictionary::{MemberId, AMBIGUOUS_MEMBER, NO_MEMBER};
use crate::error::CubeStoreError;
use crate::hierarchy::{LevelIndex, RollupMap};
use crate::tombstone::Tombstones;
use crate::zonemap::ZoneMaps;

/// How a dice comparison reads the attribute value, mirroring the two
/// shapes the QL → SPARQL translator emits.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberPredicate {
    /// `STR(?attr) <op> "value"` — string comparison on the lexical form.
    Str {
        /// Comparison operator.
        op: CmpOp,
        /// The string constant.
        value: String,
    },
    /// `?attr <op> constant` — direct term comparison.
    Constant {
        /// Comparison operator.
        op: CmpOp,
        /// The constant term.
        value: Term,
    },
}

/// A dice condition over level-attribute values.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberFilter {
    /// One comparison on an attribute of a level kept in the result.
    Compare {
        /// The dimension the attribute's level belongs to.
        dimension: Iri,
        /// The level carrying the attribute (must be the dimension's level
        /// in the result).
        level: Iri,
        /// The attribute.
        attribute: Iri,
        /// The comparison.
        predicate: MemberPredicate,
    },
    /// Conjunction.
    And(Box<MemberFilter>, Box<MemberFilter>),
    /// Disjunction.
    Or(Box<MemberFilter>, Box<MemberFilter>),
}

/// A dice condition over aggregated measure values (`HAVING` semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureFilter {
    /// One comparison on an aggregated measure.
    Compare {
        /// The measure property.
        measure: Iri,
        /// Comparison operator.
        op: CmpOp,
        /// The constant term the aggregate is compared against.
        value: Term,
    },
    /// Conjunction.
    And(Box<MeasureFilter>, Box<MeasureFilter>),
    /// Disjunction.
    Or(Box<MeasureFilter>, Box<MeasureFilter>),
}

/// A simplified OLAP pipeline in columnar terms: which dimensions are
/// sliced away, where the kept dimensions roll up to, and the dice filters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CubeQuery {
    /// Dimensions sliced out of the result.
    pub slices: Vec<Iri>,
    /// Kept dimensions whose result level differs from their bottom level.
    pub rollups: BTreeMap<Iri, Iri>,
    /// Dice conditions on level attributes (applied before aggregation).
    pub member_filters: Vec<MemberFilter>,
    /// Dice conditions on aggregated measures (applied after aggregation).
    pub measure_filters: Vec<MeasureFilter>,
}

/// One axis of a query result: a kept dimension at its result level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSpec {
    /// The dimension.
    pub dimension: Iri,
    /// The level the dimension was aggregated to.
    pub level: Iri,
}

/// One cell of a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputCell {
    /// The member of each axis, in axis order.
    pub coordinates: Vec<Term>,
    /// The aggregated value of each measure, in measure order.
    pub values: Vec<Option<Term>>,
}

/// The result of one columnar execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The axes, in schema dimension order.
    pub axes: Vec<AxisSpec>,
    /// The measure properties, in schema order.
    pub measures: Vec<Iri>,
    /// The cells, sorted canonically by coordinates.
    pub cells: Vec<OutputCell>,
}

/// Row count below which the scan stays single-threaded (spawning workers
/// costs more than it saves on small cubes).
const PARALLEL_SCAN_THRESHOLD: usize = 16_384;

/// Totals observed by one columnar execution, summed exactly across the
/// scan's worker chunks (each worker accumulates locally and flushes its
/// chunk totals into shared atomic counters once, so any thread count and
/// any chunk partitioning produce the same numbers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Physical rows visited (live + tombstoned).
    pub rows_scanned: u64,
    /// Rows skipped because the tombstone bitmap marked them dead.
    pub tombstones_skipped: u64,
    /// Live rows dropped because an axis had no member or no roll-up
    /// target for the row's bottom member (ragged hierarchy).
    pub rows_no_member: u64,
    /// Live rows dropped by a member (dice) filter.
    pub rows_filtered: u64,
    /// Rows that reached a measure accumulator.
    pub rows_aggregated: u64,
    /// Bottom-code → target-member roll-up map lookups performed.
    pub rollup_lookups: u64,
    /// Member-id → term dictionary lookups performed while building the
    /// output coordinates.
    pub dictionary_lookups: u64,
    /// Worker chunks the scan was split into.
    pub scan_chunks: u64,
    /// Column segments the cube's physical row space spans.
    pub segments_total: u64,
    /// Segments skipped because the zone maps proved no row in them could
    /// reach an accumulator.
    pub segments_pruned: u64,
    /// Segments skipped because every one of their rows was tombstoned.
    pub segments_dead: u64,
}

impl ScanStats {
    /// Adds the stats to a metrics registry under `cubestore.scan.*`.
    pub fn record_into(&self, metrics: &obs::MetricsRegistry) {
        metrics.counter("cubestore.scan.runs").inc();
        metrics.counter("cubestore.scan.rows").add(self.rows_scanned);
        metrics
            .counter("cubestore.scan.tombstones_skipped")
            .add(self.tombstones_skipped);
        metrics
            .counter("cubestore.scan.rows_no_member")
            .add(self.rows_no_member);
        metrics
            .counter("cubestore.scan.rows_filtered")
            .add(self.rows_filtered);
        metrics
            .counter("cubestore.scan.rows_aggregated")
            .add(self.rows_aggregated);
        metrics
            .counter("cubestore.scan.rollup_lookups")
            .add(self.rollup_lookups);
        metrics
            .counter("cubestore.scan.dictionary_lookups")
            .add(self.dictionary_lookups);
        metrics.counter("cubestore.scan.chunks").add(self.scan_chunks);
        metrics
            .counter("cubestore.scan.segments_total")
            .add(self.segments_total);
        metrics
            .counter("cubestore.scan.segments_pruned")
            .add(self.segments_pruned);
        metrics
            .counter("cubestore.scan.segments_dead")
            .add(self.segments_dead);
    }

    /// Copies the stats into an execution profile's counter map.
    pub fn fill_profile(&self, profile: &mut ExecutionProfile) {
        profile.add_counter("rows_scanned", self.rows_scanned);
        profile.add_counter("tombstones_skipped", self.tombstones_skipped);
        profile.add_counter("rows_no_member", self.rows_no_member);
        profile.add_counter("rows_filtered", self.rows_filtered);
        profile.add_counter("rows_aggregated", self.rows_aggregated);
        profile.add_counter("rollup_lookups", self.rollup_lookups);
        profile.add_counter("dictionary_lookups", self.dictionary_lookups);
        profile.add_counter("scan_chunks", self.scan_chunks);
        profile.add_counter("segments_total", self.segments_total);
        profile.add_counter("segments_pruned", self.segments_pruned);
        profile.add_counter("segments_dead", self.segments_dead);
    }
}

/// The scan-side totals as shared atomic counters: one instance is shared
/// by every worker of one scan, each flushing its local chunk totals with
/// a single `add` per field — the adds are atomic, so concurrent flushes
/// from any number of chunks sum exactly.
#[derive(Debug, Default)]
struct SharedScanStats {
    rows_scanned: Counter,
    tombstones_skipped: Counter,
    rows_no_member: Counter,
    rows_filtered: Counter,
    rows_aggregated: Counter,
    rollup_lookups: Counter,
    scan_chunks: Counter,
}

impl SharedScanStats {
    fn flush(&self, local: &ScanStats) {
        self.rows_scanned.add(local.rows_scanned);
        self.tombstones_skipped.add(local.tombstones_skipped);
        self.rows_no_member.add(local.rows_no_member);
        self.rows_filtered.add(local.rows_filtered);
        self.rows_aggregated.add(local.rows_aggregated);
        self.rollup_lookups.add(local.rollup_lookups);
        self.scan_chunks.add(local.scan_chunks);
    }

    fn snapshot(&self) -> ScanStats {
        ScanStats {
            rows_scanned: self.rows_scanned.get(),
            tombstones_skipped: self.tombstones_skipped.get(),
            rows_no_member: self.rows_no_member.get(),
            rows_filtered: self.rows_filtered.get(),
            rows_aggregated: self.rows_aggregated.get(),
            rollup_lookups: self.rollup_lookups.get(),
            dictionary_lookups: 0,
            scan_chunks: self.scan_chunks.get(),
            // Segment classification happens before any worker spawns;
            // `scan` fills these from its own (single-threaded) counts.
            segments_total: 0,
            segments_pruned: 0,
            segments_dead: 0,
        }
    }
}

/// Executes a columnar query against a materialized cube.
///
/// Large cubes are scanned on multiple threads (the surviving segments
/// distributed over the workers, partial groups merged at the end); the
/// thread count comes from [`std::thread::available_parallelism`]. Every measure type
/// parallelizes: the accumulators are order-independent
/// ([`sparql::NumericSum`] — exact for integers, correctly rounded
/// compensated summation for floats), so the bit-compatibility guarantee
/// holds on any thread count and any chunk partitioning.
pub fn execute(cube: &MaterializedCube, query: &CubeQuery) -> Result<QueryOutput, CubeStoreError> {
    execute_with_threads(cube, query, auto_scan_threads(cube))
}

/// [`execute`] against a pinned [`crate::overlay::CubeSnapshot`]: runs over
/// the snapshot's merged cube (base + overlay), which shares every sealed
/// segment with the base, so overlay rows go through exactly the same
/// compiled filters, roll-up maps, zone-map pruning and compensated-sum
/// partials as folded rows — results are bit-identical to executing a
/// fully-folded cube at the snapshot's epoch. The caller holds the
/// snapshot by value; no catalog lock is touched during execution.
pub fn execute_snapshot(
    snapshot: &crate::overlay::CubeSnapshot,
    query: &CubeQuery,
) -> Result<QueryOutput, CubeStoreError> {
    execute(snapshot.cube(), query)
}

/// [`execute_snapshot`] with per-phase timings — the snapshot analogue of
/// [`execute_traced`]. The QL layer appends the snapshot's `OVERLAY` plan
/// line to the returned profile so overlay serving shows up in `explain`.
pub fn execute_snapshot_traced(
    snapshot: &crate::overlay::CubeSnapshot,
    query: &CubeQuery,
) -> Result<(QueryOutput, ExecutionProfile, ScanStats), CubeStoreError> {
    execute_traced(snapshot.cube(), query)
}

/// The scan thread count [`execute`] picks for a cube: all available
/// cores once the cube is large enough to amortize spawning workers,
/// one below that. "Large enough" counts **live** rows: a
/// heavily-tombstoned cube near the compaction threshold does far less
/// work than its physical row count suggests, and spawning a full worker
/// fleet for it costs more than the scan saves.
pub fn auto_scan_threads(cube: &MaterializedCube) -> usize {
    if cube.live_row_count() >= PARALLEL_SCAN_THRESHOLD {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        1
    }
}

/// True unless the `QB2OLAP_NO_PRUNE` environment variable force-disables
/// zone-map segment pruning (any non-empty value other than `0`). The
/// knob exists for differential runs: pruned and unpruned executions must
/// produce bit-identical outputs, and CI pins that by running the same
/// workloads both ways.
pub fn pruning_enabled() -> bool {
    !obs::env::kill_switch("QB2OLAP_NO_PRUNE")
}

/// Per-execution knobs: the scan worker count and whether zone-map
/// segment pruning runs.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Scan worker threads (1 = the sequential scan). The effective count
    /// never exceeds the number of surviving segments.
    pub threads: usize,
    /// Whether zone maps may prune segments before the scan. Pruning never
    /// changes results or error behavior — disabling it (or setting
    /// `QB2OLAP_NO_PRUNE`) only makes the scan visit every segment.
    pub prune: bool,
}

impl ExecOptions {
    /// What [`execute`] uses: automatic thread count for the cube, pruning
    /// unless [`pruning_enabled`] says otherwise.
    pub fn auto(cube: &MaterializedCube) -> Self {
        ExecOptions {
            threads: auto_scan_threads(cube),
            prune: pruning_enabled(),
        }
    }

    /// An explicit thread count, pruning from the environment.
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            prune: pruning_enabled(),
        }
    }
}

/// [`execute`] with an explicit scan thread count (1 = the sequential
/// scan). Exposed so benchmarks can compare single- and multi-threaded
/// medians directly; `execute` picks the count automatically.
pub fn execute_with_threads(
    cube: &MaterializedCube,
    query: &CubeQuery,
    threads: usize,
) -> Result<QueryOutput, CubeStoreError> {
    execute_with_stats(cube, query, threads).map(|(output, _)| output)
}

/// [`execute_with_threads`] also returning the scan-side totals. The
/// stats are accumulated per worker chunk and flushed into shared atomic
/// counters, so they are exact on any thread count.
pub fn execute_with_stats(
    cube: &MaterializedCube,
    query: &CubeQuery,
    threads: usize,
) -> Result<(QueryOutput, ScanStats), CubeStoreError> {
    execute_with_options(cube, query, ExecOptions::with_threads(threads))
}

/// The fully-parameterized entry point: explicit thread count *and*
/// explicit pruning switch (the differential gate runs the same query
/// with `prune` on and off and asserts bit-identical outputs).
pub fn execute_with_options(
    cube: &MaterializedCube,
    query: &CubeQuery,
    options: ExecOptions,
) -> Result<(QueryOutput, ScanStats), CubeStoreError> {
    let _execute_span = obs::span("cubestore.execute");
    let axes = plan_axes(cube, query)?;
    let compiled_filters = compile_filters(query, &axes)?;
    let measures = cube.measure_columns();
    let (groups, mut stats) = {
        let _scan_span = obs::span("cubestore.scan");
        scan(cube, &axes, &compiled_filters, measures, options)?
    };
    let cells = aggregate_cells(groups, &axes, measures, query, &mut stats)?;
    Ok((assemble(&axes, measures, cells), stats))
}

/// [`execute`] with per-phase timings: returns the query output together
/// with an [`ExecutionProfile`] naming every execution phase (plan,
/// filter compilation, scan, aggregation) with wall-clock durations, row
/// counts and the scan counters. This is the columnar half of the QL
/// layer's `explain`.
pub fn execute_traced(
    cube: &MaterializedCube,
    query: &CubeQuery,
) -> Result<(QueryOutput, ExecutionProfile, ScanStats), CubeStoreError> {
    execute_traced_with_options(cube, query, ExecOptions::auto(cube))
}

/// [`execute_traced`] with an explicit scan thread count.
pub fn execute_traced_with_threads(
    cube: &MaterializedCube,
    query: &CubeQuery,
    threads: usize,
) -> Result<(QueryOutput, ExecutionProfile, ScanStats), CubeStoreError> {
    execute_traced_with_options(cube, query, ExecOptions::with_threads(threads))
}

/// [`execute_traced`] with explicit [`ExecOptions`].
pub fn execute_traced_with_options(
    cube: &MaterializedCube,
    query: &CubeQuery,
    options: ExecOptions,
) -> Result<(QueryOutput, ExecutionProfile, ScanStats), CubeStoreError> {
    let _execute_span = obs::span("cubestore.execute");
    let total_started = Instant::now();
    let mut profile = ExecutionProfile::new("columnar");
    for slice in &query.slices {
        profile.push_plan(format!("SLICE dimension=<{}>", slice.as_str()));
    }

    let started = Instant::now();
    let axes = plan_axes(cube, query)?;
    for axis in &axes {
        profile.push_plan(format!(
            "AXIS dimension=<{}> level=<{}>",
            axis.column.dimension.as_str(),
            axis.rollup.target_level.as_str()
        ));
    }
    for _ in &query.member_filters {
        profile.push_plan("DICE member-filter".to_string());
    }
    for _ in &query.measure_filters {
        profile.push_plan("DICE measure-filter (HAVING)".to_string());
    }
    profile.push_step(
        "plan-axes",
        started.elapsed(),
        Some(axes.len() as u64),
        "",
    );

    let started = Instant::now();
    let compiled_filters = compile_filters(query, &axes)?;
    profile.push_step(
        "compile-filters",
        started.elapsed(),
        Some(compiled_filters.len() as u64),
        "",
    );

    let measures = cube.measure_columns();
    let started = Instant::now();
    let (groups, mut stats) = {
        let _scan_span = obs::span("cubestore.scan");
        scan(cube, &axes, &compiled_filters, measures, options)?
    };
    profile.push_plan(format!(
        "SEGMENTS total={} pruned={} dead={}",
        stats.segments_total, stats.segments_pruned, stats.segments_dead
    ));
    profile.push_step(
        "scan",
        started.elapsed(),
        Some(stats.rows_scanned),
        format!(
            "threads={} chunks={} segments_pruned={}",
            options.threads, stats.scan_chunks, stats.segments_pruned
        ),
    );

    let started = Instant::now();
    let cells = aggregate_cells(groups, &axes, measures, query, &mut stats)?;
    profile.push_step(
        "aggregate",
        started.elapsed(),
        Some(cells.len() as u64),
        "HAVING + sort",
    );

    stats.fill_profile(&mut profile);
    profile.total = total_started.elapsed();
    Ok((assemble(&axes, measures, cells), profile, stats))
}

/// Plans the kept axes in schema order (the same order the SPARQL
/// translator plans them in).
fn plan_axes<'c>(
    cube: &'c MaterializedCube,
    query: &CubeQuery,
) -> Result<Vec<AxisPlan<'c>>, CubeStoreError> {
    for slice in &query.slices {
        if cube.dimension_column(slice).is_none() {
            return Err(CubeStoreError::Query(format!(
                "cannot slice unknown dimension <{}>",
                slice.as_str()
            )));
        }
    }
    let mut axes: Vec<AxisPlan> = Vec::new();
    for (dim_index, dimension) in cube.schema().dimensions.iter().enumerate() {
        if query.slices.contains(&dimension.iri) {
            continue;
        }
        let column = cube
            .dimension_column(&dimension.iri)
            .expect("every schema dimension has a column");
        let target = query
            .rollups
            .get(&dimension.iri)
            .unwrap_or(&column.bottom_level);
        let rollup = cube.rollup(&dimension.iri, target).ok_or_else(|| {
            CubeStoreError::Query(format!(
                "no roll-up map from the bottom of <{}> to level <{}>",
                dimension.iri.as_str(),
                target.as_str()
            ))
        })?;
        let level_index = cube.level(target).ok_or_else(|| {
            CubeStoreError::Query(format!("level <{}> is not indexed", target.as_str()))
        })?;
        axes.push(AxisPlan {
            column,
            rollup,
            level_index,
            dim_index,
        });
    }
    Ok(axes)
}

/// Compiles the member filters into per-member truth tables.
fn compile_filters(
    query: &CubeQuery,
    axes: &[AxisPlan<'_>],
) -> Result<Vec<CompiledFilter>, CubeStoreError> {
    query
        .member_filters
        .iter()
        .map(|filter| compile_filter(filter, axes))
        .collect()
}

/// Aggregates each scanned group, applies the measure filters (HAVING),
/// resolves the coordinate terms and sorts the cells canonically.
fn aggregate_cells(
    groups: ScanGroups,
    axes: &[AxisPlan<'_>],
    measures: &[MeasureColumn],
    query: &CubeQuery,
    stats: &mut ScanStats,
) -> Result<Vec<OutputCell>, CubeStoreError> {
    let mut cells: Vec<OutputCell> = Vec::with_capacity(groups.len());
    'groups: for (key, accs) in groups {
        let values: Vec<Option<Term>> = accs
            .iter()
            .zip(measures)
            .map(|(acc, measure)| Some(acc.aggregate(measure)))
            .collect();
        for filter in &query.measure_filters {
            let verdict = eval_measure_filter(filter, measures, &values)?;
            if verdict != Some(true) {
                continue 'groups;
            }
        }
        stats.dictionary_lookups += key.len() as u64;
        let coordinates = key
            .iter()
            .zip(axes)
            .map(|(&code, axis)| axis.level_index.dictionary.term(code).clone())
            .collect();
        cells.push(OutputCell {
            coordinates,
            values,
        });
    }
    cells.sort_by(|a, b| a.coordinates.cmp(&b.coordinates));
    Ok(cells)
}

/// Assembles the output envelope around the sorted cells.
fn assemble(
    axes: &[AxisPlan<'_>],
    measures: &[MeasureColumn],
    cells: Vec<OutputCell>,
) -> QueryOutput {
    QueryOutput {
        axes: axes
            .iter()
            .map(|axis| AxisSpec {
                dimension: axis.column.dimension.clone(),
                level: axis.rollup.target_level.clone(),
            })
            .collect(),
        measures: measures.iter().map(|m| m.property.clone()).collect(),
        cells,
    }
}

struct AxisPlan<'c> {
    column: &'c DimensionColumn,
    rollup: &'c RollupMap,
    level_index: &'c LevelIndex,
    /// The dimension's position in schema (= column = zone-map) order,
    /// for zone lookups during segment classification.
    dim_index: usize,
}

/// Partial aggregation state: coordinate key → one accumulator per measure.
type ScanGroups = HashMap<Vec<MemberId>, Vec<MeasureAcc>>;

/// One surviving segment of the physical row space — the scan's unit of
/// work. `dead` caches the segment's tombstone count so workers elide the
/// per-row liveness check in fully-live segments.
struct SegmentSpan {
    start: usize,
    end: usize,
    dead: usize,
}

/// True if the zone maps prove that skipping `segment` entirely cannot
/// change the scan's result *or* its error behavior.
///
/// The proof walks the axes in scan order; for each axis the segment's
/// zone set (the exact distinct bottom codes present) is lifted through
/// the axis's roll-up map:
///
/// * a code lifting to [`AMBIGUOUS_MEMBER`] makes the segment unprunable
///   immediately — the unpruned scan may reach that row and refuse the
///   whole query, and pruning must preserve that refusal. Later axes and
///   filters are not consulted: the unpruned scan would error *before*
///   them;
/// * if no code of the zone lifts to a live member, every row of the
///   segment drops at (or before) this axis — and since no earlier axis
///   saw an ambiguous code, the unpruned scan drops them silently too, so
///   the segment prunes.
///
/// Only when every axis passes clean are the member filters consulted: a
/// filter that no combination of the lifted per-axis possibilities can
/// satisfy prunes the segment (see [`filter_possible`]).
fn segment_prunable(
    zones: &ZoneMaps,
    segment: usize,
    axes: &[AxisPlan<'_>],
    filters: &[CompiledFilter],
) -> bool {
    let mut lifted: Vec<Vec<MemberId>> = Vec::with_capacity(axes.len());
    for axis in axes {
        let Some(codes) = zones.dimension_codes(axis.dim_index, segment) else {
            // Zone maps out of sync with the columns: never prune.
            return false;
        };
        let mut live: Vec<MemberId> = Vec::new();
        for code in codes {
            if code == NO_MEMBER {
                continue;
            }
            let target = axis.rollup.target(code);
            if target == AMBIGUOUS_MEMBER {
                return false;
            }
            if target != NO_MEMBER {
                live.push(target);
            }
        }
        if live.is_empty() {
            return true;
        }
        lifted.push(live);
    }
    filters.iter().any(|filter| !filter_possible(filter, &lifted))
}

/// True if *some* coordinate drawn from the per-axis lifted possibilities
/// could satisfy the filter. The check over-approximates per axis (an
/// `And` possible on each side separately may not be jointly satisfiable
/// by one row) — the sound direction, since a segment is pruned only when
/// the filter is im*possible*. Any row the unpruned scan keeps has
/// `joins && eval == Some(true)`, and its per-axis members are all in
/// `lifted`, so a kept row witnesses possibility for every filter.
fn filter_possible(filter: &CompiledFilter, lifted: &[Vec<MemberId>]) -> bool {
    match filter {
        CompiledFilter::Compare { axis, table } => lifted[*axis].iter().any(|&member| {
            table.get(member as usize).copied().flatten().flatten() == Some(true)
        }),
        CompiledFilter::And(a, b) => filter_possible(a, lifted) && filter_possible(b, lifted),
        CompiledFilter::Or(a, b) => filter_possible(a, lifted) || filter_possible(b, lifted),
    }
}

/// Scans the fact rows: classifies every column segment against the zone
/// maps and the per-segment tombstone counts, then distributes the
/// *surviving* segments over the workers. Pruning happens before any
/// thread spawns, workers pull whole segments, and accumulation is
/// order-independent for every measure type (compensated float sums
/// included), so results are bit-identical to the unpruned scan at any
/// worker count.
fn scan(
    cube: &MaterializedCube,
    axes: &[AxisPlan<'_>],
    filters: &[CompiledFilter],
    measures: &[MeasureColumn],
    options: ExecOptions,
) -> Result<(ScanGroups, ScanStats), CubeStoreError> {
    let rows = cube.row_count();
    let tombstones = cube.tombstones();
    let zones = cube.zone_maps();

    let segments_total = rows.div_ceil(SEGMENT_LEN);
    let mut segments_dead = 0u64;
    let mut segments_pruned = 0u64;
    let mut spans: Vec<SegmentSpan> = Vec::with_capacity(segments_total);
    for segment in 0..segments_total {
        let start = segment * SEGMENT_LEN;
        let end = ((segment + 1) * SEGMENT_LEN).min(rows);
        let dead = tombstones.dead_in_segment(segment).min(end - start);
        if dead == end - start {
            segments_dead += 1;
            continue;
        }
        if options.prune && segment_prunable(zones, segment, axes, filters) {
            segments_pruned += 1;
            continue;
        }
        spans.push(SegmentSpan { start, end, dead });
    }

    let shared = SharedScanStats::default();
    let workers = options.threads.max(1).min(spans.len().max(1));
    let groups = if workers <= 1 {
        scan_spans(axes, filters, measures, tombstones, &spans, &shared)?
    } else {
        let partials: Vec<Result<ScanGroups, CubeStoreError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        // Balanced contiguous slices of the surviving
                        // segments; never empty since workers <= spans.
                        let slice =
                            &spans[worker * spans.len() / workers..(worker + 1) * spans.len() / workers];
                        let shared = &shared;
                        scope.spawn(move || {
                            scan_spans(axes, filters, measures, tombstones, slice, shared)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("scan worker panicked"))
                    .collect()
            });
        let mut groups: ScanGroups = HashMap::new();
        for partial in partials {
            for (key, accs) in partial? {
                match groups.entry(key) {
                    std::collections::hash_map::Entry::Vacant(vacant) => {
                        vacant.insert(accs);
                    }
                    std::collections::hash_map::Entry::Occupied(mut occupied) => {
                        for (merged, acc) in occupied.get_mut().iter_mut().zip(&accs) {
                            merged.merge(acc);
                        }
                    }
                }
            }
        }
        groups
    };
    let mut stats = shared.snapshot();
    stats.segments_total = segments_total as u64;
    stats.segments_pruned = segments_pruned;
    stats.segments_dead = segments_dead;
    Ok((groups, stats))
}

/// The sequential scan over one worker's segment spans. Worker totals are
/// accumulated in plain locals and flushed into `shared` once at the end —
/// one atomic add per field, exact under concurrency — so the flush
/// boundaries align with segment boundaries no matter the worker count.
fn scan_spans(
    axes: &[AxisPlan<'_>],
    filters: &[CompiledFilter],
    measures: &[MeasureColumn],
    tombstones: &Tombstones,
    spans: &[SegmentSpan],
    shared: &SharedScanStats,
) -> Result<ScanGroups, CubeStoreError> {
    let mut groups: ScanGroups = HashMap::new();
    let mut local = ScanStats {
        scan_chunks: 1,
        ..ScanStats::default()
    };
    for span in spans {
        // The per-segment dead count lets a fully-live segment skip the
        // bitmap entirely even when other segments have tombstones.
        let check_tombstones = span.dead > 0;
        'rows: for row in span.start..span.end {
            local.rows_scanned += 1;
            if check_tombstones && tombstones.is_dead(row) {
                local.tombstones_skipped += 1;
                continue;
            }
            let mut key = Vec::with_capacity(axes.len());
            for axis in axes {
                let bottom = axis.column.code(row);
                if bottom == NO_MEMBER {
                    local.rows_no_member += 1;
                    continue 'rows;
                }
                local.rollup_lookups += 1;
                let target = axis.rollup.target(bottom);
                if target == NO_MEMBER {
                    local.rows_no_member += 1;
                    continue 'rows;
                }
                if target == AMBIGUOUS_MEMBER {
                    shared.flush(&local);
                    return Err(CubeStoreError::Unsupported(format!(
                        "member {} of dimension <{}> rolls up to several members of level <{}> \
                         (non-functional roll-up); use the SPARQL backend",
                        axis.column.dictionary.term(bottom),
                        axis.column.dimension.as_str(),
                        axis.rollup.target_level.as_str()
                    )));
                }
                key.push(target);
            }
            for filter in filters {
                if !filter.keeps(&key) {
                    local.rows_filtered += 1;
                    continue 'rows;
                }
            }
            local.rows_aggregated += 1;
            let accs = groups
                .entry(key)
                .or_insert_with(|| vec![MeasureAcc::default(); measures.len()]);
            for (acc, measure) in accs.iter_mut().zip(measures) {
                acc.update(&measure.data, row);
            }
        }
    }
    shared.flush(&local);
    Ok(groups)
}

/// One measure accumulator: everything the five QB4OLAP aggregate
/// functions need, updated in a single pass. SUM/AVG accumulate through
/// [`sparql::NumericSum`] — the same order-independent accumulator the
/// SPARQL engine's aggregates use — so chunk order, append order and
/// thread count cannot move the result by an ulp. MIN/MAX additionally
/// track integer-vector extremes as exact `i64`s (the `f64` view rounds
/// above 2⁵³).
#[derive(Debug, Clone)]
struct MeasureAcc {
    count: usize,
    sum: sparql::NumericSum,
    /// Exact extremes of an [`MeasureVector::Integer`] vector.
    min_int: i64,
    max_int: i64,
    /// Extremes of a float vector (every stored `f64` is one of the input
    /// values, so the reconstruction via `term_for` is exact).
    min: f64,
    max: f64,
}

impl Default for MeasureAcc {
    fn default() -> Self {
        MeasureAcc {
            count: 0,
            sum: sparql::NumericSum::new(),
            min_int: i64::MAX,
            max_int: i64::MIN,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl MeasureAcc {
    /// Folds another chunk's accumulator into this one (multi-threaded
    /// scan). Exact for every measure type.
    fn merge(&mut self, other: &MeasureAcc) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.min_int = self.min_int.min(other.min_int);
        self.max_int = self.max_int.max(other.max_int);
        self.min = float_min(self.min, other.min);
        self.max = float_max(self.max, other.max);
    }

    #[inline]
    fn update(&mut self, data: &MeasureVector, row: usize) {
        self.count += 1;
        // SUM/AVG inputs are routed exactly as the SPARQL engine routes
        // the corresponding literal (see `MeasureVector::numeric_at`).
        let routed = data.numeric_at(row);
        match routed {
            MeasureValue::Integer(value) => self.sum.add_integer(value),
            MeasureValue::Float(value) => self.sum.add_float(value),
        }
        // MIN/MAX compare within the vector's own value space (a float
        // vector's value may have routed integer for the sum above).
        match data {
            MeasureVector::Integer(_) => {
                if let MeasureValue::Integer(value) = routed {
                    self.min_int = self.min_int.min(value);
                    self.max_int = self.max_int.max(value);
                }
            }
            MeasureVector::Decimal(_) | MeasureVector::Double(_) => {
                let value = data.value(row);
                self.min = float_min(self.min, value);
                self.max = float_max(self.max, value);
            }
        }
    }

    /// The aggregate as a [`Term`], with exactly the typing rules of the
    /// SPARQL engine's aggregate evaluation.
    fn aggregate(&self, measure: &MeasureColumn) -> Term {
        match measure.aggregate {
            AggregateFunction::Count => Term::Literal(Literal::integer(self.count as i64)),
            AggregateFunction::Sum => self.sum.sum_term(),
            AggregateFunction::Avg => {
                Term::Literal(Literal::decimal(self.sum.value() / self.count as f64))
            }
            AggregateFunction::Min => match measure.data {
                MeasureVector::Integer(_) => Term::Literal(Literal::integer(self.min_int)),
                _ => measure.data.term_for(self.min),
            },
            AggregateFunction::Max => match measure.data {
                MeasureVector::Integer(_) => Term::Literal(Literal::integer(self.max_int)),
                _ => measure.data.term_for(self.max),
            },
        }
    }
}

/// A member filter with every comparison pre-evaluated into a truth table
/// over the member ids of its axis's result level.
enum CompiledFilter {
    /// `table[member]`: `None` = the member has no value for the attribute
    /// (the SPARQL join drops the row before the FILTER runs, even under
    /// `OR`); `Some(verdict)` = the comparison's three-valued outcome.
    Compare {
        axis: usize,
        table: Vec<Option<Option<bool>>>,
    },
    And(Box<CompiledFilter>, Box<CompiledFilter>),
    Or(Box<CompiledFilter>, Box<CompiledFilter>),
}

impl CompiledFilter {
    /// True if a row with the given axis coordinates survives the filter:
    /// all referenced attributes are present (join) and the condition
    /// evaluates to true (FILTER).
    fn keeps(&self, key: &[MemberId]) -> bool {
        self.joins(key) && self.eval(key) == Some(true)
    }

    fn joins(&self, key: &[MemberId]) -> bool {
        match self {
            CompiledFilter::Compare { axis, table } => table[key[*axis] as usize].is_some(),
            CompiledFilter::And(a, b) | CompiledFilter::Or(a, b) => a.joins(key) && b.joins(key),
        }
    }

    /// Three-valued evaluation matching the SPARQL engine's `&&` / `||`.
    fn eval(&self, key: &[MemberId]) -> Option<bool> {
        match self {
            CompiledFilter::Compare { axis, table } => table[key[*axis] as usize].flatten(),
            CompiledFilter::And(a, b) => match (a.eval(key), b.eval(key)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            CompiledFilter::Or(a, b) => match (a.eval(key), b.eval(key)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        }
    }
}

fn compile_filter(
    filter: &MemberFilter,
    axes: &[AxisPlan<'_>],
) -> Result<CompiledFilter, CubeStoreError> {
    match filter {
        MemberFilter::And(a, b) => Ok(CompiledFilter::And(
            Box::new(compile_filter(a, axes)?),
            Box::new(compile_filter(b, axes)?),
        )),
        MemberFilter::Or(a, b) => Ok(CompiledFilter::Or(
            Box::new(compile_filter(a, axes)?),
            Box::new(compile_filter(b, axes)?),
        )),
        MemberFilter::Compare {
            dimension,
            level,
            attribute,
            predicate,
        } => {
            let axis = axes
                .iter()
                .position(|a| &a.column.dimension == dimension && &a.rollup.target_level == level)
                .ok_or_else(|| {
                    CubeStoreError::Query(format!(
                        "the dice on dimension <{}> refers to level <{}>, which is not the \
                         level of that dimension in the result",
                        dimension.as_str(),
                        level.as_str()
                    ))
                })?;
            let index = axes[axis].level_index;
            let table = (0..index.member_count() as MemberId)
                .map(|member| {
                    index
                        .attribute_value(attribute, member)
                        .map(|value| eval_predicate(predicate, value))
                })
                .collect();
            Ok(CompiledFilter::Compare { axis, table })
        }
    }
}

/// One attribute comparison, with exactly the semantics of the generated
/// SPARQL: `Str` wraps the value like the `STR()` call the translator
/// emits, `Constant` compares the raw term.
fn eval_predicate(predicate: &MemberPredicate, value: &Term) -> Option<bool> {
    match predicate {
        MemberPredicate::Str { op, value: expected } => {
            let lexical = match value {
                Term::Iri(iri) => iri.as_str().to_string(),
                Term::Blank(b) => b.as_str().to_string(),
                Term::Literal(lit) => lit.lexical().to_string(),
            };
            compare_terms(
                &Term::Literal(Literal::string(lexical)),
                *op,
                &Term::Literal(Literal::string(expected)),
            )
        }
        MemberPredicate::Constant { op, value: expected } => compare_terms(value, *op, expected),
    }
}

/// HAVING evaluation: compares the already-computed aggregate terms.
fn eval_measure_filter(
    filter: &MeasureFilter,
    measures: &[MeasureColumn],
    values: &[Option<Term>],
) -> Result<Option<bool>, CubeStoreError> {
    match filter {
        MeasureFilter::And(a, b) => {
            let va = eval_measure_filter(a, measures, values)?;
            let vb = eval_measure_filter(b, measures, values)?;
            Ok(match (va, vb) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        MeasureFilter::Or(a, b) => {
            let va = eval_measure_filter(a, measures, values)?;
            let vb = eval_measure_filter(b, measures, values)?;
            Ok(match (va, vb) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        MeasureFilter::Compare { measure, op, value } => {
            let index = measures
                .iter()
                .position(|m| &m.property == measure)
                .ok_or_else(|| {
                    CubeStoreError::Query(format!("unknown measure <{}>", measure.as_str()))
                })?;
            Ok(values[index]
                .as_ref()
                .and_then(|aggregate| compare_terms(aggregate, *op, value)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use qb4olap::AggregateFunction;
    use rdf::StoreDelta;

    use crate::testutil::{fixture, iri, member, observation_triples};

    fn traced_fixture_cube(extra_rows: usize) -> MaterializedCube {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        for row in 0..extra_rows {
            sparql::Endpoint::insert_triples(
                &endpoint,
                &observation_triples(&format!("x{row}"), "c1", "m1", 1, 1),
            )
            .unwrap();
        }
        MaterializedCube::from_endpoint(&endpoint, &schema).unwrap()
    }

    #[test]
    fn chunked_scan_counters_sum_exactly_on_any_thread_count() {
        let cube = traced_fixture_cube(95); // 100 live rows
        let rollups = BTreeMap::from([(iri("dim/city"), iri("lv/country"))]);
        let query = CubeQuery {
            rollups,
            ..CubeQuery::default()
        };
        let (baseline, sequential) = execute_with_stats(&cube, &query, 1).unwrap();
        assert_eq!(sequential.rows_scanned, 100);
        // o4 sits on the ragged city c3 (no country), so the roll-up
        // drops exactly one row before aggregation.
        assert_eq!(sequential.rows_no_member, 1);
        assert_eq!(sequential.rows_aggregated, 99);
        assert_eq!(sequential.scan_chunks, 1);
        for threads in [2, 3, 8, 64] {
            let (output, stats) = execute_with_stats(&cube, &query, threads).unwrap();
            assert_eq!(output, baseline, "results identical at {threads} threads");
            assert_eq!(
                stats.rows_scanned, sequential.rows_scanned,
                "concurrent chunk flushes sum exactly at {threads} threads"
            );
            assert_eq!(stats.rows_aggregated, sequential.rows_aggregated);
            assert_eq!(stats.rollup_lookups, sequential.rollup_lookups);
            assert_eq!(stats.tombstones_skipped, 0);
            // 100 rows fit one segment, and a worker pulls whole segments.
            assert_eq!(stats.scan_chunks, 1);
            assert_eq!(stats.segments_total, 1);
            assert_eq!(stats.segments_pruned, 0);
        }
    }

    #[test]
    fn traced_execution_profiles_every_phase() {
        let cube = traced_fixture_cube(0);
        let query = CubeQuery {
            slices: vec![iri("dim/month")],
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let (output, profile, _stats) = execute_traced_with_threads(&cube, &query, 2).unwrap();
        assert_eq!(output, execute(&cube, &query).unwrap(), "tracing is free of effects");
        assert_eq!(profile.backend, "columnar");
        assert_eq!(
            profile.step_names(),
            vec!["plan-axes", "compile-filters", "scan", "aggregate"]
        );
        assert!(profile.plan.iter().any(|l| l.starts_with("SLICE")));
        assert!(profile.plan.iter().any(|l| l.starts_with("AXIS")));
        assert_eq!(profile.counter("rows_scanned"), 5);
        assert_eq!(profile.counter("rows_aggregated"), 4, "the ragged row drops");
        assert_eq!(profile.counter("rows_no_member"), 1);
        assert!(profile.counter("dictionary_lookups") > 0);
        let rendered = profile.render();
        assert!(rendered.contains("backend=columnar"), "{rendered}");
        assert!(rendered.contains("scan"), "{rendered}");
    }

    #[test]
    fn scan_stats_feed_a_metrics_registry() {
        let cube = traced_fixture_cube(0);
        let registry = obs::MetricsRegistry::new();
        let (_, stats) = execute_with_stats(&cube, &CubeQuery::default(), 1).unwrap();
        stats.record_into(&registry);
        stats.record_into(&registry);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("cubestore.scan.runs"), 2);
        assert_eq!(snapshot.counter("cubestore.scan.rows"), 10);
    }

    /// Extends the 5-row fixture cube with one delta appending phases of
    /// complete observations `(count, city)` — segment-scale cubes with no
    /// SPARQL materialization cost.
    fn segmented_cube(phases: &[(usize, &str)]) -> MaterializedCube {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        let mut inserted = Vec::new();
        let mut row = 0usize;
        for &(count, city) in phases {
            for _ in 0..count {
                // Zero-padded: the delta path appends observations in node
                // order, and phase boundaries must map to row boundaries.
                inserted.extend(observation_triples(&format!("a{row:06}"), city, "m1", 1, 1));
                row += 1;
            }
        }
        let delta = StoreDelta {
            epoch: 1,
            graph: None,
            inserted,
            removed: Vec::new(),
        };
        cube.apply_delta(&[delta]).unwrap()
    }

    fn country_name_dice(value: &str) -> MemberFilter {
        MemberFilter::Compare {
            dimension: iri("dim/city"),
            level: iri("lv/country"),
            attribute: iri("attr/countryName"),
            predicate: MemberPredicate::Str {
                op: CmpOp::Eq,
                value: value.to_string(),
            },
        }
    }

    fn rollup_query() -> CubeQuery {
        CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        }
    }

    #[test]
    fn zone_maps_prune_segments_without_changing_results() {
        // Rows 0..5 are the fixture (cities c1,c1,c2,c3,c2); rows 5..8192
        // are all c2, so the sealed segment 1 holds ONLY c2 rows; rows
        // 8192..9197 are c1. Only c1 rolls up to the "Alpha" country.
        let cube = segmented_cube(&[(SEGMENT_LEN * 2 - 5, "c2"), (1005, "c1")]);
        assert_eq!(cube.row_count(), SEGMENT_LEN * 2 + 1005);
        cube.verify_zone_invariants().unwrap();

        let mut alpha_dice = rollup_query();
        alpha_dice.member_filters = vec![country_name_dice("Alpha")];

        let (baseline, full) = execute_with_options(
            &cube,
            &alpha_dice,
            ExecOptions { threads: 1, prune: false },
        )
        .unwrap();
        assert_eq!(full.segments_pruned, 0, "pruning off visits everything");
        assert_eq!(full.segments_total, 3);
        assert_eq!(full.rows_scanned, cube.row_count() as u64);

        for threads in [1, 4] {
            let (output, stats) = execute_with_options(
                &cube,
                &alpha_dice,
                ExecOptions { threads, prune: true },
            )
            .unwrap();
            assert_eq!(output, baseline, "pruned output diverged at {threads} threads");
            assert_eq!(stats.segments_total, 3);
            assert_eq!(stats.segments_pruned, 1, "the all-c2 sealed segment");
            assert!(stats.segments_pruned <= stats.segments_total);
            assert_eq!(
                stats.rows_scanned,
                (cube.row_count() - SEGMENT_LEN) as u64,
                "the pruned segment's rows were never visited"
            );
        }
        // Two surviving segments → at most two whole-segment workers.
        let (_, stats) = execute_with_options(
            &cube,
            &alpha_dice,
            ExecOptions { threads: 4, prune: true },
        )
        .unwrap();
        assert_eq!(stats.scan_chunks, 2);

        // A dice no country satisfies prunes every segment: zero rows
        // visited, same (empty) output as the full scan that filters
        // every row away.
        let mut nothing_dice = rollup_query();
        nothing_dice.member_filters = vec![country_name_dice("Zeta")];
        let (pruned_empty, stats) = execute_with_options(
            &cube,
            &nothing_dice,
            ExecOptions { threads: 4, prune: true },
        )
        .unwrap();
        let (full_empty, _) = execute_with_options(
            &cube,
            &nothing_dice,
            ExecOptions { threads: 4, prune: false },
        )
        .unwrap();
        assert_eq!(pruned_empty, full_empty);
        assert!(pruned_empty.cells.is_empty());
        assert_eq!(stats.segments_pruned, 3);
        assert_eq!(stats.rows_scanned, 0);

        // Without member filters nothing is provably irrelevant (every
        // segment has rows that roll up somewhere live).
        let (_, stats) = execute_with_options(
            &cube,
            &rollup_query(),
            ExecOptions { threads: 4, prune: true },
        )
        .unwrap();
        assert_eq!(stats.segments_pruned, 0);
    }

    #[test]
    fn pruning_preserves_ambiguous_rollup_refusals() {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        sparql::Endpoint::insert_triples(
            &endpoint,
            &[qb4olap::rollup_triple(&member("c1"), &member("K2"))],
        )
        .unwrap();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        // The dice is impossible (no country is named "Zeta"), but the
        // unpruned scan refuses the query *before* filters run: c1 lifts
        // ambiguously during key construction. Pruning on filter grounds
        // would mask that refusal, so the ambiguous zone code must make
        // the segment unprunable.
        let mut query = rollup_query();
        query.member_filters = vec![country_name_dice("Zeta")];
        for prune in [false, true] {
            let error = execute_with_options(
                &cube,
                &query,
                ExecOptions { threads: 1, prune },
            )
            .unwrap_err();
            assert!(matches!(error, CubeStoreError::Unsupported(_)), "{error}");
        }
    }

    #[test]
    fn fully_dead_segments_skip_without_touching_the_bitmap() {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let mut cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        for row in 0..cube.row_count() {
            assert!(cube.tombstones.kill(row));
        }
        cube.verify_zone_invariants().unwrap();
        let (output, stats) = execute_with_stats(&cube, &rollup_query(), 1).unwrap();
        assert!(output.cells.is_empty());
        assert_eq!(stats.segments_dead, 1);
        assert_eq!(stats.rows_scanned, 0);
        assert_eq!(stats.tombstones_skipped, 0, "the bitmap was never consulted");
    }

    #[test]
    fn auto_scan_threads_sizes_from_live_rows() {
        let mut cube = segmented_cube(&[(PARALLEL_SCAN_THRESHOLD - 5, "c1")]);
        assert_eq!(cube.row_count(), PARALLEL_SCAN_THRESHOLD);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(auto_scan_threads(&cube), cores);
        // Tombstone just under half the cube — the heavily-tombstoned
        // state right before the catalog compacts. The physical row count
        // still clears the parallel threshold; the live count does not,
        // and thread sizing must follow the work actually left.
        for row in 0..PARALLEL_SCAN_THRESHOLD / 2 {
            assert!(cube.tombstones.kill(row));
        }
        assert!(cube.row_count() >= PARALLEL_SCAN_THRESHOLD);
        assert!(cube.live_row_count() < PARALLEL_SCAN_THRESHOLD);
        assert_eq!(auto_scan_threads(&cube), 1);
        cube.verify_zone_invariants().unwrap();
    }

    #[test]
    fn pruning_is_enabled_by_default() {
        // CI reruns the differential campaigns with QB2OLAP_NO_PRUNE=1 at
        // the process level; inside an ordinary test run the knob is
        // absent and pruning is on.
        if std::env::var_os("QB2OLAP_NO_PRUNE").is_none() {
            assert!(pruning_enabled());
        }
    }

    /// Signed zeros must pick a deterministic winner in every order and
    /// partitioning — `f64::min(-0.0, 0.0)` is allowed to return either,
    /// which would leak scan order into MIN/MAX terms.
    #[test]
    fn float_extremes_break_signed_zero_ties_deterministically() {
        for (a, b) in [(0.0f64, -0.0f64), (-0.0, 0.0)] {
            assert!(float_min(a, b).is_sign_negative());
            assert!(float_max(a, b).is_sign_positive());
        }
        assert_eq!(float_min(1.0, -2.0), -2.0);
        assert_eq!(float_max(f64::NEG_INFINITY, -0.0), -0.0);
        assert_eq!(float_min(f64::INFINITY, 0.5), 0.5);
    }
}

