//! The vectorized executor: runs a simplified OLAP pipeline
//! (slice → dice → roll-up → aggregate) directly over the columns of a
//! [`MaterializedCube`], with no SPARQL round-trip.
//!
//! The executor is written to agree **cell-for-cell** with the SPARQL
//! backend of the querying module: member coordinates come from the same
//! `qb4o:memberOf`-anchored navigation (precomputed into roll-up maps),
//! attribute dices keep the generated query's inner-join semantics (a
//! member with no attribute value is dropped even under `OR`), comparisons
//! reuse [`sparql::compare_terms`], and aggregate values are accumulated
//! through the same order-independent [`sparql::NumericSum`] the SPARQL
//! engine uses (integers exactly in `i128`, floats through a compensated
//! two-sum expansion), with identical typing rules (integer sums stay
//! integers, averages are decimals, MIN/MAX return input terms).
//!
//! Because the sums are order-independent, the scan may be chunked across
//! any number of worker threads — and the delta path may append rows in an
//! order a rebuild would not produce — without moving any aggregate by even
//! an ulp.

use std::collections::{BTreeMap, HashMap};

use qb4olap::AggregateFunction;
use rdf::{Iri, Literal, Term};
use sparql::ast::CmpOp;
use sparql::numeric::{float_max, float_min};
use sparql::compare_terms;

use crate::build::MaterializedCube;
use crate::columns::{DimensionColumn, MeasureColumn, MeasureValue, MeasureVector};
use crate::dictionary::{MemberId, AMBIGUOUS_MEMBER, NO_MEMBER};
use crate::error::CubeStoreError;
use crate::hierarchy::{LevelIndex, RollupMap};
use crate::tombstone::Tombstones;

/// How a dice comparison reads the attribute value, mirroring the two
/// shapes the QL → SPARQL translator emits.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberPredicate {
    /// `STR(?attr) <op> "value"` — string comparison on the lexical form.
    Str {
        /// Comparison operator.
        op: CmpOp,
        /// The string constant.
        value: String,
    },
    /// `?attr <op> constant` — direct term comparison.
    Constant {
        /// Comparison operator.
        op: CmpOp,
        /// The constant term.
        value: Term,
    },
}

/// A dice condition over level-attribute values.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberFilter {
    /// One comparison on an attribute of a level kept in the result.
    Compare {
        /// The dimension the attribute's level belongs to.
        dimension: Iri,
        /// The level carrying the attribute (must be the dimension's level
        /// in the result).
        level: Iri,
        /// The attribute.
        attribute: Iri,
        /// The comparison.
        predicate: MemberPredicate,
    },
    /// Conjunction.
    And(Box<MemberFilter>, Box<MemberFilter>),
    /// Disjunction.
    Or(Box<MemberFilter>, Box<MemberFilter>),
}

/// A dice condition over aggregated measure values (`HAVING` semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum MeasureFilter {
    /// One comparison on an aggregated measure.
    Compare {
        /// The measure property.
        measure: Iri,
        /// Comparison operator.
        op: CmpOp,
        /// The constant term the aggregate is compared against.
        value: Term,
    },
    /// Conjunction.
    And(Box<MeasureFilter>, Box<MeasureFilter>),
    /// Disjunction.
    Or(Box<MeasureFilter>, Box<MeasureFilter>),
}

/// A simplified OLAP pipeline in columnar terms: which dimensions are
/// sliced away, where the kept dimensions roll up to, and the dice filters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CubeQuery {
    /// Dimensions sliced out of the result.
    pub slices: Vec<Iri>,
    /// Kept dimensions whose result level differs from their bottom level.
    pub rollups: BTreeMap<Iri, Iri>,
    /// Dice conditions on level attributes (applied before aggregation).
    pub member_filters: Vec<MemberFilter>,
    /// Dice conditions on aggregated measures (applied after aggregation).
    pub measure_filters: Vec<MeasureFilter>,
}

/// One axis of a query result: a kept dimension at its result level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisSpec {
    /// The dimension.
    pub dimension: Iri,
    /// The level the dimension was aggregated to.
    pub level: Iri,
}

/// One cell of a query result.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputCell {
    /// The member of each axis, in axis order.
    pub coordinates: Vec<Term>,
    /// The aggregated value of each measure, in measure order.
    pub values: Vec<Option<Term>>,
}

/// The result of one columnar execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The axes, in schema dimension order.
    pub axes: Vec<AxisSpec>,
    /// The measure properties, in schema order.
    pub measures: Vec<Iri>,
    /// The cells, sorted canonically by coordinates.
    pub cells: Vec<OutputCell>,
}

/// Row count below which the scan stays single-threaded (spawning workers
/// costs more than it saves on small cubes).
const PARALLEL_SCAN_THRESHOLD: usize = 16_384;

/// Executes a columnar query against a materialized cube.
///
/// Large cubes are scanned on multiple threads (one chunk of the row range
/// per worker, partial groups merged at the end); the thread count comes
/// from [`std::thread::available_parallelism`]. Every measure type
/// parallelizes: the accumulators are order-independent
/// ([`sparql::NumericSum`] — exact for integers, correctly rounded
/// compensated summation for floats), so the bit-compatibility guarantee
/// holds on any thread count and any chunk partitioning.
pub fn execute(cube: &MaterializedCube, query: &CubeQuery) -> Result<QueryOutput, CubeStoreError> {
    let threads = if cube.row_count() >= PARALLEL_SCAN_THRESHOLD {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        1
    };
    execute_with_threads(cube, query, threads)
}

/// [`execute`] with an explicit scan thread count (1 = the sequential
/// scan). Exposed so benchmarks can compare single- and multi-threaded
/// medians directly; `execute` picks the count automatically.
pub fn execute_with_threads(
    cube: &MaterializedCube,
    query: &CubeQuery,
    threads: usize,
) -> Result<QueryOutput, CubeStoreError> {
    for slice in &query.slices {
        if cube.dimension_column(slice).is_none() {
            return Err(CubeStoreError::Query(format!(
                "cannot slice unknown dimension <{}>",
                slice.as_str()
            )));
        }
    }

    // Plan the kept axes in schema order (the same order the SPARQL
    // translator plans them in).
    let mut axes: Vec<AxisPlan> = Vec::new();
    for dimension in &cube.schema().dimensions {
        if query.slices.contains(&dimension.iri) {
            continue;
        }
        let column = cube
            .dimension_column(&dimension.iri)
            .expect("every schema dimension has a column");
        let target = query
            .rollups
            .get(&dimension.iri)
            .unwrap_or(&column.bottom_level);
        let rollup = cube.rollup(&dimension.iri, target).ok_or_else(|| {
            CubeStoreError::Query(format!(
                "no roll-up map from the bottom of <{}> to level <{}>",
                dimension.iri.as_str(),
                target.as_str()
            ))
        })?;
        let level_index = cube.level(target).ok_or_else(|| {
            CubeStoreError::Query(format!("level <{}> is not indexed", target.as_str()))
        })?;
        axes.push(AxisPlan {
            column,
            rollup,
            level_index,
        });
    }

    // Compile the member filters into per-member truth tables.
    let compiled_filters: Vec<CompiledFilter> = query
        .member_filters
        .iter()
        .map(|filter| compile_filter(filter, &axes))
        .collect::<Result<_, _>>()?;

    // Row scan: map each fact row to its axis coordinates, apply the member
    // filters, and accumulate the measures per coordinate group — chunked
    // across worker threads when the cube is large enough.
    let measures = cube.measure_columns();
    let groups = scan(cube, &axes, &compiled_filters, measures, threads)?;

    // Aggregate each group and apply the measure filters (HAVING).
    let mut cells: Vec<OutputCell> = Vec::with_capacity(groups.len());
    'groups: for (key, accs) in groups {
        let values: Vec<Option<Term>> = accs
            .iter()
            .zip(measures)
            .map(|(acc, measure)| Some(acc.aggregate(measure)))
            .collect();
        for filter in &query.measure_filters {
            let verdict = eval_measure_filter(filter, measures, &values)?;
            if verdict != Some(true) {
                continue 'groups;
            }
        }
        let coordinates = key
            .iter()
            .zip(&axes)
            .map(|(&code, axis)| axis.level_index.dictionary.term(code).clone())
            .collect();
        cells.push(OutputCell {
            coordinates,
            values,
        });
    }
    cells.sort_by(|a, b| a.coordinates.cmp(&b.coordinates));

    Ok(QueryOutput {
        axes: axes
            .iter()
            .map(|axis| AxisSpec {
                dimension: axis.column.dimension.clone(),
                level: axis.rollup.target_level.clone(),
            })
            .collect(),
        measures: measures.iter().map(|m| m.property.clone()).collect(),
        cells,
    })
}

struct AxisPlan<'c> {
    column: &'c DimensionColumn,
    rollup: &'c RollupMap,
    level_index: &'c LevelIndex,
}

/// Partial aggregation state: coordinate key → one accumulator per measure.
type ScanGroups = HashMap<Vec<MemberId>, Vec<MeasureAcc>>;

/// Scans the fact rows, dispatching to the chunked multi-threaded scan when
/// the caller asked for more than one worker and the data permits it.
fn scan(
    cube: &MaterializedCube,
    axes: &[AxisPlan<'_>],
    filters: &[CompiledFilter],
    measures: &[MeasureColumn],
    threads: usize,
) -> Result<ScanGroups, CubeStoreError> {
    let rows = cube.row_count();
    // Removed observations stay physically present; the scan must skip
    // the rows the tombstone bitmap marks dead. Chunk ranges stay over
    // physical row ids — liveness is checked per row inside the chunk.
    let tombstones = cube.tombstones();
    // Chunked accumulation is order-independent for every measure type
    // (compensated float sums included), so the caller's thread count is
    // honored unconditionally.
    let workers = threads.max(1).min(rows.max(1));
    if workers <= 1 {
        return scan_range(axes, filters, measures, tombstones, 0..rows);
    }
    let chunk = rows.div_ceil(workers);
    let partials: Vec<Result<ScanGroups, CubeStoreError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let start = worker * chunk;
                    let end = ((worker + 1) * chunk).min(rows);
                    scope.spawn(move || scan_range(axes, filters, measures, tombstones, start..end))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("scan worker panicked"))
                .collect()
        });
    let mut groups: ScanGroups = HashMap::new();
    for partial in partials {
        for (key, accs) in partial? {
            match groups.entry(key) {
                std::collections::hash_map::Entry::Vacant(vacant) => {
                    vacant.insert(accs);
                }
                std::collections::hash_map::Entry::Occupied(mut occupied) => {
                    for (merged, acc) in occupied.get_mut().iter_mut().zip(&accs) {
                        merged.merge(acc);
                    }
                }
            }
        }
    }
    Ok(groups)
}

/// The sequential scan over one chunk of the row range.
fn scan_range(
    axes: &[AxisPlan<'_>],
    filters: &[CompiledFilter],
    measures: &[MeasureColumn],
    tombstones: &Tombstones,
    rows: std::ops::Range<usize>,
) -> Result<ScanGroups, CubeStoreError> {
    let mut groups: ScanGroups = HashMap::new();
    let check_tombstones = !tombstones.is_empty();
    'rows: for row in rows {
        if check_tombstones && tombstones.is_dead(row) {
            continue;
        }
        let mut key = Vec::with_capacity(axes.len());
        for axis in axes {
            let bottom = axis.column.code(row);
            if bottom == NO_MEMBER {
                continue 'rows;
            }
            let target = axis.rollup.target(bottom);
            if target == NO_MEMBER {
                continue 'rows;
            }
            if target == AMBIGUOUS_MEMBER {
                return Err(CubeStoreError::Unsupported(format!(
                    "member {} of dimension <{}> rolls up to several members of level <{}> \
                     (non-functional roll-up); use the SPARQL backend",
                    axis.column.dictionary.term(bottom),
                    axis.column.dimension.as_str(),
                    axis.rollup.target_level.as_str()
                )));
            }
            key.push(target);
        }
        for filter in filters {
            if !filter.keeps(&key) {
                continue 'rows;
            }
        }
        let accs = groups
            .entry(key)
            .or_insert_with(|| vec![MeasureAcc::default(); measures.len()]);
        for (acc, measure) in accs.iter_mut().zip(measures) {
            acc.update(&measure.data, row);
        }
    }
    Ok(groups)
}

/// One measure accumulator: everything the five QB4OLAP aggregate
/// functions need, updated in a single pass. SUM/AVG accumulate through
/// [`sparql::NumericSum`] — the same order-independent accumulator the
/// SPARQL engine's aggregates use — so chunk order, append order and
/// thread count cannot move the result by an ulp. MIN/MAX additionally
/// track integer-vector extremes as exact `i64`s (the `f64` view rounds
/// above 2⁵³).
#[derive(Debug, Clone)]
struct MeasureAcc {
    count: usize,
    sum: sparql::NumericSum,
    /// Exact extremes of an [`MeasureVector::Integer`] vector.
    min_int: i64,
    max_int: i64,
    /// Extremes of a float vector (every stored `f64` is one of the input
    /// values, so the reconstruction via `term_for` is exact).
    min: f64,
    max: f64,
}

impl Default for MeasureAcc {
    fn default() -> Self {
        MeasureAcc {
            count: 0,
            sum: sparql::NumericSum::new(),
            min_int: i64::MAX,
            max_int: i64::MIN,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl MeasureAcc {
    /// Folds another chunk's accumulator into this one (multi-threaded
    /// scan). Exact for every measure type.
    fn merge(&mut self, other: &MeasureAcc) {
        self.count += other.count;
        self.sum.merge(&other.sum);
        self.min_int = self.min_int.min(other.min_int);
        self.max_int = self.max_int.max(other.max_int);
        self.min = float_min(self.min, other.min);
        self.max = float_max(self.max, other.max);
    }

    #[inline]
    fn update(&mut self, data: &MeasureVector, row: usize) {
        self.count += 1;
        // SUM/AVG inputs are routed exactly as the SPARQL engine routes
        // the corresponding literal (see `MeasureVector::numeric_at`).
        let routed = data.numeric_at(row);
        match routed {
            MeasureValue::Integer(value) => self.sum.add_integer(value),
            MeasureValue::Float(value) => self.sum.add_float(value),
        }
        // MIN/MAX compare within the vector's own value space (a float
        // vector's value may have routed integer for the sum above).
        match data {
            MeasureVector::Integer(_) => {
                if let MeasureValue::Integer(value) = routed {
                    self.min_int = self.min_int.min(value);
                    self.max_int = self.max_int.max(value);
                }
            }
            MeasureVector::Decimal(_) | MeasureVector::Double(_) => {
                let value = data.value(row);
                self.min = float_min(self.min, value);
                self.max = float_max(self.max, value);
            }
        }
    }

    /// The aggregate as a [`Term`], with exactly the typing rules of the
    /// SPARQL engine's aggregate evaluation.
    fn aggregate(&self, measure: &MeasureColumn) -> Term {
        match measure.aggregate {
            AggregateFunction::Count => Term::Literal(Literal::integer(self.count as i64)),
            AggregateFunction::Sum => self.sum.sum_term(),
            AggregateFunction::Avg => {
                Term::Literal(Literal::decimal(self.sum.value() / self.count as f64))
            }
            AggregateFunction::Min => match measure.data {
                MeasureVector::Integer(_) => Term::Literal(Literal::integer(self.min_int)),
                _ => measure.data.term_for(self.min),
            },
            AggregateFunction::Max => match measure.data {
                MeasureVector::Integer(_) => Term::Literal(Literal::integer(self.max_int)),
                _ => measure.data.term_for(self.max),
            },
        }
    }
}

/// A member filter with every comparison pre-evaluated into a truth table
/// over the member ids of its axis's result level.
enum CompiledFilter {
    /// `table[member]`: `None` = the member has no value for the attribute
    /// (the SPARQL join drops the row before the FILTER runs, even under
    /// `OR`); `Some(verdict)` = the comparison's three-valued outcome.
    Compare {
        axis: usize,
        table: Vec<Option<Option<bool>>>,
    },
    And(Box<CompiledFilter>, Box<CompiledFilter>),
    Or(Box<CompiledFilter>, Box<CompiledFilter>),
}

impl CompiledFilter {
    /// True if a row with the given axis coordinates survives the filter:
    /// all referenced attributes are present (join) and the condition
    /// evaluates to true (FILTER).
    fn keeps(&self, key: &[MemberId]) -> bool {
        self.joins(key) && self.eval(key) == Some(true)
    }

    fn joins(&self, key: &[MemberId]) -> bool {
        match self {
            CompiledFilter::Compare { axis, table } => table[key[*axis] as usize].is_some(),
            CompiledFilter::And(a, b) | CompiledFilter::Or(a, b) => a.joins(key) && b.joins(key),
        }
    }

    /// Three-valued evaluation matching the SPARQL engine's `&&` / `||`.
    fn eval(&self, key: &[MemberId]) -> Option<bool> {
        match self {
            CompiledFilter::Compare { axis, table } => table[key[*axis] as usize].flatten(),
            CompiledFilter::And(a, b) => match (a.eval(key), b.eval(key)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            CompiledFilter::Or(a, b) => match (a.eval(key), b.eval(key)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        }
    }
}

fn compile_filter(
    filter: &MemberFilter,
    axes: &[AxisPlan<'_>],
) -> Result<CompiledFilter, CubeStoreError> {
    match filter {
        MemberFilter::And(a, b) => Ok(CompiledFilter::And(
            Box::new(compile_filter(a, axes)?),
            Box::new(compile_filter(b, axes)?),
        )),
        MemberFilter::Or(a, b) => Ok(CompiledFilter::Or(
            Box::new(compile_filter(a, axes)?),
            Box::new(compile_filter(b, axes)?),
        )),
        MemberFilter::Compare {
            dimension,
            level,
            attribute,
            predicate,
        } => {
            let axis = axes
                .iter()
                .position(|a| &a.column.dimension == dimension && &a.rollup.target_level == level)
                .ok_or_else(|| {
                    CubeStoreError::Query(format!(
                        "the dice on dimension <{}> refers to level <{}>, which is not the \
                         level of that dimension in the result",
                        dimension.as_str(),
                        level.as_str()
                    ))
                })?;
            let index = axes[axis].level_index;
            let table = (0..index.member_count() as MemberId)
                .map(|member| {
                    index
                        .attribute_value(attribute, member)
                        .map(|value| eval_predicate(predicate, value))
                })
                .collect();
            Ok(CompiledFilter::Compare { axis, table })
        }
    }
}

/// One attribute comparison, with exactly the semantics of the generated
/// SPARQL: `Str` wraps the value like the `STR()` call the translator
/// emits, `Constant` compares the raw term.
fn eval_predicate(predicate: &MemberPredicate, value: &Term) -> Option<bool> {
    match predicate {
        MemberPredicate::Str { op, value: expected } => {
            let lexical = match value {
                Term::Iri(iri) => iri.as_str().to_string(),
                Term::Blank(b) => b.as_str().to_string(),
                Term::Literal(lit) => lit.lexical().to_string(),
            };
            compare_terms(
                &Term::Literal(Literal::string(lexical)),
                *op,
                &Term::Literal(Literal::string(expected)),
            )
        }
        MemberPredicate::Constant { op, value: expected } => compare_terms(value, *op, expected),
    }
}

/// HAVING evaluation: compares the already-computed aggregate terms.
fn eval_measure_filter(
    filter: &MeasureFilter,
    measures: &[MeasureColumn],
    values: &[Option<Term>],
) -> Result<Option<bool>, CubeStoreError> {
    match filter {
        MeasureFilter::And(a, b) => {
            let va = eval_measure_filter(a, measures, values)?;
            let vb = eval_measure_filter(b, measures, values)?;
            Ok(match (va, vb) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            })
        }
        MeasureFilter::Or(a, b) => {
            let va = eval_measure_filter(a, measures, values)?;
            let vb = eval_measure_filter(b, measures, values)?;
            Ok(match (va, vb) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            })
        }
        MeasureFilter::Compare { measure, op, value } => {
            let index = measures
                .iter()
                .position(|m| &m.property == measure)
                .ok_or_else(|| {
                    CubeStoreError::Query(format!("unknown measure <{}>", measure.as_str()))
                })?;
            Ok(values[index]
                .as_ref()
                .and_then(|aggregate| compare_terms(aggregate, *op, value)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Signed zeros must pick a deterministic winner in every order and
    /// partitioning — `f64::min(-0.0, 0.0)` is allowed to return either,
    /// which would leak scan order into MIN/MAX terms.
    #[test]
    fn float_extremes_break_signed_zero_ties_deterministically() {
        for (a, b) in [(0.0f64, -0.0f64), (-0.0, 0.0)] {
            assert!(float_min(a, b).is_sign_negative());
            assert!(float_max(a, b).is_sign_positive());
        }
        assert_eq!(float_min(1.0, -2.0), -2.0);
        assert_eq!(float_max(f64::NEG_INFINITY, -0.0), -0.0);
        assert_eq!(float_min(f64::INFINITY, 0.5), 0.5);
    }
}
