//! A columnar in-memory cube engine for QB4OLAP datasets.
//!
//! The QB2OLAP querying module normally executes every QL pipeline by
//! translating it to SPARQL and evaluating it against the triple store.
//! That is faithful to the paper, but each query pays for triple-pattern
//! joins, `skos:broader` navigation and GROUP BY over decoded terms. This
//! crate trades one up-front materialization for SPARQL-free execution:
//!
//! * [`build::MaterializedCube::from_endpoint`] reads the observations,
//!   level members, attribute values and member roll-up links **once** and
//!   lays them out as columns — dictionary-encoded `u32` member ids per
//!   dimension ([`columns::DimensionColumn`]), dense typed measure vectors
//!   ([`columns::MeasureVector`]), and precomputed bottom-level → ancestor
//!   roll-up maps ([`hierarchy::RollupMap`]);
//! * [`executor::execute`] then runs a simplified OLAP pipeline
//!   (slice → dice → roll-up → aggregate) as a single vectorized pass over
//!   those columns.
//!
//! The executor is deliberately **bit-compatible** with the SPARQL backend:
//! it reuses [`sparql::compare_terms`], reproduces the SPARQL engine's
//! aggregate typing rules, and mirrors the generated query's join
//! semantics, so both backends return identical result cubes (the `ql`
//! crate's differential tests pin this). Data the columnar engine cannot
//! execute faithfully — roll-ups that are non-functional or have several
//! broader paths to an ancestor, non-numeric measures — is rejected with
//! [`CubeStoreError::Unsupported`] instead of approximated. The one
//! assumption taken on faith is QB well-formedness of the *fact* side:
//! observations with several values for one dimension or measure, and
//! members with several values for one attribute, keep a single value
//! (see [`build::MaterializedCube::from_endpoint`]) where a raw SPARQL
//! join would multiply rows.
//!
//! # Serving and maintenance
//!
//! Beyond one-shot materialization the crate is a *serving layer*: a
//! [`catalog::CubeCatalog`] keys live cubes by dataset IRI, validates the
//! store's mutation epoch on every access, and refreshes stale entries in
//! **O(delta)** rather than O(cube):
//!
//! * every sizable cube component is copy-on-write ([`cowvec::CowVec`]
//!   column segments, `Arc`-shared dictionaries / level indexes / roll-up
//!   maps, a layered observation index), so
//!   [`build::MaterializedCube::apply_delta`] clones only what a delta
//!   actually extends;
//! * observation *removals* — whole or partial — are applied by
//!   tombstoning the row ([`tombstone::Tombstones`]; a partial removal
//!   additionally re-classifies the surviving fragment like a fresh
//!   build would) — the executor skips dead rows — and the catalog
//!   compacts (re-materializes) once the live-row fraction drops below
//!   [`catalog::COMPACTION_LIVE_FRACTION`];
//! * aggregation is **order-independent** ([`sparql::NumericSum`]: exact
//!   `i128` integer sums plus correctly rounded compensated float sums,
//!   shared with the SPARQL engine), so appends of *any* measure type —
//!   floats included — replay bit-identically to a rebuild, and the row
//!   scan chunks across threads for every measure type;
//! * everything the delta classifier cannot replay bit-identically
//!   refuses with a typed [`error::DeltaRefusal`] and falls back to a
//!   rebuild whose [`catalog::RebuildReason`] lands in the
//!   [`catalog::MaintenanceReport`] (the full decision table is in the
//!   [`delta`] module docs).
//!
//! * reads never have to wait on any of that:
//!   [`catalog::CubeCatalog::serve_snapshot`] pins an immutable
//!   [`overlay::CubeSnapshot`] — the last folded base plus a
//!   [`overlay::DeltaOverlay`] of changes accreted since — while
//!   structural rebuilds and compactions run on a **background fold
//!   thread** and publish the new base with an atomic swap (the
//!   [`overlay`] module documents why merged results stay bit-identical
//!   to a full fold).
//!
//! The repo-level `ARCHITECTURE.md` places this crate in the overall
//! system and spells out the COW/tombstone invariants; EXPERIMENTS.md
//! §E12–§E13 quantify the refresh costs and §E18 the read latency held
//! during a forced background rebuild.

#![deny(missing_docs)]

pub mod build;
pub mod catalog;
pub mod columns;
pub mod cowvec;
pub mod delta;
pub mod dictionary;
pub mod error;
pub mod executor;
pub mod hierarchy;
pub mod observations;
pub mod overlay;
#[cfg(test)]
mod refusal_suite;
pub mod tombstone;
pub mod zonemap;

pub use build::{BuildStats, MaterializedCube};
pub use catalog::{
    CubeCatalog, MaintenanceReport, MaintenanceStrategy, RebuildReason, ReportLog,
    COMPACTION_LIVE_FRACTION,
};
pub use columns::{DimensionColumn, MeasureColumn, MeasureValue, MeasureVector};
pub use cowvec::CowVec;
pub use dictionary::{Dictionary, MemberId, AMBIGUOUS_MEMBER, NO_MEMBER};
pub use error::{CubeStoreError, DeltaRefusal, RefusalKind};
pub use executor::{
    auto_scan_threads, execute, execute_snapshot, execute_snapshot_traced, execute_traced,
    execute_traced_with_options, execute_traced_with_threads, execute_with_options,
    execute_with_stats, execute_with_threads, pruning_enabled, AxisSpec, CubeQuery, ExecOptions,
    MeasureFilter, MemberFilter, MemberPredicate, OutputCell, QueryOutput, ScanStats,
};
pub use hierarchy::{LevelIndex, RollupMap};
pub use observations::ObservationIndex;
pub use overlay::{overlay_enabled, CubeSnapshot, DeltaOverlay};
pub use tombstone::Tombstones;
pub use zonemap::ZoneMaps;

/// Shared fixtures for the crate's unit tests (the build/executor tests in
/// this module plus the delta/catalog tests in their own modules).
#[cfg(test)]
pub(crate) mod testutil {
    use qb4olap::{
        AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
        LevelAttribute, LevelComponent, MeasureSpec,
    };
    use rdf::{Iri, Literal, Term};
    use sparql::{Endpoint, LocalEndpoint};

    pub(crate) fn iri(suffix: &str) -> Iri {
        Iri::new(format!("http://example.org/{suffix}"))
    }

    pub(crate) fn member(suffix: &str) -> Term {
        Term::iri(format!("http://example.org/member/{suffix}"))
    }

    /// One complete fixture observation (typed, linked, both dimensions,
    /// both measures) — what the delta path accepts as a pure append.
    pub(crate) fn observation_triples(
        name: &str,
        city: &str,
        month: &str,
        value: i64,
        score: i64,
    ) -> Vec<rdf::Triple> {
        use rdf::vocab::{qb, rdf as rdfv};
        use rdf::Triple;
        let node = Term::iri(format!("http://example.org/obs/{name}"));
        vec![
            Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(node.clone(), qb::data_set(), Term::iri("http://example.org/ds")),
            Triple::new(node.clone(), iri("lv/city"), member(city)),
            Triple::new(node.clone(), iri("lv/month"), member(month)),
            Triple::new(node.clone(), iri("measure/value"), Literal::integer(value)),
            Triple::new(node, iri("measure/score"), Literal::integer(score)),
        ]
    }

    /// A tiny two-dimensional cube: cities (rolling up to countries) ×
    /// months, with two measures. City `c3` is ragged (no country).
    ///
    /// Observations (city, month, value, score):
    ///   o1 (c1, m1, 10, 4), o2 (c1, m2, 20, 6), o3 (c2, m1, 5, 1),
    ///   o4 (c3, m1, 100, 9) — ragged city, o5 (c2, m2, 7, 3).
    pub(crate) fn fixture(score_aggregate: AggregateFunction) -> (LocalEndpoint, CubeSchema) {
        let city = iri("lv/city");
        let country = iri("lv/country");
        let month = iri("lv/month");
        let value = iri("measure/value");
        let score = iri("measure/score");

        let mut builder = qb::QbDatasetBuilder::new(iri("ds"), iri("dsd"))
            .dimension(city.clone())
            .dimension(month.clone())
            .measure(value.clone())
            .measure(score.clone());
        for (name, city_member, month_member, v, s) in [
            ("o1", "c1", "m1", 10, 4),
            ("o2", "c1", "m2", 20, 6),
            ("o3", "c2", "m1", 5, 1),
            ("o4", "c3", "m1", 100, 9),
            ("o5", "c2", "m2", 7, 3),
        ] {
            let mut obs = qb::Observation::new(Term::iri(format!("http://example.org/obs/{name}")));
            obs.dimensions.insert(city.clone(), member(city_member));
            obs.dimensions.insert(month.clone(), member(month_member));
            obs.measures
                .insert(value.clone(), Term::Literal(Literal::integer(v)));
            obs.measures
                .insert(score.clone(), Term::Literal(Literal::integer(s)));
            builder = builder.observation(obs);
        }
        let (_, mut triples) = builder.build();

        for (m, level) in [
            ("c1", &city),
            ("c2", &city),
            ("c3", &city),
            ("K1", &country),
            ("K2", &country),
            ("m1", &month),
            ("m2", &month),
        ] {
            triples.push(qb4olap::member_of_triple(&member(m), level));
        }
        triples.push(qb4olap::rollup_triple(&member("c1"), &member("K1")));
        triples.push(qb4olap::rollup_triple(&member("c2"), &member("K2")));
        // c3 stays ragged: no country ancestor.
        triples.push(qb4olap::attribute_triple(
            &member("K1"),
            &iri("attr/countryName"),
            &Term::Literal(Literal::string("Alpha")),
        ));
        // K2 has no countryName value at all.

        let endpoint = LocalEndpoint::new();
        endpoint.insert_triples(&triples).unwrap();

        let mut schema = CubeSchema::new(iri("dsdQB4O"), iri("ds"));
        let mut city_hierarchy = Hierarchy::new(iri("hier/city"));
        city_hierarchy.levels = vec![city.clone(), country.clone()];
        city_hierarchy.steps = vec![HierarchyStep {
            child: city.clone(),
            parent: country.clone(),
            cardinality: Cardinality::ManyToOne,
        }];
        let mut city_dim = Dimension::new(iri("dim/city"));
        city_dim.hierarchies.push(city_hierarchy);
        schema.dimensions.push(city_dim);

        let mut month_hierarchy = Hierarchy::new(iri("hier/month"));
        month_hierarchy.levels = vec![month.clone()];
        let mut month_dim = Dimension::new(iri("dim/month"));
        month_dim.hierarchies.push(month_hierarchy);
        schema.dimensions.push(month_dim);

        schema.level_components.push(LevelComponent {
            level: city,
            cardinality: Cardinality::ManyToOne,
            dimension: Some(iri("dim/city")),
        });
        schema.level_components.push(LevelComponent {
            level: month,
            cardinality: Cardinality::ManyToOne,
            dimension: Some(iri("dim/month")),
        });
        schema.measures.push(MeasureSpec {
            property: value,
            aggregate: AggregateFunction::Sum,
        });
        schema.measures.push(MeasureSpec {
            property: score,
            aggregate: score_aggregate,
        });
        schema
            .level_mut(&country)
            .attributes
            .push(LevelAttribute::new(iri("attr/countryName")));
        (endpoint, schema)
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use qb4olap::{AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
        LevelComponent, MeasureSpec};
    use rdf::{Literal, Term, Triple};
    use sparql::ast::CmpOp;
    use sparql::{Endpoint, LocalEndpoint};

    use super::testutil::{fixture, iri, member};
    use super::*;

    fn build(score_aggregate: AggregateFunction) -> MaterializedCube {
        let (endpoint, schema) = fixture(score_aggregate);
        MaterializedCube::from_endpoint(&endpoint, &schema).unwrap()
    }

    fn rollup_query() -> CubeQuery {
        CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        }
    }

    #[test]
    fn build_materializes_columns_and_maps() {
        let cube = build(AggregateFunction::Avg);
        assert_eq!(cube.row_count(), 5);
        let stats = cube.stats();
        assert_eq!(stats.observations_seen, 5);
        assert_eq!(stats.rows, 5);
        assert_eq!(stats.rows_dropped, 0);
        assert_eq!(stats.levels, 3);
        // city→city (identity), city→country, month→month.
        assert_eq!(stats.rollup_maps, 3);
        assert_eq!(stats.broader_links, 2);

        let column = cube.dimension_column(&iri("dim/city")).unwrap();
        assert_eq!(column.len(), 5);
        assert_eq!(column.unbound_rows(), 0);
        let map = cube.rollup(&iri("dim/city"), &iri("lv/country")).unwrap();
        assert_eq!(map.unmapped_members(), 1, "c3 is ragged");
        assert_eq!(map.ambiguous_members(), 0);
        assert_eq!(cube.level(&iri("lv/country")).unwrap().member_count(), 2);
        assert_eq!(cube.measure_columns().len(), 2);
        assert!(cube.dimension_column(&iri("dim/nope")).is_none());
    }

    #[test]
    fn untyped_and_measureless_observations_are_dropped() {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        // An observation linked to the dataset but not typed qb:Observation,
        // and a typed one missing the `score` measure: the SPARQL pattern
        // joins drop both, so the builder must too.
        endpoint
            .insert_triples(&[
                Triple::new(
                    Term::iri("http://example.org/obs/untyped"),
                    rdf::vocab::qb::data_set(),
                    Term::iri("http://example.org/ds"),
                ),
                Triple::new(
                    Term::iri("http://example.org/obs/untyped"),
                    iri("measure/value"),
                    Literal::integer(1),
                ),
                Triple::new(
                    Term::iri("http://example.org/obs/half"),
                    rdf::vocab::rdf::type_(),
                    Term::Iri(rdf::vocab::qb::observation()),
                ),
                Triple::new(
                    Term::iri("http://example.org/obs/half"),
                    rdf::vocab::qb::data_set(),
                    Term::iri("http://example.org/ds"),
                ),
                Triple::new(
                    Term::iri("http://example.org/obs/half"),
                    iri("measure/value"),
                    Literal::integer(1),
                ),
            ])
            .unwrap();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(cube.row_count(), 5);
        assert_eq!(cube.stats().rows_dropped, 2);
    }

    #[test]
    fn rollup_drops_ragged_members_and_sums() {
        let cube = build(AggregateFunction::Sum);
        let output = execute(&cube, &rollup_query()).unwrap();
        assert_eq!(
            output.axes,
            vec![
                AxisSpec {
                    dimension: iri("dim/city"),
                    level: iri("lv/country")
                },
                AxisSpec {
                    dimension: iri("dim/month"),
                    level: iri("lv/month")
                },
            ]
        );
        // o4 (ragged c3) contributes nowhere.
        assert_eq!(output.cells.len(), 4);
        let cell = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K1"), member("m1")])
            .unwrap();
        assert_eq!(cell.values[0], Some(Term::integer(10)));
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates.contains(&member("c3"))));
        // Grand total excludes the ragged row's 100.
        let total: i64 = output
            .cells
            .iter()
            .map(|c| {
                c.values[0]
                    .as_ref()
                    .and_then(|t| t.as_literal().and_then(|l| l.as_integer()))
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 42);
    }

    #[test]
    fn slice_collapses_a_dimension() {
        let cube = build(AggregateFunction::Sum);
        let query = CubeQuery {
            slices: vec![iri("dim/month")],
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&cube, &query).unwrap();
        assert_eq!(output.axes.len(), 1);
        assert_eq!(output.cells.len(), 2);
        let k1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K1")])
            .unwrap();
        assert_eq!(k1.values[0], Some(Term::integer(30)));
    }

    #[test]
    fn aggregate_functions_match_sparql_typing() {
        // score: avg of {4, 6} = decimal 5.0 on (K1, aggregated months).
        let cube = build(AggregateFunction::Avg);
        let query = CubeQuery {
            slices: vec![iri("dim/month")],
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&cube, &query).unwrap();
        let k1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K1")])
            .unwrap();
        assert_eq!(k1.values[1], Some(Term::Literal(Literal::decimal(5.0))));

        for (aggregate, expected_k2) in [
            (AggregateFunction::Min, Term::integer(1)),
            (AggregateFunction::Max, Term::integer(3)),
            (AggregateFunction::Count, Term::integer(2)),
        ] {
            let cube = build(aggregate);
            let output = execute(&cube, &query).unwrap();
            let k2 = output
                .cells
                .iter()
                .find(|c| c.coordinates == vec![member("K2")])
                .unwrap();
            assert_eq!(k2.values[1], Some(expected_k2), "{aggregate:?}");
        }
    }

    #[test]
    fn member_filter_keeps_inner_join_semantics() {
        let cube = build(AggregateFunction::Sum);
        let compare = |op, value: &str| MemberFilter::Compare {
            dimension: iri("dim/city"),
            level: iri("lv/country"),
            attribute: iri("attr/countryName"),
            predicate: MemberPredicate::Str {
                op,
                value: value.to_string(),
            },
        };

        let mut query = rollup_query();
        query.member_filters = vec![compare(CmpOp::Eq, "Alpha")];
        let output = execute(&cube, &query).unwrap();
        assert!(output.cells.iter().all(|c| c.coordinates[0] == member("K1")));
        assert_eq!(output.cells.len(), 2);

        // K2 has no countryName: the SPARQL join drops its rows even when
        // the condition is an OR whose other side would not need it.
        let mut query = rollup_query();
        query.member_filters = vec![MemberFilter::Or(
            Box::new(compare(CmpOp::Eq, "Alpha")),
            Box::new(compare(CmpOp::Ne, "Alpha")),
        )];
        let output = execute(&cube, &query).unwrap();
        assert!(output.cells.iter().all(|c| c.coordinates[0] == member("K1")));

        // An IRI constant compared with the member's attribute term.
        let mut query = rollup_query();
        query.member_filters = vec![MemberFilter::Compare {
            dimension: iri("dim/city"),
            level: iri("lv/country"),
            attribute: iri("attr/countryName"),
            predicate: MemberPredicate::Constant {
                op: CmpOp::Eq,
                value: Term::Literal(Literal::string("Alpha")),
            },
        }];
        let output = execute(&cube, &query).unwrap();
        assert_eq!(output.cells.len(), 2);
    }

    #[test]
    fn measure_filter_applies_to_aggregates() {
        let cube = build(AggregateFunction::Sum);
        let mut query = CubeQuery {
            slices: vec![iri("dim/month")],
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        query.measure_filters = vec![MeasureFilter::Compare {
            measure: iri("measure/value"),
            op: CmpOp::Gt,
            value: Term::Literal(Literal::integer(20)),
        }];
        let output = execute(&cube, &query).unwrap();
        assert_eq!(output.cells.len(), 1);
        assert_eq!(output.cells[0].coordinates, vec![member("K1")]);

        // Per group (country, value-sum, score-sum): K1 = (30, 10),
        // K2 = (12, 4). Keep groups with score >= 5 AND
        // (value <= 12 OR score >= 10): only K1 survives.
        query.measure_filters = vec![MeasureFilter::And(
            Box::new(MeasureFilter::Compare {
                measure: iri("measure/score"),
                op: CmpOp::Ge,
                value: Term::Literal(Literal::integer(5)),
            }),
            Box::new(MeasureFilter::Or(
                Box::new(MeasureFilter::Compare {
                    measure: iri("measure/value"),
                    op: CmpOp::Le,
                    value: Term::Literal(Literal::integer(12)),
                }),
                Box::new(MeasureFilter::Compare {
                    measure: iri("measure/score"),
                    op: CmpOp::Ge,
                    value: Term::Literal(Literal::integer(10)),
                }),
            )),
        )];
        let output = execute(&cube, &query).unwrap();
        assert_eq!(output.cells.len(), 1);
        assert_eq!(output.cells[0].coordinates, vec![member("K1")]);
    }

    #[test]
    fn ambiguous_rollups_are_refused() {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        endpoint
            .insert_triples(&[qb4olap::rollup_triple(&member("c1"), &member("K2"))])
            .unwrap();
        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(
            cube.rollup(&iri("dim/city"), &iri("lv/country"))
                .unwrap()
                .ambiguous_members(),
            1
        );
        let error = execute(&cube, &rollup_query()).unwrap_err();
        assert!(matches!(error, CubeStoreError::Unsupported(_)), "{error}");
        // Queries that do not roll city up still work.
        assert!(execute(&cube, &CubeQuery::default()).is_ok());
    }

    #[test]
    fn diamond_paths_to_one_ancestor_are_refused_not_undercounted() {
        // city → district → country where c1 reaches K1 through TWO
        // districts. The SPARQL join counts each observation once per
        // broader path (twice here), so the columnar engine must refuse
        // the roll-up rather than silently counting once.
        let city = iri("lv/city");
        let district = iri("lv/district");
        let country = iri("lv/country");
        let value = iri("measure/value");

        let mut builder = qb::QbDatasetBuilder::new(iri("ds"), iri("dsd"))
            .dimension(city.clone())
            .measure(value.clone());
        let mut obs = qb::Observation::new(Term::iri("http://example.org/obs/o1"));
        obs.dimensions.insert(city.clone(), member("c1"));
        obs.measures
            .insert(value.clone(), Term::Literal(Literal::integer(10)));
        builder = builder.observation(obs);
        let (_, mut triples) = builder.build();

        for (m, level) in [
            ("c1", &city),
            ("d1", &district),
            ("d2", &district),
            ("K1", &country),
        ] {
            triples.push(qb4olap::member_of_triple(&member(m), level));
        }
        for (child, parent) in [("c1", "d1"), ("c1", "d2"), ("d1", "K1"), ("d2", "K1")] {
            triples.push(qb4olap::rollup_triple(&member(child), &member(parent)));
        }
        let endpoint = LocalEndpoint::new();
        endpoint.insert_triples(&triples).unwrap();

        let mut schema = CubeSchema::new(iri("dsdQB4O"), iri("ds"));
        let mut hierarchy = Hierarchy::new(iri("hier/city"));
        hierarchy.levels = vec![city.clone(), district.clone(), country.clone()];
        hierarchy.steps = vec![
            HierarchyStep {
                child: city.clone(),
                parent: district.clone(),
                cardinality: Cardinality::ManyToOne,
            },
            HierarchyStep {
                child: district.clone(),
                parent: country.clone(),
                cardinality: Cardinality::ManyToOne,
            },
        ];
        let mut dim = Dimension::new(iri("dim/city"));
        dim.hierarchies.push(hierarchy);
        schema.dimensions.push(dim);
        schema.level_components.push(LevelComponent {
            level: city.clone(),
            cardinality: Cardinality::ManyToOne,
            dimension: Some(iri("dim/city")),
        });
        schema.measures.push(MeasureSpec {
            property: value,
            aggregate: AggregateFunction::Sum,
        });

        // The raw SPARQL navigation really does see the observation twice.
        let doubled = endpoint
            .select(
                "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
                 PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
                 SELECT (SUM(?v) AS ?total) WHERE {
                   ?o <http://example.org/lv/city> ?c . ?o <http://example.org/measure/value> ?v .
                   ?c skos:broader ?d . ?d skos:broader ?k .
                   ?k qb4o:memberOf <http://example.org/lv/country> .
                 }",
            )
            .unwrap()
            .get(0, "total")
            .and_then(|t| t.as_literal().and_then(|l| l.as_integer()))
            .unwrap();
        assert_eq!(doubled, 20, "SPARQL bag semantics count one path twice");

        let cube = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        let map = cube.rollup(&iri("dim/city"), &country).unwrap();
        assert_eq!(map.ambiguous_members(), 1);
        // Rolling up to `district` (two distinct ancestors) is ambiguous
        // too; to `country` (one ancestor, two paths) must also refuse.
        for target in [district, country] {
            let query = CubeQuery {
                rollups: BTreeMap::from([(iri("dim/city"), target)]),
                ..CubeQuery::default()
            };
            assert!(matches!(
                execute(&cube, &query).unwrap_err(),
                CubeStoreError::Unsupported(_)
            ));
        }
    }

    #[test]
    fn query_errors_on_unknown_schema_elements() {
        let cube = build(AggregateFunction::Sum);
        let query = CubeQuery {
            slices: vec![iri("dim/nope")],
            ..CubeQuery::default()
        };
        assert!(matches!(
            execute(&cube, &query).unwrap_err(),
            CubeStoreError::Query(_)
        ));

        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/galaxy"))]),
            ..CubeQuery::default()
        };
        assert!(matches!(
            execute(&cube, &query).unwrap_err(),
            CubeStoreError::Query(_)
        ));

        let query = CubeQuery {
            measure_filters: vec![MeasureFilter::Compare {
                measure: iri("measure/nope"),
                op: CmpOp::Gt,
                value: Term::Literal(Literal::integer(0)),
            }],
            ..CubeQuery::default()
        };
        assert!(matches!(
            execute(&cube, &query).unwrap_err(),
            CubeStoreError::Query(_)
        ));

        let mut query = rollup_query();
        query.member_filters = vec![MemberFilter::Compare {
            dimension: iri("dim/city"),
            level: iri("lv/city"), // not the level in the result
            attribute: iri("attr/countryName"),
            predicate: MemberPredicate::Str {
                op: CmpOp::Eq,
                value: "Alpha".to_string(),
            },
        }];
        assert!(matches!(
            execute(&cube, &query).unwrap_err(),
            CubeStoreError::Query(_)
        ));
    }

    #[test]
    fn cells_are_sorted_canonically() {
        let cube = build(AggregateFunction::Sum);
        let output = execute(&cube, &CubeQuery::default()).unwrap();
        assert_eq!(output.cells.len(), 5);
        let mut sorted = output.cells.clone();
        sorted.sort_by(|a, b| a.coordinates.cmp(&b.coordinates));
        assert_eq!(output.cells, sorted);
    }

    #[test]
    fn chunked_scan_matches_the_sequential_scan_on_any_thread_count() {
        let cube = build(AggregateFunction::Sum);
        let queries = [
            CubeQuery::default(),
            rollup_query(),
            CubeQuery {
                slices: vec![iri("dim/month")],
                rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
                ..CubeQuery::default()
            },
        ];
        for query in &queries {
            let sequential = execute_with_threads(&cube, query, 1).unwrap();
            for threads in [2, 3, 8, 64] {
                assert_eq!(
                    sequential,
                    execute_with_threads(&cube, query, threads).unwrap(),
                    "chunked scan with {threads} workers diverged"
                );
            }
        }
        // Errors surface from workers too: the ambiguous-roll-up refusal.
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        endpoint
            .insert_triples(&[qb4olap::rollup_triple(&member("c1"), &member("K2"))])
            .unwrap();
        let ambiguous = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert!(matches!(
            execute_with_threads(&ambiguous, &rollup_query(), 4).unwrap_err(),
            CubeStoreError::Unsupported(_)
        ));
    }
}
