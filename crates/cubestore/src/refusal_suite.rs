//! The refusal suite: one minimal triggering delta per [`RefusalKind`],
//! proving (a) the classifier reports exactly that kind with a meaningful
//! detail, and (b) the catalog's fallback rebuild restores parity with a
//! from-scratch materialization — and with what SPARQL sees — on the
//! mutated store.
//!
//! The kind → trigger mapping is an exhaustive `match`: adding a
//! fourteenth refusal kind fails compilation here until its minimal
//! trigger (and expected detail) is written down.

use qb4olap::AggregateFunction;
use rdf::vocab::{qb, qb4o, rdf as rdfv, rdfs};
use rdf::{Literal, Term, Triple};
use sparql::{Endpoint, LocalEndpoint};

use crate::catalog::{CubeCatalog, MaintenanceStrategy, RebuildReason};
use crate::executor::{execute, CubeQuery};
use crate::testutil::{fixture, iri, member};
use crate::{MaterializedCube, RefusalKind};

/// One refusal scenario: optional store state established *before* the
/// first build, the minimal refused mutation, and the detail fragment the
/// refusal must carry.
struct Trigger {
    /// Store preparation applied before the first `serve` (e.g. seeding a
    /// dropped observation the build must have classified).
    setup: fn(&LocalEndpoint),
    /// The minimal mutation whose delta the classifier must refuse.
    mutate: fn(&LocalEndpoint),
    /// A fragment the refusal's human-readable detail must contain.
    detail_fragment: &'static str,
}

fn obs(name: &str) -> Term {
    Term::iri(format!("http://example.org/obs/{name}"))
}

fn no_setup(_: &LocalEndpoint) {}

/// The minimal trigger for each refusal kind. Wildcard-free on purpose.
fn trigger_for(kind: RefusalKind) -> Trigger {
    match kind {
        RefusalKind::SchemaStructure => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[Triple::new(
                        Term::Iri(iri("dsdQB4O")),
                        qb4o::has_level(),
                        Term::Iri(iri("lv/quarter")),
                    )])
                    .unwrap();
            },
            detail_fragment: "schema/hierarchy triple inserted",
        },
        RefusalKind::RollupLinkAdded => Trigger {
            setup: no_setup,
            // c3 is the ragged city frozen into the fact columns; giving it
            // a country after the build invalidates its roll-up entries.
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[qb4olap::rollup_triple(&member("c3"), &member("K1"))])
                    .unwrap();
            },
            detail_fragment: "roll-up link added",
        },
        RefusalKind::RollupLinkRemoved => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                assert!(endpoint
                    .store()
                    .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
            },
            detail_fragment: "roll-up link removed",
        },
        RefusalKind::MemberRemoved => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                assert!(endpoint
                    .store()
                    .remove(&qb4olap::member_of_triple(&member("m1"), &iri("lv/month"))));
            },
            detail_fragment: "removed from level",
        },
        RefusalKind::MemberConflict => Trigger {
            setup: no_setup,
            // c1 already sits in the city fact column; declaring it a month
            // member would have changed the build's roll-up maps.
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[qb4olap::member_of_triple(&member("c1"), &iri("lv/month"))])
                    .unwrap();
            },
            detail_fragment: "already present in the fact columns",
        },
        RefusalKind::ObservationMutated => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[Triple::new(
                        obs("o1"),
                        iri("measure/value"),
                        Literal::integer(99),
                    )])
                    .unwrap();
            },
            detail_fragment: "gained a measure value",
        },
        RefusalKind::DroppedObservationMutated => Trigger {
            // Seed an incomplete observation the first build *drops* (no
            // score measure) — then complete it after the build.
            setup: |endpoint| {
                endpoint
                    .insert_triples(&[
                        Triple::new(obs("bad"), rdfv::type_(), Term::Iri(qb::observation())),
                        Triple::new(obs("bad"), qb::data_set(), Term::Iri(iri("ds"))),
                        Triple::new(obs("bad"), iri("lv/city"), member("c1")),
                        Triple::new(obs("bad"), iri("lv/month"), member("m1")),
                        Triple::new(obs("bad"), iri("measure/value"), Literal::integer(1)),
                    ])
                    .unwrap();
            },
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[Triple::new(
                        obs("bad"),
                        iri("measure/score"),
                        Literal::integer(2),
                    )])
                    .unwrap();
            },
            detail_fragment: "dropped observation",
        },
        RefusalKind::IncompleteObservation => Trigger {
            setup: no_setup,
            // A brand-new observation missing one measure, in one batch.
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[
                        Triple::new(obs("o9"), rdfv::type_(), Term::Iri(qb::observation())),
                        Triple::new(obs("o9"), qb::data_set(), Term::Iri(iri("ds"))),
                        Triple::new(obs("o9"), iri("lv/city"), member("c1")),
                        Triple::new(obs("o9"), iri("lv/month"), member("m1")),
                        Triple::new(obs("o9"), iri("measure/value"), Literal::integer(5)),
                    ])
                    .unwrap();
            },
            detail_fragment: "missing measure",
        },
        RefusalKind::MalformedObservation => Trigger {
            setup: no_setup,
            // Complete, but with two city values: a fresh build must pick
            // one, and which one depends on build order.
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[
                        Triple::new(obs("o9"), rdfv::type_(), Term::Iri(qb::observation())),
                        Triple::new(obs("o9"), qb::data_set(), Term::Iri(iri("ds"))),
                        Triple::new(obs("o9"), iri("lv/city"), member("c1")),
                        Triple::new(obs("o9"), iri("lv/city"), member("c2")),
                        Triple::new(obs("o9"), iri("lv/month"), member("m1")),
                        Triple::new(obs("o9"), iri("measure/value"), Literal::integer(5)),
                        Triple::new(obs("o9"), iri("measure/score"), Literal::integer(6)),
                    ])
                    .unwrap();
            },
            detail_fragment: "several values for dimension",
        },
        RefusalKind::AttributeConflict => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[qb4olap::attribute_triple(
                        &member("K1"),
                        &iri("attr/countryName"),
                        &Term::Literal(Literal::string("Zeta")),
                    )])
                    .unwrap();
            },
            detail_fragment: "second value for attribute",
        },
        RefusalKind::AttributeRemoved => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                assert!(endpoint.store().remove(&qb4olap::attribute_triple(
                    &member("K1"),
                    &iri("attr/countryName"),
                    &Term::Literal(Literal::string("Alpha")),
                )));
            },
            detail_fragment: "attribute value removed",
        },
        RefusalKind::UnknownMemberAttribute => Trigger {
            setup: no_setup,
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[qb4olap::attribute_triple(
                        &member("K9"),
                        &iri("attr/countryName"),
                        &Term::Literal(Literal::string("Nine")),
                    )])
                    .unwrap();
            },
            detail_fragment: "unknown member",
        },
        RefusalKind::DatasetLabelChanged => Trigger {
            setup: |endpoint| {
                endpoint
                    .insert_triples(&[Triple::new(
                        Term::Iri(iri("ds")),
                        rdfs::label(),
                        Literal::string("Fixture cube"),
                    )])
                    .unwrap();
            },
            mutate: |endpoint| {
                endpoint
                    .insert_triples(&[Triple::new(
                        Term::Iri(iri("ds")),
                        rdfs::label(),
                        Literal::string("Renamed cube"),
                    )])
                    .unwrap();
            },
            detail_fragment: "dataset label changed",
        },
    }
}

/// Observations SPARQL sees as complete (typed, linked, every dimension
/// and measure bound), counted over the live store.
fn sparql_complete_observations(endpoint: &LocalEndpoint) -> usize {
    endpoint
        .select(
            "SELECT DISTINCT ?o WHERE { \
               ?o <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> \
                  <http://purl.org/linked-data/cube#Observation> . \
               ?o <http://purl.org/linked-data/cube#dataSet> <http://example.org/ds> . \
               ?o <http://example.org/lv/city> ?c . \
               ?o <http://example.org/lv/month> ?m . \
               ?o <http://example.org/measure/value> ?v . \
               ?o <http://example.org/measure/score> ?s . }",
        )
        .expect("the parity count query evaluates")
        .rows
        .len()
}

#[test]
fn every_refusal_kind_has_a_minimal_trigger_and_a_clean_rebuild() {
    for kind in RefusalKind::ALL {
        let trigger = trigger_for(kind);
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        (trigger.setup)(&endpoint);
        let catalog = CubeCatalog::new();
        catalog.serve(&endpoint, &schema).unwrap();

        (trigger.mutate)(&endpoint);
        let rebuilt = catalog.serve(&endpoint, &schema).unwrap();

        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Rebuild,
            "{kind}: the refused delta must fall back to a rebuild"
        );
        let Some(RebuildReason::DeltaRefused(refusal)) = report.reason else {
            panic!("{kind}: expected a delta refusal, got {:?}", report.reason);
        };
        assert_eq!(refusal.kind, kind, "the classifier reports the exact kind");
        assert!(
            refusal.detail.contains(trigger.detail_fragment),
            "{kind}: detail {:?} should mention {:?}",
            refusal.detail,
            trigger.detail_fragment
        );
        assert!(
            refusal.to_string().contains(kind.name()),
            "the rendered refusal names its kind"
        );

        // Parity: the fallback result is bit-identical to a from-scratch
        // materialization of the mutated store…
        let scratch = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(
            execute(&rebuilt, &CubeQuery::default()).unwrap(),
            execute(&scratch, &CubeQuery::default()).unwrap(),
            "{kind}: rebuilt cube must equal a fresh materialization"
        );
        // …and its live rows agree with what SPARQL counts as complete
        // observations on the same store.
        assert_eq!(
            rebuilt.live_row_count(),
            sparql_complete_observations(&endpoint),
            "{kind}: rebuilt cube must serve exactly the rows SPARQL sees"
        );
    }
}

#[test]
fn every_refusal_kind_degrades_to_a_background_rebuild_on_the_snapshot_path() {
    for kind in RefusalKind::ALL {
        let trigger = trigger_for(kind);
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        (trigger.setup)(&endpoint);
        let catalog = CubeCatalog::new();
        let initial = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        let pinned_epoch = initial.epoch();

        (trigger.mutate)(&endpoint);
        // The reader is never blocked on the structural change: it gets
        // the stale-but-consistent pre-mutation pin back immediately
        // while the rebuild runs behind it.
        let stale = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        stale.verify_consistent().unwrap();
        assert_eq!(
            stale.epoch(),
            pinned_epoch,
            "{kind}: the stale pin stays at the pre-mutation epoch"
        );
        assert_eq!(
            execute(stale.cube(), &CubeQuery::default()).unwrap(),
            execute(initial.cube(), &CubeQuery::default()).unwrap(),
            "{kind}: the stale snapshot serves the pinned state unchanged"
        );

        catalog.wait_for_maintenance(&schema.dataset);
        let fresh = catalog.current_snapshot(&schema.dataset).unwrap();
        assert!(!fresh.is_overlaid(), "{kind}: the fold published a clean base");
        assert_eq!(fresh.base_epoch(), endpoint.epoch());
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(
            report.strategy,
            MaintenanceStrategy::Rebuild,
            "{kind}: the background fold is a rebuild"
        );
        let Some(RebuildReason::DeltaRefused(refusal)) = &report.reason else {
            panic!("{kind}: expected a delta refusal, got {:?}", report.reason);
        };
        assert_eq!(refusal.kind, kind, "the classifier reports the exact kind");
        assert!(
            report.overlap.is_some(),
            "{kind}: the fold records the stale-serving overlap window"
        );

        // Parity after the fold: the published base is bit-identical to a
        // from-scratch materialization and agrees with SPARQL row counts.
        let scratch = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(
            execute(fresh.cube(), &CubeQuery::default()).unwrap(),
            execute(&scratch, &CubeQuery::default()).unwrap(),
            "{kind}: folded base must equal a fresh materialization"
        );
        assert_eq!(
            fresh.cube().live_row_count(),
            sparql_complete_observations(&endpoint),
            "{kind}: folded base must serve exactly the rows SPARQL sees"
        );
    }
}

#[test]
fn refused_serves_leave_no_delta_strategy_in_the_reports() {
    for kind in RefusalKind::ALL {
        let trigger = trigger_for(kind);
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        (trigger.setup)(&endpoint);
        let catalog = CubeCatalog::new();
        catalog.serve(&endpoint, &schema).unwrap();
        (trigger.mutate)(&endpoint);
        catalog.serve(&endpoint, &schema).unwrap();
        let strategies: Vec<MaintenanceStrategy> = catalog
            .reports(&schema.dataset)
            .iter()
            .map(|r| r.strategy)
            .collect();
        assert_eq!(
            strategies,
            vec![MaintenanceStrategy::Fresh, MaintenanceStrategy::Rebuild],
            "{kind}: exactly one fresh build and one refusal-rebuild"
        );
    }
}
