//! The live cube catalog: one shared, change-tracked columnar
//! representation per dataset, served to every consumer module.
//!
//! A [`CubeCatalog`] keys [`MaterializedCube`]s by dataset IRI and
//! validates the endpoint's mutation epoch on **every** [`CubeCatalog::serve`]
//! call, so a consumer can never observe a stale cube: if the store moved,
//! the catalog transparently refreshes the entry — replaying the recorded
//! [`rdf::StoreDelta`]s through [`MaterializedCube::apply_delta`] when the
//! change log covers the gap and the delta is appliable, and falling back
//! to a full re-materialization otherwise. Every refresh decision, reason
//! and timing is recorded as a [`MaintenanceReport`].
//!
//! # Non-blocking serving
//!
//! [`CubeCatalog::serve_snapshot`] is the read path that never waits on
//! maintenance: it returns a pinned [`CubeSnapshot`] — the last folded
//! base plus a [`DeltaOverlay`] of everything accreted since — and readers
//! execute against it without holding any catalog lock. Appliable deltas
//! are accreted into the overlay inline in O(delta); structural changes
//! (a refused delta or a change-log gap) and compactions are handed to a
//! **background fold thread** that rebuilds from a frozen
//! [`sparql::Endpoint::background_handle`] and publishes the new base
//! with an atomic swap, while readers keep getting the stale-but-
//! consistent snapshot. Maintenance claims are serialized by one
//! `refreshing` flag per slot: the blocking [`CubeCatalog::serve`] (which
//! still guarantees freshness) waits on the slot's condvar instead of
//! holding the slot lock across the refresh, so a slow fold can never
//! delay a concurrent serve by more than the snapshot-pin cost. The
//! `QB2OLAP_NO_OVERLAY` kill switch ([`overlay_enabled`]) forces the
//! snapshot path down the blocking one for differential runs.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, MutexGuard};
use std::time::{Duration, Instant};

use obs::MetricsRegistry;
use parking_lot::Mutex;
use qb4olap::CubeSchema;
use rdf::Iri;
use sparql::Endpoint;

use crate::build::MaterializedCube;
use crate::error::{CubeStoreError, DeltaRefusal};
use crate::overlay::{member_total, overlay_enabled, CubeSnapshot, DeltaOverlay};

/// How the catalog brought an entry up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// First materialization of the dataset.
    Fresh,
    /// Recorded deltas were replayed onto the existing columns
    /// (copy-on-write: only the components the deltas extended were
    /// copied; removals were tombstoned).
    Delta,
    /// The cube was re-materialized from the endpoint because the deltas
    /// were unappliable or the change log had a coverage gap.
    Rebuild,
    /// The deltas applied, but tombstoned rows had accumulated past the
    /// live-fraction threshold ([`COMPACTION_LIVE_FRACTION`]), so the
    /// catalog re-materialized to reclaim the dead rows.
    Compaction,
    /// Recorded deltas were accreted into a [`DeltaOverlay`] on the
    /// snapshot read path ([`CubeCatalog::serve_snapshot`]): the base cube
    /// was left untouched and readers merge base + overlay at scan time
    /// until a background fold publishes a new base.
    Overlay,
}

impl MaintenanceStrategy {
    /// The strategy's stable lowercase name — the suffix of its
    /// `catalog.refresh.<name>` registry counter.
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceStrategy::Fresh => "fresh",
            MaintenanceStrategy::Delta => "delta",
            MaintenanceStrategy::Rebuild => "rebuild",
            MaintenanceStrategy::Compaction => "compaction",
            MaintenanceStrategy::Overlay => "overlay",
        }
    }
}

/// Why a refresh re-materialized instead of (or after) replaying deltas.
#[derive(Debug, Clone, PartialEq)]
pub enum RebuildReason {
    /// The delta classifier refused; the typed refusal says why (see the
    /// decision table in the [`crate::delta`] module docs).
    DeltaRefused(DeltaRefusal),
    /// The change log does not reach back to the cube's epoch (log
    /// disabled, reset, or trimmed past it).
    ChangeLogGap,
    /// The delta applied, but the live-row fraction fell below
    /// [`COMPACTION_LIVE_FRACTION`]; the cube was compacted.
    LowLiveFraction {
        /// Live rows after the delta replay.
        live_rows: usize,
        /// Physical rows (live + tombstoned) after the delta replay.
        total_rows: usize,
    },
    /// The delta replay failed with a non-refusal error (endpoint or
    /// build failure surfaced mid-apply).
    Error(String),
}

impl fmt::Display for RebuildReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildReason::DeltaRefused(refusal) => write!(f, "{refusal}"),
            RebuildReason::ChangeLogGap => {
                write!(f, "change log does not cover the cube's epoch")
            }
            RebuildReason::LowLiveFraction {
                live_rows,
                total_rows,
            } => write!(
                f,
                "live-row fraction {live_rows}/{total_rows} fell below the compaction threshold"
            ),
            RebuildReason::Error(message) => write!(f, "{message}"),
        }
    }
}

/// One catalog maintenance decision: what was done, why, and how long it
/// took. The experiment harness (E12/E13/E18) and the differential tests
/// read these to prove the delta path is exercised and measurably cheaper.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// The dataset that was refreshed.
    pub dataset: Iri,
    /// Delta replay, full rebuild, compaction, overlay accretion, or
    /// first build.
    pub strategy: MaintenanceStrategy,
    /// For [`MaintenanceStrategy::Rebuild`] and
    /// [`MaintenanceStrategy::Compaction`]: why the columns were
    /// re-materialized.
    pub reason: Option<RebuildReason>,
    /// Wall-clock time of the refresh.
    pub duration: Duration,
    /// The store epoch the entry was at before the refresh.
    pub from_epoch: u64,
    /// The store epoch the entry is at after the refresh.
    pub to_epoch: u64,
    /// Number of store deltas replayed (delta/overlay strategies only).
    pub deltas_applied: usize,
    /// Fact rows appended by the refresh (net new live rows for rebuilds).
    pub rows_appended: usize,
    /// Fact rows removed by the refresh: tombstoned for
    /// [`MaintenanceStrategy::Delta`] / [`MaintenanceStrategy::Overlay`],
    /// net lost live rows for rebuilds.
    pub rows_removed: usize,
    /// Level members added by the refresh.
    pub members_added: usize,
    /// For background folds: how long readers were served the stale
    /// snapshot while this maintenance ran concurrently — the overlap
    /// window between serving and folding. `None` for refreshes done on
    /// the caller's thread, where no stale serving overlaps the work.
    pub overlap: Option<Duration>,
}

/// The live-row fraction below which a delta-refreshed cube is compacted
/// (re-materialized) instead of served: once more than half the physical
/// rows are tombstones, the scan skips more than it reads and the memory
/// overhead of the dead rows exceeds the live data. Compaction goes
/// through [`MaterializedCube::from_endpoint`], so the per-segment zone
/// maps are rebuilt from the surviving rows — dead rows' member codes and
/// min/max bounds (which deltas deliberately never loosen) drop out here.
pub const COMPACTION_LIVE_FRACTION: f64 = 0.5;

/// True if the cube has accumulated enough tombstones to warrant
/// compaction.
fn needs_compaction(cube: &MaterializedCube) -> bool {
    cube.tombstoned_rows() > 0
        && (cube.live_row_count() as f64) < (cube.row_count() as f64) * COMPACTION_LIVE_FRACTION
}

/// A bounded ring of the most recent maintenance reports for one
/// dataset: pushing at capacity evicts the oldest report in O(1)
/// (previously a `Vec::remove(0)` front-shift on every refresh past the
/// 64th).
#[derive(Debug, Clone, Default)]
pub struct ReportLog {
    reports: VecDeque<MaintenanceReport>,
}

impl ReportLog {
    /// Reports retained per dataset.
    pub const CAPACITY: usize = 64;

    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a report, evicting the oldest once [`Self::CAPACITY`] is
    /// reached.
    pub fn push(&mut self, report: MaintenanceReport) {
        if self.reports.len() == Self::CAPACITY {
            self.reports.pop_front();
        }
        self.reports.push_back(report);
    }

    /// Number of retained reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The most recent report.
    pub fn last(&self) -> Option<&MaintenanceReport> {
        self.reports.back()
    }

    /// The retained reports, oldest first.
    pub fn to_vec(&self) -> Vec<MaintenanceReport> {
        self.reports.iter().cloned().collect()
    }
}

struct CatalogEntry {
    /// The last fully-folded cube.
    base: Arc<MaterializedCube>,
    /// The store epoch `base` materializes.
    base_epoch: u64,
    /// Changes accreted since `base` by the snapshot read path.
    overlay: Option<Arc<DeltaOverlay>>,
    reports: ReportLog,
}

impl CatalogEntry {
    fn record(&mut self, report: MaintenanceReport) {
        self.reports.push(report);
    }

    /// The cube consumers should read: base + overlay when an overlay is
    /// accreted, the base alone otherwise.
    fn served_cube(&self) -> &Arc<MaterializedCube> {
        match &self.overlay {
            Some(overlay) => overlay.merged(),
            None => &self.base,
        }
    }

    /// The store epoch the served cube is consistent with.
    fn served_epoch(&self) -> u64 {
        match &self.overlay {
            Some(overlay) => overlay.epoch(),
            None => self.base_epoch,
        }
    }

    fn snapshot(&self) -> CubeSnapshot {
        CubeSnapshot::new(self.base.clone(), self.base_epoch, self.overlay.clone())
    }

    /// Atomically replaces the base with a freshly folded cube: the
    /// overlay (now folded in or superseded) is dropped in the same swap,
    /// so no reader can ever pin a new base with a stale overlay.
    fn publish_base(&mut self, cube: Arc<MaterializedCube>, epoch: u64) {
        self.base = cube;
        self.base_epoch = epoch;
        self.overlay = None;
    }
}

/// A dataset's slot: the entry plus the maintenance claim that serializes
/// refreshes. `refreshing` is the single-writer claim — whoever sets it
/// (a blocking serve, an inline overlay accretion, or a background fold
/// thread) owns maintenance of the slot until it clears the flag and
/// signals `maintenance_done`. The slot mutex itself is only ever held
/// for pointer-swap-sized critical sections, never across endpoint I/O
/// or column work.
#[derive(Default)]
struct SlotInner {
    state: Mutex<SlotState>,
    maintenance_done: Condvar,
}

#[derive(Default)]
struct SlotState {
    entry: Option<CatalogEntry>,
    refreshing: bool,
}

impl SlotInner {
    /// Parks until maintenance signals (with a timeout tick so a fold
    /// thread that died abnormally can never strand waiters forever).
    fn wait<'a>(&self, guard: MutexGuard<'a, SlotState>) -> MutexGuard<'a, SlotState> {
        let (guard, _timed_out) = self
            .maintenance_done
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard
    }

    /// Clears the maintenance claim and wakes every waiter.
    fn release_claim(&self) {
        self.state.lock().refreshing = false;
        self.maintenance_done.notify_all();
    }
}

/// One dataset's slot: `None` entry while the first build is still
/// running.
type EntrySlot = Arc<SlotInner>;

/// Records one maintenance decision into the registry: a per-strategy
/// counter, the refusal kind when a refused delta forced a rebuild,
/// refresh latency, per-field totals, and the live-row fraction of the
/// cube now being served. A free function (not a method) because the
/// background fold thread outlives any `&self` borrow of the catalog.
fn record_report_metrics(
    metrics: &MetricsRegistry,
    report: &MaintenanceReport,
    cube: &MaterializedCube,
) {
    metrics
        .counter(&format!("catalog.refresh.{}", report.strategy.name()))
        .inc();
    if let Some(RebuildReason::DeltaRefused(refusal)) = &report.reason {
        metrics
            .counter(&format!("catalog.refusal.{}", refusal.kind.name()))
            .inc();
    }
    metrics
        .histogram("catalog.refresh.duration_ns")
        .record_duration(report.duration);
    metrics
        .counter("catalog.refresh.deltas_applied")
        .add(report.deltas_applied as u64);
    metrics
        .counter("catalog.refresh.rows_appended")
        .add(report.rows_appended as u64);
    metrics
        .counter("catalog.refresh.rows_removed")
        .add(report.rows_removed as u64);
    let live_fraction = if cube.row_count() == 0 {
        1.0
    } else {
        cube.live_row_count() as f64 / cube.row_count() as f64
    };
    metrics.gauge("catalog.live_fraction").set(live_fraction);
}

/// A shared catalog of live materialized cubes, keyed by dataset IRI.
///
/// Cheap to share (`Arc<CubeCatalog>`); the Querying and Exploration
/// modules of one tool instance hold the same catalog so they serve from
/// one columnar representation. Locking is two-level: the catalog map is
/// only held long enough to find or create a dataset's slot, and each
/// slot's own lock is only held for snapshot pins and publish swaps —
/// refresh work runs outside it under the slot's `refreshing` claim, so
/// a multi-second rebuild of one dataset delays the blocking [`Self::serve`]
/// (which needs the fresh cube anyway) but never a [`Self::serve_snapshot`],
/// and never serving of any other dataset.
#[derive(Default)]
pub struct CubeCatalog {
    inner: Mutex<BTreeMap<Iri, EntrySlot>>,
    metrics: Arc<MetricsRegistry>,
}

impl CubeCatalog {
    /// Creates an empty catalog with its own metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty catalog reporting into an existing registry.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Self {
        Self {
            inner: Mutex::default(),
            metrics,
        }
    }

    /// The registry every serve/refresh decision reports into. The
    /// querying module and explorer of the same tool instance share it,
    /// so one snapshot covers the whole serve path.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Returns the up-to-date cube for `schema`'s dataset, materializing or
    /// refreshing it as needed.
    ///
    /// The first call for a dataset enables change tracking on the endpoint
    /// and builds the cube; later calls compare the endpoint's mutation
    /// epoch with the entry's and replay deltas (or rebuild) when the store
    /// moved. Stale reads are impossible by construction: the epoch is
    /// validated on every call. The refresh itself runs on the caller's
    /// thread but **outside** the slot lock, under the slot's maintenance
    /// claim — a concurrent [`Self::serve_snapshot`] keeps serving the
    /// pinned snapshot meanwhile. For reads that must not wait on
    /// maintenance at all, use [`Self::serve_snapshot`].
    pub fn serve(
        &self,
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
    ) -> Result<Arc<MaterializedCube>, CubeStoreError> {
        let _serve_span = obs::span("catalog.serve");
        self.metrics.counter("catalog.serve.calls").inc();
        let slot = self.slot(&schema.dataset);
        loop {
            let mut st = slot.state.lock();
            match st.entry.as_ref() {
                Some(entry) => {
                    let now = endpoint.epoch();
                    if entry.served_epoch() == now {
                        self.metrics.counter("catalog.serve.hits").inc();
                        return Ok(entry.served_cube().clone());
                    }
                    if st.refreshing {
                        // Maintenance in flight: freshness requires its
                        // result, so wait for the claim and re-examine.
                        st = slot.wait(st);
                        continue;
                    }
                    let old = entry.served_cube().clone();
                    let from_epoch = entry.served_epoch();
                    st.refreshing = true;
                    drop(st);
                    // The actual refresh runs with no lock held.
                    let outcome = self.refresh(endpoint, schema, &old, from_epoch, now);
                    let result = match outcome {
                        Ok((cube, report)) => {
                            let mut st = slot.state.lock();
                            st.refreshing = false;
                            let entry =
                                st.entry.as_mut().expect("entry present while claim held");
                            entry.publish_base(cube.clone(), report.to_epoch);
                            record_report_metrics(&self.metrics, &report, &cube);
                            entry.record(report);
                            Ok(cube)
                        }
                        Err(error) => {
                            slot.state.lock().refreshing = false;
                            Err(error)
                        }
                    };
                    slot.maintenance_done.notify_all();
                    return result;
                }
                None => {
                    if st.refreshing {
                        st = slot.wait(st);
                        continue;
                    }
                    st.refreshing = true;
                    drop(st);
                    let outcome = self.first_build(endpoint, schema);
                    let result = match outcome {
                        Ok((cube, epoch, report)) => {
                            let mut st = slot.state.lock();
                            st.refreshing = false;
                            record_report_metrics(&self.metrics, &report, &cube);
                            let mut reports = ReportLog::new();
                            reports.push(report);
                            st.entry = Some(CatalogEntry {
                                base: cube.clone(),
                                base_epoch: epoch,
                                overlay: None,
                                reports,
                            });
                            Ok(cube)
                        }
                        Err(error) => {
                            slot.state.lock().refreshing = false;
                            Err(error)
                        }
                    };
                    slot.maintenance_done.notify_all();
                    return result;
                }
            }
        }
    }

    /// First materialization of a dataset: enable change tracking, then
    /// build. The epoch is read *before* the build: a mutation racing with
    /// the build is re-examined (and, being already materialized, resolved
    /// by a rebuild) rather than silently skipped.
    fn first_build(
        &self,
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
    ) -> Result<(Arc<MaterializedCube>, u64, MaintenanceReport), CubeStoreError> {
        endpoint.enable_change_tracking();
        let epoch = endpoint.epoch();
        let started = Instant::now();
        let cube = {
            let _build_span = obs::span("catalog.fresh-build");
            Arc::new(MaterializedCube::from_endpoint(endpoint, schema)?)
        };
        let report = MaintenanceReport {
            dataset: schema.dataset.clone(),
            strategy: MaintenanceStrategy::Fresh,
            reason: None,
            duration: started.elapsed(),
            from_epoch: epoch,
            to_epoch: epoch,
            deltas_applied: 0,
            rows_appended: cube.row_count(),
            rows_removed: 0,
            members_added: member_total(&cube),
            overlap: None,
        };
        Ok((cube, epoch, report))
    }

    /// Brings `old` (the served cube at `from_epoch`) up to date on the
    /// caller's thread: delta replay when possible, compaction or rebuild
    /// otherwise. Runs with no catalog lock held; the caller owns the
    /// slot's maintenance claim.
    fn refresh(
        &self,
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
        old: &Arc<MaterializedCube>,
        from_epoch: u64,
        now: u64,
    ) -> Result<(Arc<MaterializedCube>, MaintenanceReport), CubeStoreError> {
        let started = Instant::now();
        let old_rows = old.row_count();
        let old_tombstoned = old.tombstoned_rows();
        let old_live = old.live_row_count();
        let old_members = member_total(old);
        let (cube, strategy, reason, deltas_applied, to_epoch) =
            match endpoint.deltas_since(from_epoch) {
                Some(deltas) => {
                    // The epoch the replay catches the entry up to:
                    // the last recorded delta (mutations racing in
                    // after `now` was read are replayed next time).
                    let caught_up = deltas.last().map(|d| d.epoch).unwrap_or(now);
                    let replay = {
                        let _replay_span = obs::span("catalog.delta-replay");
                        old.apply_delta(&deltas)
                    };
                    match replay {
                        Ok(cube) if needs_compaction(&cube) => {
                            // The delta applied, but the tombstones
                            // it (and earlier refreshes) left now
                            // dominate the columns: re-materialize
                            // while the reason is recorded.
                            let reason = RebuildReason::LowLiveFraction {
                                live_rows: cube.live_row_count(),
                                total_rows: cube.row_count(),
                            };
                            let rebuilt = {
                                let _rebuild_span = obs::span("catalog.rebuild");
                                MaterializedCube::from_endpoint(endpoint, schema)?
                            };
                            (
                                rebuilt,
                                MaintenanceStrategy::Compaction,
                                Some(reason),
                                deltas.len(),
                                now,
                            )
                        }
                        Ok(cube) => {
                            (cube, MaintenanceStrategy::Delta, None, deltas.len(), caught_up)
                        }
                        Err(error) => {
                            let reason = match error {
                                CubeStoreError::DeltaUnsupported(refusal) => {
                                    RebuildReason::DeltaRefused(refusal)
                                }
                                other => RebuildReason::Error(other.to_string()),
                            };
                            let rebuilt = {
                                let _rebuild_span = obs::span("catalog.rebuild");
                                MaterializedCube::from_endpoint(endpoint, schema)?
                            };
                            (
                                rebuilt,
                                MaintenanceStrategy::Rebuild,
                                Some(reason),
                                deltas.len(),
                                now,
                            )
                        }
                    }
                }
                None => {
                    let rebuilt = {
                        let _rebuild_span = obs::span("catalog.rebuild");
                        MaterializedCube::from_endpoint(endpoint, schema)?
                    };
                    (
                        rebuilt,
                        MaintenanceStrategy::Rebuild,
                        Some(RebuildReason::ChangeLogGap),
                        0,
                        now,
                    )
                }
            };
        let cube = Arc::new(cube);
        // Appends grow the physical rows; removals grow the
        // tombstone count. Rebuilds reset both, so they report the
        // net live-row movement instead.
        let (rows_appended, rows_removed) = match strategy {
            MaintenanceStrategy::Delta => (
                cube.row_count().saturating_sub(old_rows),
                cube.tombstoned_rows().saturating_sub(old_tombstoned),
            ),
            _ => (
                cube.live_row_count().saturating_sub(old_live),
                old_live.saturating_sub(cube.live_row_count()),
            ),
        };
        let report = MaintenanceReport {
            dataset: schema.dataset.clone(),
            strategy,
            reason,
            duration: started.elapsed(),
            from_epoch,
            to_epoch,
            deltas_applied,
            rows_appended,
            rows_removed,
            members_added: member_total(&cube).saturating_sub(old_members),
            overlap: None,
        };
        Ok((cube, report))
    }

    /// Returns a pinned [`CubeSnapshot`] for `schema`'s dataset **without
    /// ever waiting on maintenance**: the caller gets the current base +
    /// overlay immediately and executes against it lock-free.
    ///
    /// When the store moved, the catalog catches up in the cheapest way
    /// that does not block the reader:
    ///
    /// * appliable deltas are **accreted inline** into a new overlay in
    ///   O(delta) — this serve returns the caught-up snapshot, and the
    ///   refresh is recorded as [`MaintenanceStrategy::Overlay`];
    /// * structural changes (refused delta, change-log gap) hand the
    ///   rebuild to a **background fold thread** working from the frozen
    ///   [`sparql::Endpoint::background_handle`]; this serve — and every
    ///   one until the fold publishes — returns the stale-but-consistent
    ///   pinned snapshot (`catalog.overlay.stale_serves` counts them, the
    ///   `catalog.overlay.lag` gauge tracks how far behind they are);
    /// * tombstones past [`COMPACTION_LIVE_FRACTION`] likewise compact in
    ///   the background while the overlay keeps serving.
    ///
    /// Endpoints without a background handle (e.g. the conservative
    /// wrappers) degrade structural maintenance to the blocking path, and
    /// the `QB2OLAP_NO_OVERLAY` kill switch degrades every call to
    /// [`Self::serve`] — results are bit-identical either way, which the
    /// overlay differential campaigns pin.
    pub fn serve_snapshot(
        &self,
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
    ) -> Result<CubeSnapshot, CubeStoreError> {
        let _snapshot_span = obs::span("catalog.serve-snapshot");
        self.metrics.counter("catalog.overlay.serve_calls").inc();
        if !overlay_enabled() {
            self.serve(endpoint, schema)?;
            return Ok(self
                .current_snapshot(&schema.dataset)
                .expect("entry exists after a successful serve"));
        }
        let slot = self.slot(&schema.dataset);
        {
            let mut st = slot.state.lock();
            if let Some(entry) = st.entry.as_ref() {
                let now = endpoint.epoch();
                let pinned = entry.snapshot();
                let lag = now.saturating_sub(pinned.epoch());
                self.metrics.gauge("catalog.overlay.lag").set(lag as f64);
                if lag == 0 {
                    self.metrics.counter("catalog.overlay.hits").inc();
                    return Ok(pinned);
                }
                if st.refreshing {
                    // Maintenance already in flight: serve the stale pin
                    // rather than wait for it.
                    self.metrics.counter("catalog.overlay.stale_serves").inc();
                    return Ok(pinned);
                }
                st.refreshing = true;
                drop(st);
                return self.accrete_or_fold(endpoint, schema, &slot, pinned, now);
            }
        }
        // First build: there is no stale snapshot to serve meanwhile, so
        // this one call is blocking by necessity.
        self.serve(endpoint, schema)?;
        Ok(self
            .current_snapshot(&schema.dataset)
            .expect("entry exists after a successful serve"))
    }

    /// The catch-up half of [`Self::serve_snapshot`]. Runs with the slot's
    /// maintenance claim held and no lock: accretes appliable deltas into
    /// the overlay inline, or hands structural work to a background fold.
    fn accrete_or_fold(
        &self,
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
        slot: &EntrySlot,
        pinned: CubeSnapshot,
        now: u64,
    ) -> Result<CubeSnapshot, CubeStoreError> {
        let from_epoch = pinned.epoch();
        let started = Instant::now();
        let accreted = match endpoint.deltas_since(from_epoch) {
            Some(deltas) => {
                let caught_up = deltas.last().map(|d| d.epoch).unwrap_or(now);
                let merged = {
                    let _accrete_span = obs::span("catalog.overlay-accrete");
                    pinned.cube().apply_delta(&deltas)
                };
                match merged {
                    Ok(merged) => Ok((Arc::new(merged), caught_up, deltas.len())),
                    Err(CubeStoreError::DeltaUnsupported(refusal)) => {
                        Err(RebuildReason::DeltaRefused(refusal))
                    }
                    Err(other) => {
                        // Non-refusal failure: release the claim and
                        // surface the error (the blocking path does the
                        // same after its rebuild attempt fails).
                        slot.release_claim();
                        return Err(other);
                    }
                }
            }
            None => Err(RebuildReason::ChangeLogGap),
        };
        match accreted {
            Ok((merged, caught_up, deltas_applied)) => {
                let prior_deltas =
                    pinned.overlay().map(|o| o.deltas_applied()).unwrap_or(0);
                let overlay = Arc::new(DeltaOverlay::new(
                    pinned.base(),
                    pinned.base_epoch(),
                    merged.clone(),
                    caught_up,
                    prior_deltas,
                    deltas_applied,
                ));
                let report = MaintenanceReport {
                    dataset: schema.dataset.clone(),
                    strategy: MaintenanceStrategy::Overlay,
                    reason: None,
                    duration: started.elapsed(),
                    from_epoch,
                    to_epoch: caught_up,
                    deltas_applied,
                    rows_appended: merged.row_count().saturating_sub(pinned.cube().row_count()),
                    rows_removed: merged
                        .tombstoned_rows()
                        .saturating_sub(pinned.cube().tombstoned_rows()),
                    members_added: member_total(&merged)
                        .saturating_sub(member_total(pinned.cube())),
                    overlap: None,
                };
                let wants_compaction = needs_compaction(&merged);
                let mut st = slot.state.lock();
                st.refreshing = false;
                let entry = st.entry.as_mut().expect("entry present while claim held");
                entry.overlay = Some(overlay.clone());
                record_report_metrics(&self.metrics, &report, &merged);
                self.metrics.counter("catalog.overlay.accretions").inc();
                self.metrics
                    .gauge("catalog.overlay.rows")
                    .set(overlay.rows_appended() as f64);
                entry.record(report);
                let snapshot = entry.snapshot();
                if wants_compaction {
                    if let Some(handle) = endpoint.background_handle() {
                        // Tombstones dominate: fold in the background.
                        // Readers keep the overlay until the compacted
                        // base lands.
                        let reason = RebuildReason::LowLiveFraction {
                            live_rows: merged.live_row_count(),
                            total_rows: merged.row_count(),
                        };
                        st.refreshing = true;
                        drop(st);
                        self.spawn_fold(
                            slot.clone(),
                            schema.clone(),
                            handle,
                            MaintenanceStrategy::Compaction,
                            reason,
                        );
                        return Ok(snapshot);
                    }
                }
                drop(st);
                slot.maintenance_done.notify_all();
                Ok(snapshot)
            }
            Err(reason) => {
                // Structural change: the overlay cannot absorb it. Rebuild
                // in the background from a frozen store handle and keep
                // serving the stale pin meanwhile.
                match endpoint.background_handle() {
                    Some(handle) => {
                        self.metrics.counter("catalog.overlay.stale_serves").inc();
                        self.spawn_fold(
                            slot.clone(),
                            schema.clone(),
                            handle,
                            MaintenanceStrategy::Rebuild,
                            reason,
                        );
                        Ok(pinned)
                    }
                    None => {
                        // No epoch-consistent handle (conservative
                        // endpoints): degrade to the blocking path.
                        slot.release_claim();
                        self.serve(endpoint, schema)?;
                        Ok(self
                            .current_snapshot(&schema.dataset)
                            .expect("entry exists after a successful serve"))
                    }
                }
            }
        }
    }

    /// Spawns the background fold thread. The caller must hold the slot's
    /// maintenance claim; the thread inherits it and releases it when the
    /// fold publishes (or fails). The fold reads from `handle` — a frozen,
    /// epoch-consistent store copy — so a rebuild racing live writers
    /// still materializes one well-defined state.
    fn spawn_fold(
        &self,
        slot: EntrySlot,
        schema: CubeSchema,
        handle: Arc<dyn Endpoint + Send + Sync>,
        strategy: MaintenanceStrategy,
        reason: RebuildReason,
    ) {
        self.metrics.counter("catalog.overlay.folds_started").inc();
        let metrics = self.metrics.clone();
        std::thread::spawn(move || {
            let started = Instant::now();
            // catch_unwind so a panicking build can never strand the
            // maintenance claim (waiters also tick on a timeout, but the
            // claim must still be released).
            let built = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let _fold_span = obs::span("catalog.fold");
                let target_epoch = handle.epoch();
                let _rebuild_span = obs::span("catalog.rebuild");
                MaterializedCube::from_endpoint(handle.as_ref(), &schema)
                    .map(|cube| (Arc::new(cube), target_epoch))
            }));
            let mut st = slot.state.lock();
            st.refreshing = false;
            match built {
                Ok(Ok((cube, target_epoch))) => {
                    if let Some(entry) = st.entry.as_mut() {
                        let old_live = entry.served_cube().live_row_count();
                        let old_members = member_total(entry.served_cube());
                        let window = started.elapsed();
                        let report = MaintenanceReport {
                            dataset: schema.dataset.clone(),
                            strategy,
                            reason: Some(reason),
                            duration: window,
                            from_epoch: entry.served_epoch(),
                            to_epoch: target_epoch,
                            deltas_applied: 0,
                            rows_appended: cube.live_row_count().saturating_sub(old_live),
                            rows_removed: old_live.saturating_sub(cube.live_row_count()),
                            members_added: member_total(&cube).saturating_sub(old_members),
                            overlap: Some(window),
                        };
                        entry.publish_base(cube.clone(), target_epoch);
                        record_report_metrics(&metrics, &report, &cube);
                        entry.record(report);
                        metrics.counter("catalog.overlay.folds").inc();
                        metrics.gauge("catalog.overlay.rows").set(0.0);
                    }
                }
                Ok(Err(_)) | Err(_) => {
                    // The entry stays as it was: stale but consistent.
                    // The next blocking serve retries the rebuild inline
                    // and surfaces the error to its caller.
                    metrics.counter("catalog.overlay.fold_failures").inc();
                }
            }
            drop(st);
            slot.maintenance_done.notify_all();
        });
    }

    /// The currently pinned snapshot of a dataset (base + overlay),
    /// without refreshing or waiting — exactly what a concurrent
    /// [`Self::serve_snapshot`] would be handed if the store had not
    /// moved. `None` until the first build completes.
    pub fn current_snapshot(&self, dataset: &Iri) -> Option<CubeSnapshot> {
        self.existing_slot(dataset)
            .and_then(|slot| slot.state.lock().entry.as_ref().map(|entry| entry.snapshot()))
    }

    /// True while a maintenance claim (refresh, accretion, or background
    /// fold) is in flight for the dataset.
    pub fn maintenance_in_flight(&self, dataset: &Iri) -> bool {
        self.existing_slot(dataset)
            .is_some_and(|slot| slot.state.lock().refreshing)
    }

    /// Blocks until no maintenance is in flight for the dataset. Tests,
    /// benches and oracles use this to fence "fold-then-serve" against the
    /// background fold; serving paths never need it.
    pub fn wait_for_maintenance(&self, dataset: &Iri) {
        let Some(slot) = self.existing_slot(dataset) else {
            return;
        };
        let mut st = slot.state.lock();
        while st.refreshing {
            st = slot.wait(st);
        }
    }

    /// Finds or creates a dataset's slot, holding the map lock only for
    /// the lookup.
    fn slot(&self, dataset: &Iri) -> EntrySlot {
        self.inner.lock().entry(dataset.clone()).or_default().clone()
    }

    /// A dataset's slot if one exists, without creating it.
    fn existing_slot(&self, dataset: &Iri) -> Option<EntrySlot> {
        self.inner.lock().get(dataset).cloned()
    }

    /// The maintenance history of a dataset (oldest first, capped at
    /// [`ReportLog::CAPACITY`]).
    pub fn reports(&self, dataset: &Iri) -> Vec<MaintenanceReport> {
        self.existing_slot(dataset)
            .and_then(|slot| {
                slot.state
                    .lock()
                    .entry
                    .as_ref()
                    .map(|entry| entry.reports.to_vec())
            })
            .unwrap_or_default()
    }

    /// The most recent maintenance report of a dataset.
    pub fn last_report(&self, dataset: &Iri) -> Option<MaintenanceReport> {
        self.existing_slot(dataset).and_then(|slot| {
            slot.state
                .lock()
                .entry
                .as_ref()
                .and_then(|entry| entry.reports.last().cloned())
        })
    }

    /// The datasets currently materialized.
    pub fn datasets(&self) -> Vec<Iri> {
        self.inner.lock().keys().cloned().collect()
    }

    /// The cube currently served for a dataset (base + overlay when one is
    /// accreted), without refreshing it. Useful for inspection; consumers
    /// should go through [`Self::serve`] or [`Self::serve_snapshot`].
    pub fn peek(&self, dataset: &Iri) -> Option<Arc<MaterializedCube>> {
        self.existing_slot(dataset).and_then(|slot| {
            slot.state
                .lock()
                .entry
                .as_ref()
                .map(|entry| entry.served_cube().clone())
        })
    }

    /// Drops a dataset's entry; the next [`Self::serve`] rebuilds it.
    pub fn evict(&self, dataset: &Iri) {
        self.inner.lock().remove(dataset);
    }
}

impl std::fmt::Debug for CubeCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CubeCatalog")
            .field("datasets", &self.datasets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use qb4olap::AggregateFunction;
    use rdf::Term;
    use sparql::LocalEndpoint;

    use crate::executor::{execute, CubeQuery};
    use crate::testutil::{fixture, iri, member, observation_triples};

    use super::*;

    fn setup() -> (LocalEndpoint, qb4olap::CubeSchema, CubeCatalog) {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        (endpoint, schema, CubeCatalog::new())
    }

    #[test]
    fn first_serve_materializes_and_enables_tracking() {
        let (endpoint, schema, catalog) = setup();
        assert!(!endpoint.store().change_log_enabled());
        let cube = catalog.serve(&endpoint, &schema).unwrap();
        assert_eq!(cube.row_count(), 5);
        assert!(endpoint.store().change_log_enabled());
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Fresh);
        assert_eq!(report.rows_appended, 5);
        assert!(report.overlap.is_none(), "caller-thread build: no overlap window");
        assert_eq!(catalog.datasets(), vec![schema.dataset.clone()]);
        assert!(catalog.peek(&schema.dataset).is_some());
    }

    #[test]
    fn unchanged_store_serves_the_same_cube_without_queries() {
        let (endpoint, schema, catalog) = setup();
        let first = catalog.serve(&endpoint, &schema).unwrap();
        let queries = endpoint.queries_executed();
        let second = catalog.serve(&endpoint, &schema).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same shared columns");
        assert_eq!(endpoint.queries_executed(), queries, "no SPARQL issued");
        assert_eq!(catalog.reports(&schema.dataset).len(), 1, "no refresh recorded");
    }

    #[test]
    fn observation_append_refreshes_via_the_delta_path() {
        let (endpoint, schema, catalog) = setup();
        let stale = catalog.serve(&endpoint, &schema).unwrap();
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();

        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        assert!(!Arc::ptr_eq(&stale, &fresh));
        assert_eq!(fresh.row_count(), 6);
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Delta);
        assert_eq!(report.rows_appended, 1);
        assert_eq!(report.deltas_applied, 1);
        assert!(report.reason.is_none());
        assert!(report.to_epoch > report.from_epoch);

        // The refreshed cube serves the new value.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        let k1m1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K1"), member("m1")])
            .unwrap();
        assert_eq!(k1m1.values[0], Some(Term::integer(13)), "10 + 3");

        // Serving again without further mutation reuses the refreshed cube.
        let again = catalog.serve(&endpoint, &schema).unwrap();
        assert!(Arc::ptr_eq(&fresh, &again));
    }

    #[test]
    fn unappliable_deltas_fall_back_to_a_reported_rebuild() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Cut a roll-up link: the ragged mutation the delta path refuses.
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
        let reason = report.reason.unwrap();
        assert!(
            matches!(
                &reason,
                RebuildReason::DeltaRefused(refusal)
                    if refusal.kind == crate::RefusalKind::RollupLinkRemoved
            ),
            "{reason}"
        );
        assert!(reason.to_string().contains("roll-up link removed"));
        // c1 is now ragged: its observations drop out of the country roll-up.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        assert!(!output.cells.iter().any(|c| c.coordinates[0] == member("K1")));
    }

    #[test]
    fn change_log_gaps_fall_back_to_a_rebuild() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Drop the log out from under the catalog, then mutate.
        endpoint.store().disable_change_log();
        endpoint.insert_triples(&observation_triples("o6", "c2", "m2", 2, 2)).unwrap();
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        assert_eq!(fresh.row_count(), 6);
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
        assert_eq!(report.reason, Some(RebuildReason::ChangeLogGap));
        assert!(report.reason.unwrap().to_string().contains("change log"));
    }

    #[test]
    fn tombstoned_removal_refreshes_via_the_delta_path() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Remove one observation completely, in one batch → one delta
        // (observation_triples yields exactly the six triples the fixture
        // observation was built from).
        let removed = endpoint
            .store()
            .remove_all(&observation_triples("o3", "c2", "m1", 5, 1));
        assert_eq!(removed, 6);
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Delta);
        assert_eq!(report.rows_removed, 1);
        assert_eq!(report.rows_appended, 0);
        assert!(report.reason.is_none());
        assert_eq!(fresh.live_row_count(), 4);
        assert_eq!(fresh.tombstoned_rows(), 1);
        // The removed observation's cell is gone from query results.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates == vec![member("K2"), member("m1")]));
    }

    #[test]
    fn partial_observation_removal_refreshes_via_the_delta_path() {
        use rdf::Triple;

        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Strip ONE measure value of o3 — previously an unappliable
        // partial removal (rebuild); now the row tombstones and the
        // fragment is recorded as dropped, all in O(delta).
        let o3 = Term::iri("http://example.org/obs/o3");
        assert!(endpoint.store().remove(&Triple::new(
            o3.clone(),
            iri("measure/value"),
            rdf::Literal::integer(5)
        )));
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Delta);
        assert_eq!(report.rows_removed, 1);
        assert!(report.reason.is_none());
        assert_eq!(fresh.live_row_count(), 4);
        assert_eq!(fresh.tombstoned_rows(), 1);
        assert!(!fresh.is_observation(&o3));
        // The fragment's cell is gone from query results.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates == vec![member("K2"), member("m1")]));
    }

    #[test]
    fn accumulated_tombstones_trigger_a_reported_compaction() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Remove three of the five observations (each as one whole-batch
        // delta): live 2/5 < the 0.5 threshold, so the serve must apply
        // the deltas, notice the fraction and compact.
        for (name, city, month, value, score) in
            [("o1", "c1", "m1", 10, 4), ("o3", "c2", "m1", 5, 1), ("o4", "c3", "m1", 100, 9)]
        {
            let removed = endpoint
                .store()
                .remove_all(&observation_triples(name, city, month, value, score));
            assert_eq!(removed, 6);
        }
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Compaction);
        assert_eq!(
            report.reason,
            Some(RebuildReason::LowLiveFraction {
                live_rows: 2,
                total_rows: 5
            })
        );
        assert_eq!(report.rows_removed, 3);
        // The compacted cube is dense again: no tombstones, 2 physical rows.
        assert_eq!(fresh.row_count(), 2);
        assert_eq!(fresh.tombstoned_rows(), 0);
        // Compaction rebuilds the zone maps from scratch: they cover only
        // the surviving rows and pass the exact-recomputation checker.
        fresh.verify_zone_invariants().unwrap();
        assert_eq!(fresh.zone_maps().rows(), 2);
        let output = execute(&fresh, &CubeQuery::default()).unwrap();
        assert_eq!(output.cells.len(), 2);
    }

    fn dummy_report(from_epoch: u64) -> MaintenanceReport {
        MaintenanceReport {
            dataset: iri("dataset/sales"),
            strategy: MaintenanceStrategy::Delta,
            reason: None,
            duration: Duration::from_micros(from_epoch),
            from_epoch,
            to_epoch: from_epoch + 1,
            deltas_applied: 1,
            rows_appended: 1,
            rows_removed: 0,
            members_added: 0,
            overlap: None,
        }
    }

    #[test]
    fn report_log_evicts_oldest_first_at_capacity() {
        let mut log = ReportLog::new();
        assert!(log.is_empty());
        let overflow = 10;
        for epoch in 0..(ReportLog::CAPACITY + overflow) as u64 {
            log.push(dummy_report(epoch));
        }
        assert_eq!(log.len(), ReportLog::CAPACITY, "capped at capacity");
        let reports = log.to_vec();
        assert_eq!(
            reports.first().unwrap().from_epoch,
            overflow as u64,
            "the oldest reports were evicted first"
        );
        assert_eq!(
            reports.last().unwrap().from_epoch,
            (ReportLog::CAPACITY + overflow - 1) as u64,
            "the newest report is retained"
        );
        assert_eq!(log.last().unwrap().from_epoch, reports.last().unwrap().from_epoch);
        // Order inside the ring is strictly oldest → newest.
        assert!(reports.windows(2).all(|w| w[0].from_epoch + 1 == w[1].from_epoch));
    }

    #[test]
    fn serve_report_retention_is_capped_via_the_ring() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        for round in 0..(ReportLog::CAPACITY + 5) {
            endpoint
                .insert_triples(&observation_triples(
                    &format!("ring{round}"),
                    "c1",
                    "m1",
                    1,
                    1,
                ))
                .unwrap();
            catalog.serve(&endpoint, &schema).unwrap();
        }
        let reports = catalog.reports(&schema.dataset);
        assert_eq!(reports.len(), ReportLog::CAPACITY);
        // All retained refreshes are the appends — the Fresh build aged out.
        assert!(reports.iter().all(|r| r.strategy == MaintenanceStrategy::Delta));
    }

    #[test]
    fn serve_decisions_feed_the_metrics_registry() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Delta append, then a refused delta (cut roll-up link) → rebuild.
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();
        catalog.serve(&endpoint, &schema).unwrap();
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
        catalog.serve(&endpoint, &schema).unwrap();
        // Unchanged serve → hit.
        catalog.serve(&endpoint, &schema).unwrap();

        let snapshot = catalog.metrics().snapshot();
        assert_eq!(snapshot.counter("catalog.refresh.fresh"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.delta"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.rebuild"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.compaction"), 0);
        assert_eq!(snapshot.counter("catalog.refusal.rollup-link-removed"), 1);
        assert_eq!(snapshot.counter("catalog.serve.calls"), 4);
        assert_eq!(snapshot.counter("catalog.serve.hits"), 1);
        assert_eq!(snapshot.gauge("catalog.live_fraction"), Some(1.0));
        let refresh = snapshot.histogram("catalog.refresh.duration_ns").unwrap();
        assert_eq!(refresh.count, 3, "fresh + delta + rebuild all timed");
    }

    #[test]
    fn serve_emits_a_nested_span_tree() {
        let collector = Arc::new(obs::CollectingSubscriber::new());
        obs::with_subscriber(collector.clone(), || {
            let (endpoint, schema, catalog) = setup();
            catalog.serve(&endpoint, &schema).unwrap();
            endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();
            catalog.serve(&endpoint, &schema).unwrap();
            endpoint.store().disable_change_log();
            endpoint.insert_triples(&observation_triples("o7", "c2", "m2", 2, 2)).unwrap();
            catalog.serve(&endpoint, &schema).unwrap();
        });
        // The builds issue SPARQL queries, so sparql.parse/sparql.evaluate
        // spans appear nested (depth 2) under the build spans; the catalog
        // layer of the tree is what this test pins down.
        let records = collector.records();
        assert!(
            records
                .iter()
                .any(|r| r.name.starts_with("sparql.") && r.depth == 2),
            "endpoint spans nest under the build spans"
        );
        let spans: Vec<(&str, usize)> = records
            .iter()
            .filter(|r| r.name.starts_with("catalog."))
            .map(|r| (r.name, r.depth))
            .collect();
        assert_eq!(
            spans,
            vec![
                ("catalog.serve", 0),
                ("catalog.fresh-build", 1),
                ("catalog.serve", 0),
                ("catalog.delta-replay", 1),
                ("catalog.serve", 0),
                ("catalog.rebuild", 1),
            ],
            "each serve span contains its refresh-path span"
        );
    }

    #[test]
    fn eviction_forces_a_fresh_build() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        catalog.evict(&schema.dataset);
        assert!(catalog.peek(&schema.dataset).is_none());
        catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Fresh);
    }

    #[test]
    fn conservative_snapshot_endpoint_pins_the_first_build() {
        use sparql::ConservativeEndpoint;

        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let conservative = ConservativeEndpoint::new(endpoint);
        let catalog = CubeCatalog::new();

        let first = catalog.serve(&conservative, &schema).unwrap();
        assert_eq!(first.row_count(), 5);
        assert_eq!(
            catalog.last_report(&schema.dataset).unwrap().strategy,
            MaintenanceStrategy::Fresh
        );

        // Mutate through the wrapper: the store really moves, but the
        // snapshot-mode epoch stays 0, so the catalog must keep serving
        // the original build — never a delta, never a rebuild.
        conservative
            .insert_triples(&observation_triples("o6", "c1", "m1", 3, 3))
            .unwrap();
        assert!(conservative.inner().epoch() > 0, "the store itself moved");

        let second = catalog.serve(&conservative, &schema).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "pinned to the first build");
        assert_eq!(second.row_count(), 5, "the mutation stays invisible");
        assert_eq!(
            catalog.reports(&schema.dataset).len(),
            1,
            "no refresh was ever attempted"
        );
    }

    #[test]
    fn conservative_epoch_endpoint_degrades_to_rebuild_per_change() {
        use sparql::ConservativeEndpoint;

        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let conservative = ConservativeEndpoint::with_epochs(endpoint);
        let catalog = CubeCatalog::new();
        catalog.serve(&conservative, &schema).unwrap();

        // Two separate mutations, two serves: every epoch change must
        // degrade to a change-log-gap rebuild — the wrapper reports
        // movement but never surfaces deltas.
        for (round, obs) in [("o6", 6usize), ("o7", 7)] {
            conservative
                .insert_triples(&observation_triples(round, "c2", "m2", 2, 2))
                .unwrap();
            let fresh = catalog.serve(&conservative, &schema).unwrap();
            assert_eq!(fresh.row_count(), obs, "the rebuild sees every row");
            let report = catalog.last_report(&schema.dataset).unwrap();
            assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
            assert_eq!(report.reason, Some(RebuildReason::ChangeLogGap));
            assert_eq!(report.deltas_applied, 0);

            // Degraded, not wrong: the rebuilt cube matches a from-scratch
            // materialization of the same store.
            let scratch =
                MaterializedCube::from_endpoint(&conservative, &schema).unwrap();
            assert_eq!(
                execute(&fresh, &CubeQuery::default()).unwrap(),
                execute(&scratch, &CubeQuery::default()).unwrap()
            );
        }
        assert!(
            catalog
                .reports(&schema.dataset)
                .iter()
                .all(|r| r.strategy != MaintenanceStrategy::Delta),
            "the delta path must be unreachable through a conservative endpoint"
        );
    }

    // ---- snapshot / overlay serving -----------------------------------

    #[test]
    fn serve_snapshot_accretes_appends_into_an_overlay() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();

        let snapshot = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        snapshot.verify_consistent().unwrap();
        assert!(snapshot.is_overlaid(), "the append lives in the overlay");
        assert_eq!(snapshot.base().row_count(), 5, "the base is untouched");
        assert_eq!(snapshot.cube().row_count(), 6);
        assert_eq!(snapshot.epoch(), endpoint.epoch());
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Overlay);
        assert_eq!(report.rows_appended, 1);
        assert!(report.overlap.is_none());

        // Overlay-served results are bit-identical to fold-then-serve
        // (a scratch materialization of the same store state).
        let scratch = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(
            execute(snapshot.cube(), &CubeQuery::default()).unwrap(),
            execute(&scratch, &CubeQuery::default()).unwrap()
        );
        // A blocking serve sees the caught-up overlay as fresh state: it
        // serves the merged cube as a hit rather than folding eagerly.
        let served = catalog.serve(&endpoint, &schema).unwrap();
        assert!(Arc::ptr_eq(&served, snapshot.cube()));
    }

    #[test]
    fn overlay_accretion_is_cumulative_until_a_fold() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();
        let first = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        endpoint.insert_triples(&observation_triples("o7", "c2", "m2", 2, 2)).unwrap();
        let second = catalog.serve_snapshot(&endpoint, &schema).unwrap();

        // The first pin is immutable: still 6 rows at its epoch.
        first.verify_consistent().unwrap();
        assert_eq!(first.cube().row_count(), 6);
        // The second accreted on top: same base, deeper overlay.
        second.verify_consistent().unwrap();
        assert!(Arc::ptr_eq(first.base(), second.base()), "one shared base");
        assert_eq!(second.cube().row_count(), 7);
        let overlay = second.overlay().unwrap();
        assert_eq!(overlay.rows_appended(), 2, "cumulative vs the base");
        assert_eq!(overlay.deltas_applied(), 2);
        assert!(second.epoch() > first.epoch());
    }

    #[test]
    fn unchanged_store_pins_the_same_snapshot_without_maintenance() {
        let (endpoint, schema, catalog) = setup();
        let first = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        let report_count = catalog.reports(&schema.dataset).len();
        let second = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        assert!(Arc::ptr_eq(first.cube(), second.cube()));
        assert_eq!(catalog.reports(&schema.dataset).len(), report_count);
        let metrics = catalog.metrics().snapshot();
        assert_eq!(metrics.counter("catalog.overlay.hits"), 1);
        assert_eq!(metrics.gauge("catalog.overlay.lag"), Some(0.0));
    }

    #[test]
    fn structural_change_folds_in_the_background_and_serves_stale() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        let before_epoch = endpoint.epoch();
        // Cut a roll-up link: structural, refused by the delta classifier.
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));

        let stale = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        // The reader was never blocked: it got the pre-mutation pin.
        stale.verify_consistent().unwrap();
        assert_eq!(stale.epoch(), before_epoch);
        assert_eq!(stale.cube().row_count(), 5);

        catalog.wait_for_maintenance(&schema.dataset);
        let fresh = catalog.current_snapshot(&schema.dataset).unwrap();
        assert!(!fresh.is_overlaid());
        assert_eq!(fresh.base_epoch(), endpoint.epoch());
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
        assert!(
            matches!(&report.reason, Some(RebuildReason::DeltaRefused(_))),
            "{:?}",
            report.reason
        );
        assert!(report.overlap.is_some(), "background fold records its window");
        // The folded base matches a scratch materialization.
        let scratch = MaterializedCube::from_endpoint(&endpoint, &schema).unwrap();
        assert_eq!(
            execute(fresh.cube(), &CubeQuery::default()).unwrap(),
            execute(&scratch, &CubeQuery::default()).unwrap()
        );
        let metrics = catalog.metrics().snapshot();
        assert_eq!(metrics.counter("catalog.overlay.folds_started"), 1);
        assert_eq!(metrics.counter("catalog.overlay.folds"), 1);
        assert_eq!(metrics.counter("catalog.overlay.fold_failures"), 0);
    }

    #[test]
    fn overlay_past_the_compaction_threshold_compacts_in_the_background() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        for (name, city, month, value, score) in
            [("o1", "c1", "m1", 10, 4), ("o3", "c2", "m1", 5, 1), ("o4", "c3", "m1", 100, 9)]
        {
            endpoint
                .store()
                .remove_all(&observation_triples(name, city, month, value, score));
        }
        // The snapshot path accretes the tombstones inline and returns
        // immediately — compaction happens behind it.
        let snapshot = catalog.serve_snapshot(&endpoint, &schema).unwrap();
        snapshot.verify_consistent().unwrap();
        assert!(snapshot.is_overlaid());
        assert_eq!(snapshot.cube().live_row_count(), 2);
        assert_eq!(snapshot.cube().tombstoned_rows(), 3);

        catalog.wait_for_maintenance(&schema.dataset);
        // Both decisions were recorded: the inline accretion first, the
        // background compaction after (read only after the fence — the
        // fold thread may finish arbitrarily fast).
        assert!(catalog
            .reports(&schema.dataset)
            .iter()
            .any(|r| r.strategy == MaintenanceStrategy::Overlay));
        let compacted = catalog.current_snapshot(&schema.dataset).unwrap();
        assert!(!compacted.is_overlaid());
        assert_eq!(compacted.cube().row_count(), 2, "dead rows reclaimed");
        assert_eq!(compacted.cube().tombstoned_rows(), 0);
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Compaction);
        assert!(matches!(
            report.reason,
            Some(RebuildReason::LowLiveFraction { live_rows: 2, total_rows: 5 })
        ));
        assert!(report.overlap.is_some());
        // Identical results before and after the background compaction.
        assert_eq!(
            execute(snapshot.cube(), &CubeQuery::default()).unwrap(),
            execute(compacted.cube(), &CubeQuery::default()).unwrap()
        );
    }

    #[test]
    fn conservative_endpoint_degrades_snapshot_serving_to_blocking() {
        use sparql::ConservativeEndpoint;

        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let conservative = ConservativeEndpoint::with_epochs(endpoint);
        let catalog = CubeCatalog::new();
        catalog.serve_snapshot(&conservative, &schema).unwrap();
        conservative
            .insert_triples(&observation_triples("o6", "c2", "m2", 2, 2))
            .unwrap();
        // No background handle: the epoch change degrades to an inline
        // blocking rebuild — fresh, not stale.
        let snapshot = catalog.serve_snapshot(&conservative, &schema).unwrap();
        assert!(!snapshot.is_overlaid());
        assert_eq!(snapshot.cube().row_count(), 6);
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
        assert!(report.overlap.is_none(), "inline fallback, no stale window");
        assert!(!catalog.maintenance_in_flight(&schema.dataset));
    }

    #[test]
    fn snapshot_refreshes_feed_the_overlay_metrics() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve_snapshot(&endpoint, &schema).unwrap();
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();
        catalog.serve_snapshot(&endpoint, &schema).unwrap();
        catalog.serve_snapshot(&endpoint, &schema).unwrap();

        let metrics = catalog.metrics().snapshot();
        assert_eq!(metrics.counter("catalog.overlay.serve_calls"), 3);
        assert_eq!(metrics.counter("catalog.overlay.accretions"), 1);
        assert_eq!(metrics.counter("catalog.refresh.overlay"), 1);
        assert_eq!(metrics.counter("catalog.overlay.hits"), 1);
        assert_eq!(metrics.gauge("catalog.overlay.rows"), Some(1.0));
        assert_eq!(metrics.counter("catalog.overlay.folds_started"), 0);
    }
}
