//! The live cube catalog: one shared, change-tracked columnar
//! representation per dataset, served to every consumer module.
//!
//! A [`CubeCatalog`] keys [`MaterializedCube`]s by dataset IRI and
//! validates the endpoint's mutation epoch on **every** [`CubeCatalog::serve`]
//! call, so a consumer can never observe a stale cube: if the store moved,
//! the catalog transparently refreshes the entry — replaying the recorded
//! [`rdf::StoreDelta`]s through [`MaterializedCube::apply_delta`] when the
//! change log covers the gap and the delta is appliable, and falling back
//! to a full re-materialization otherwise. Every refresh decision, reason
//! and timing is recorded as a [`MaintenanceReport`].

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::MetricsRegistry;
use parking_lot::Mutex;
use qb4olap::CubeSchema;
use rdf::Iri;
use sparql::Endpoint;

use crate::build::MaterializedCube;
use crate::error::{CubeStoreError, DeltaRefusal};

/// How the catalog brought an entry up to date.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceStrategy {
    /// First materialization of the dataset.
    Fresh,
    /// Recorded deltas were replayed onto the existing columns
    /// (copy-on-write: only the components the deltas extended were
    /// copied; removals were tombstoned).
    Delta,
    /// The cube was re-materialized from the endpoint because the deltas
    /// were unappliable or the change log had a coverage gap.
    Rebuild,
    /// The deltas applied, but tombstoned rows had accumulated past the
    /// live-fraction threshold ([`COMPACTION_LIVE_FRACTION`]), so the
    /// catalog re-materialized to reclaim the dead rows.
    Compaction,
}

impl MaintenanceStrategy {
    /// The strategy's stable lowercase name — the suffix of its
    /// `catalog.refresh.<name>` registry counter.
    pub fn name(self) -> &'static str {
        match self {
            MaintenanceStrategy::Fresh => "fresh",
            MaintenanceStrategy::Delta => "delta",
            MaintenanceStrategy::Rebuild => "rebuild",
            MaintenanceStrategy::Compaction => "compaction",
        }
    }
}

/// Why a refresh re-materialized instead of (or after) replaying deltas.
#[derive(Debug, Clone, PartialEq)]
pub enum RebuildReason {
    /// The delta classifier refused; the typed refusal says why (see the
    /// decision table in the [`crate::delta`] module docs).
    DeltaRefused(DeltaRefusal),
    /// The change log does not reach back to the cube's epoch (log
    /// disabled, reset, or trimmed past it).
    ChangeLogGap,
    /// The delta applied, but the live-row fraction fell below
    /// [`COMPACTION_LIVE_FRACTION`]; the cube was compacted.
    LowLiveFraction {
        /// Live rows after the delta replay.
        live_rows: usize,
        /// Physical rows (live + tombstoned) after the delta replay.
        total_rows: usize,
    },
    /// The delta replay failed with a non-refusal error (endpoint or
    /// build failure surfaced mid-apply).
    Error(String),
}

impl fmt::Display for RebuildReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildReason::DeltaRefused(refusal) => write!(f, "{refusal}"),
            RebuildReason::ChangeLogGap => {
                write!(f, "change log does not cover the cube's epoch")
            }
            RebuildReason::LowLiveFraction {
                live_rows,
                total_rows,
            } => write!(
                f,
                "live-row fraction {live_rows}/{total_rows} fell below the compaction threshold"
            ),
            RebuildReason::Error(message) => write!(f, "{message}"),
        }
    }
}

/// One catalog maintenance decision: what was done, why, and how long it
/// took. The experiment harness (E12/E13) and the differential tests read
/// these to prove the delta path is exercised and measurably cheaper.
#[derive(Debug, Clone, PartialEq)]
pub struct MaintenanceReport {
    /// The dataset that was refreshed.
    pub dataset: Iri,
    /// Delta replay, full rebuild, compaction, or first build.
    pub strategy: MaintenanceStrategy,
    /// For [`MaintenanceStrategy::Rebuild`] and
    /// [`MaintenanceStrategy::Compaction`]: why the columns were
    /// re-materialized.
    pub reason: Option<RebuildReason>,
    /// Wall-clock time of the refresh.
    pub duration: Duration,
    /// The store epoch the entry was at before the refresh.
    pub from_epoch: u64,
    /// The store epoch the entry is at after the refresh.
    pub to_epoch: u64,
    /// Number of store deltas replayed (delta strategy only).
    pub deltas_applied: usize,
    /// Fact rows appended by the refresh (net new live rows for rebuilds).
    pub rows_appended: usize,
    /// Fact rows removed by the refresh: tombstoned for
    /// [`MaintenanceStrategy::Delta`], net lost live rows for rebuilds.
    pub rows_removed: usize,
    /// Level members added by the refresh.
    pub members_added: usize,
}

/// The live-row fraction below which a delta-refreshed cube is compacted
/// (re-materialized) instead of served: once more than half the physical
/// rows are tombstones, the scan skips more than it reads and the memory
/// overhead of the dead rows exceeds the live data. Compaction goes
/// through [`MaterializedCube::from_endpoint`], so the per-segment zone
/// maps are rebuilt from the surviving rows — dead rows' member codes and
/// min/max bounds (which deltas deliberately never loosen) drop out here.
pub const COMPACTION_LIVE_FRACTION: f64 = 0.5;

/// True if the cube has accumulated enough tombstones to warrant
/// compaction.
fn needs_compaction(cube: &MaterializedCube) -> bool {
    cube.tombstoned_rows() > 0
        && (cube.live_row_count() as f64) < (cube.row_count() as f64) * COMPACTION_LIVE_FRACTION
}

/// A bounded ring of the most recent maintenance reports for one
/// dataset: pushing at capacity evicts the oldest report in O(1)
/// (previously a `Vec::remove(0)` front-shift on every refresh past the
/// 64th).
#[derive(Debug, Clone, Default)]
pub struct ReportLog {
    reports: VecDeque<MaintenanceReport>,
}

impl ReportLog {
    /// Reports retained per dataset.
    pub const CAPACITY: usize = 64;

    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a report, evicting the oldest once [`Self::CAPACITY`] is
    /// reached.
    pub fn push(&mut self, report: MaintenanceReport) {
        if self.reports.len() == Self::CAPACITY {
            self.reports.pop_front();
        }
        self.reports.push_back(report);
    }

    /// Number of retained reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The most recent report.
    pub fn last(&self) -> Option<&MaintenanceReport> {
        self.reports.back()
    }

    /// The retained reports, oldest first.
    pub fn to_vec(&self) -> Vec<MaintenanceReport> {
        self.reports.iter().cloned().collect()
    }
}

struct CatalogEntry {
    cube: Arc<MaterializedCube>,
    epoch: u64,
    reports: ReportLog,
}

impl CatalogEntry {
    fn record(&mut self, report: MaintenanceReport) {
        self.reports.push(report);
    }
}

/// One dataset's slot: `None` while the first build is still running.
type EntrySlot = Arc<Mutex<Option<CatalogEntry>>>;

/// A shared catalog of live materialized cubes, keyed by dataset IRI.
///
/// Cheap to share (`Arc<CubeCatalog>`); the Querying and Exploration
/// modules of one tool instance hold the same catalog so they serve from
/// one columnar representation. Locking is two-level: the catalog map is
/// only held long enough to find or create a dataset's slot, and each slot
/// has its own lock — a multi-second rebuild of one dataset serializes
/// that dataset's consumers (they need the fresh cube anyway) without
/// stalling serving of any other dataset.
#[derive(Default)]
pub struct CubeCatalog {
    inner: Mutex<BTreeMap<Iri, EntrySlot>>,
    metrics: Arc<MetricsRegistry>,
}

impl CubeCatalog {
    /// Creates an empty catalog with its own metrics registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty catalog reporting into an existing registry.
    pub fn with_metrics(metrics: Arc<MetricsRegistry>) -> Self {
        Self {
            inner: Mutex::default(),
            metrics,
        }
    }

    /// The registry every serve/refresh decision reports into. The
    /// querying module and explorer of the same tool instance share it,
    /// so one snapshot covers the whole serve path.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Records one maintenance decision into the registry: a
    /// per-strategy counter, the refusal kind when a refused delta forced
    /// a rebuild, refresh latency, per-field totals, and the live-row
    /// fraction of the cube now being served.
    fn observe_report(&self, report: &MaintenanceReport, cube: &MaterializedCube) {
        self.metrics
            .counter(&format!("catalog.refresh.{}", report.strategy.name()))
            .inc();
        if let Some(RebuildReason::DeltaRefused(refusal)) = &report.reason {
            self.metrics
                .counter(&format!("catalog.refusal.{}", refusal.kind.name()))
                .inc();
        }
        self.metrics
            .histogram("catalog.refresh.duration_ns")
            .record_duration(report.duration);
        self.metrics
            .counter("catalog.refresh.deltas_applied")
            .add(report.deltas_applied as u64);
        self.metrics
            .counter("catalog.refresh.rows_appended")
            .add(report.rows_appended as u64);
        self.metrics
            .counter("catalog.refresh.rows_removed")
            .add(report.rows_removed as u64);
        let live_fraction = if cube.row_count() == 0 {
            1.0
        } else {
            cube.live_row_count() as f64 / cube.row_count() as f64
        };
        self.metrics.gauge("catalog.live_fraction").set(live_fraction);
    }

    /// Returns the up-to-date cube for `schema`'s dataset, materializing or
    /// refreshing it as needed.
    ///
    /// The first call for a dataset enables change tracking on the endpoint
    /// and builds the cube; later calls compare the endpoint's mutation
    /// epoch with the entry's and replay deltas (or rebuild) when the store
    /// moved. Stale reads are impossible by construction: the epoch is
    /// validated on every call.
    pub fn serve(
        &self,
        endpoint: &dyn Endpoint,
        schema: &CubeSchema,
    ) -> Result<Arc<MaterializedCube>, CubeStoreError> {
        let _serve_span = obs::span("catalog.serve");
        self.metrics.counter("catalog.serve.calls").inc();
        let slot = self.slot(&schema.dataset);
        let mut guard = slot.lock();
        match guard.as_mut() {
            Some(entry) => {
                let now = endpoint.epoch();
                if entry.epoch == now {
                    self.metrics.counter("catalog.serve.hits").inc();
                    return Ok(entry.cube.clone());
                }
                let started = Instant::now();
                let from_epoch = entry.epoch;
                let old_rows = entry.cube.row_count();
                let old_tombstoned = entry.cube.tombstoned_rows();
                let old_live = entry.cube.live_row_count();
                let old_members = member_total(&entry.cube);
                let (cube, strategy, reason, deltas_applied, to_epoch) =
                    match endpoint.deltas_since(from_epoch) {
                        Some(deltas) => {
                            // The epoch the replay catches the entry up to:
                            // the last recorded delta (mutations racing in
                            // after `now` was read are replayed next time).
                            let caught_up = deltas.last().map(|d| d.epoch).unwrap_or(now);
                            let replay = {
                                let _replay_span = obs::span("catalog.delta-replay");
                                entry.cube.apply_delta(&deltas)
                            };
                            match replay {
                                Ok(cube) if needs_compaction(&cube) => {
                                    // The delta applied, but the tombstones
                                    // it (and earlier refreshes) left now
                                    // dominate the columns: re-materialize
                                    // while the reason is recorded.
                                    let reason = RebuildReason::LowLiveFraction {
                                        live_rows: cube.live_row_count(),
                                        total_rows: cube.row_count(),
                                    };
                                    let rebuilt = {
                                        let _rebuild_span = obs::span("catalog.rebuild");
                                        MaterializedCube::from_endpoint(endpoint, schema)?
                                    };
                                    (
                                        rebuilt,
                                        MaintenanceStrategy::Compaction,
                                        Some(reason),
                                        deltas.len(),
                                        now,
                                    )
                                }
                                Ok(cube) => {
                                    (cube, MaintenanceStrategy::Delta, None, deltas.len(), caught_up)
                                }
                                Err(error) => {
                                    let reason = match error {
                                        CubeStoreError::DeltaUnsupported(refusal) => {
                                            RebuildReason::DeltaRefused(refusal)
                                        }
                                        other => RebuildReason::Error(other.to_string()),
                                    };
                                    let rebuilt = {
                                        let _rebuild_span = obs::span("catalog.rebuild");
                                        MaterializedCube::from_endpoint(endpoint, schema)?
                                    };
                                    (
                                        rebuilt,
                                        MaintenanceStrategy::Rebuild,
                                        Some(reason),
                                        deltas.len(),
                                        now,
                                    )
                                }
                            }
                        }
                        None => {
                            let rebuilt = {
                                let _rebuild_span = obs::span("catalog.rebuild");
                                MaterializedCube::from_endpoint(endpoint, schema)?
                            };
                            (
                                rebuilt,
                                MaintenanceStrategy::Rebuild,
                                Some(RebuildReason::ChangeLogGap),
                                0,
                                now,
                            )
                        }
                    };
                let cube = Arc::new(cube);
                // Appends grow the physical rows; removals grow the
                // tombstone count. Rebuilds reset both, so they report the
                // net live-row movement instead.
                let (rows_appended, rows_removed) = match strategy {
                    MaintenanceStrategy::Delta => (
                        cube.row_count().saturating_sub(old_rows),
                        cube.tombstoned_rows().saturating_sub(old_tombstoned),
                    ),
                    _ => (
                        cube.live_row_count().saturating_sub(old_live),
                        old_live.saturating_sub(cube.live_row_count()),
                    ),
                };
                entry.cube = cube.clone();
                entry.epoch = to_epoch;
                let report = MaintenanceReport {
                    dataset: schema.dataset.clone(),
                    strategy,
                    reason,
                    duration: started.elapsed(),
                    from_epoch,
                    to_epoch,
                    deltas_applied,
                    rows_appended,
                    rows_removed,
                    members_added: member_total(&cube).saturating_sub(old_members),
                };
                self.observe_report(&report, &cube);
                entry.record(report);
                Ok(cube)
            }
            None => {
                // Track changes from here on, so the next refresh can take
                // the delta path. The epoch is read *before* the build: a
                // mutation racing with the build is re-examined (and, being
                // already materialized, resolved by a rebuild) rather than
                // silently skipped.
                endpoint.enable_change_tracking();
                let epoch = endpoint.epoch();
                let started = Instant::now();
                let cube = {
                    let _build_span = obs::span("catalog.fresh-build");
                    Arc::new(MaterializedCube::from_endpoint(endpoint, schema)?)
                };
                let report = MaintenanceReport {
                    dataset: schema.dataset.clone(),
                    strategy: MaintenanceStrategy::Fresh,
                    reason: None,
                    duration: started.elapsed(),
                    from_epoch: epoch,
                    to_epoch: epoch,
                    deltas_applied: 0,
                    rows_appended: cube.row_count(),
                    rows_removed: 0,
                    members_added: member_total(&cube),
                };
                self.observe_report(&report, &cube);
                let mut reports = ReportLog::new();
                reports.push(report);
                *guard = Some(CatalogEntry {
                    cube: cube.clone(),
                    epoch,
                    reports,
                });
                Ok(cube)
            }
        }
    }

    /// Finds or creates a dataset's slot, holding the map lock only for
    /// the lookup.
    fn slot(&self, dataset: &Iri) -> EntrySlot {
        self.inner.lock().entry(dataset.clone()).or_default().clone()
    }

    /// A dataset's slot if one exists, without creating it.
    fn existing_slot(&self, dataset: &Iri) -> Option<EntrySlot> {
        self.inner.lock().get(dataset).cloned()
    }

    /// The maintenance history of a dataset (oldest first, capped at
    /// [`ReportLog::CAPACITY`]).
    pub fn reports(&self, dataset: &Iri) -> Vec<MaintenanceReport> {
        self.existing_slot(dataset)
            .and_then(|slot| slot.lock().as_ref().map(|entry| entry.reports.to_vec()))
            .unwrap_or_default()
    }

    /// The most recent maintenance report of a dataset.
    pub fn last_report(&self, dataset: &Iri) -> Option<MaintenanceReport> {
        self.existing_slot(dataset)
            .and_then(|slot| slot.lock().as_ref().and_then(|entry| entry.reports.last().cloned()))
    }

    /// The datasets currently materialized.
    pub fn datasets(&self) -> Vec<Iri> {
        self.inner.lock().keys().cloned().collect()
    }

    /// The cube currently cached for a dataset, without refreshing it.
    /// Useful for inspection; consumers should go through [`Self::serve`].
    pub fn peek(&self, dataset: &Iri) -> Option<Arc<MaterializedCube>> {
        self.existing_slot(dataset)
            .and_then(|slot| slot.lock().as_ref().map(|entry| entry.cube.clone()))
    }

    /// Drops a dataset's entry; the next [`Self::serve`] rebuilds it.
    pub fn evict(&self, dataset: &Iri) {
        self.inner.lock().remove(dataset);
    }
}

impl std::fmt::Debug for CubeCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CubeCatalog")
            .field("datasets", &self.datasets())
            .finish()
    }
}

fn member_total(cube: &MaterializedCube) -> usize {
    cube.levels()
        .values()
        .map(|index| index.member_count())
        .sum()
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use qb4olap::AggregateFunction;
    use rdf::Term;
    use sparql::LocalEndpoint;

    use crate::executor::{execute, CubeQuery};
    use crate::testutil::{fixture, iri, member, observation_triples};

    use super::*;

    fn setup() -> (LocalEndpoint, qb4olap::CubeSchema, CubeCatalog) {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        (endpoint, schema, CubeCatalog::new())
    }

    #[test]
    fn first_serve_materializes_and_enables_tracking() {
        let (endpoint, schema, catalog) = setup();
        assert!(!endpoint.store().change_log_enabled());
        let cube = catalog.serve(&endpoint, &schema).unwrap();
        assert_eq!(cube.row_count(), 5);
        assert!(endpoint.store().change_log_enabled());
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Fresh);
        assert_eq!(report.rows_appended, 5);
        assert_eq!(catalog.datasets(), vec![schema.dataset.clone()]);
        assert!(catalog.peek(&schema.dataset).is_some());
    }

    #[test]
    fn unchanged_store_serves_the_same_cube_without_queries() {
        let (endpoint, schema, catalog) = setup();
        let first = catalog.serve(&endpoint, &schema).unwrap();
        let queries = endpoint.queries_executed();
        let second = catalog.serve(&endpoint, &schema).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "same shared columns");
        assert_eq!(endpoint.queries_executed(), queries, "no SPARQL issued");
        assert_eq!(catalog.reports(&schema.dataset).len(), 1, "no refresh recorded");
    }

    #[test]
    fn observation_append_refreshes_via_the_delta_path() {
        let (endpoint, schema, catalog) = setup();
        let stale = catalog.serve(&endpoint, &schema).unwrap();
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();

        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        assert!(!Arc::ptr_eq(&stale, &fresh));
        assert_eq!(fresh.row_count(), 6);
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Delta);
        assert_eq!(report.rows_appended, 1);
        assert_eq!(report.deltas_applied, 1);
        assert!(report.reason.is_none());
        assert!(report.to_epoch > report.from_epoch);

        // The refreshed cube serves the new value.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        let k1m1 = output
            .cells
            .iter()
            .find(|c| c.coordinates == vec![member("K1"), member("m1")])
            .unwrap();
        assert_eq!(k1m1.values[0], Some(Term::integer(13)), "10 + 3");

        // Serving again without further mutation reuses the refreshed cube.
        let again = catalog.serve(&endpoint, &schema).unwrap();
        assert!(Arc::ptr_eq(&fresh, &again));
    }

    #[test]
    fn unappliable_deltas_fall_back_to_a_reported_rebuild() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Cut a roll-up link: the ragged mutation the delta path refuses.
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
        let reason = report.reason.unwrap();
        assert!(
            matches!(
                &reason,
                RebuildReason::DeltaRefused(refusal)
                    if refusal.kind == crate::RefusalKind::RollupLinkRemoved
            ),
            "{reason}"
        );
        assert!(reason.to_string().contains("roll-up link removed"));
        // c1 is now ragged: its observations drop out of the country roll-up.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        assert!(!output.cells.iter().any(|c| c.coordinates[0] == member("K1")));
    }

    #[test]
    fn change_log_gaps_fall_back_to_a_rebuild() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Drop the log out from under the catalog, then mutate.
        endpoint.store().disable_change_log();
        endpoint.insert_triples(&observation_triples("o6", "c2", "m2", 2, 2)).unwrap();
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        assert_eq!(fresh.row_count(), 6);
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
        assert_eq!(report.reason, Some(RebuildReason::ChangeLogGap));
        assert!(report.reason.unwrap().to_string().contains("change log"));
    }

    #[test]
    fn tombstoned_removal_refreshes_via_the_delta_path() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Remove one observation completely, in one batch → one delta
        // (observation_triples yields exactly the six triples the fixture
        // observation was built from).
        let removed = endpoint
            .store()
            .remove_all(&observation_triples("o3", "c2", "m1", 5, 1));
        assert_eq!(removed, 6);
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Delta);
        assert_eq!(report.rows_removed, 1);
        assert_eq!(report.rows_appended, 0);
        assert!(report.reason.is_none());
        assert_eq!(fresh.live_row_count(), 4);
        assert_eq!(fresh.tombstoned_rows(), 1);
        // The removed observation's cell is gone from query results.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates == vec![member("K2"), member("m1")]));
    }

    #[test]
    fn partial_observation_removal_refreshes_via_the_delta_path() {
        use rdf::Triple;

        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Strip ONE measure value of o3 — previously an unappliable
        // partial removal (rebuild); now the row tombstones and the
        // fragment is recorded as dropped, all in O(delta).
        let o3 = Term::iri("http://example.org/obs/o3");
        assert!(endpoint.store().remove(&Triple::new(
            o3.clone(),
            iri("measure/value"),
            rdf::Literal::integer(5)
        )));
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Delta);
        assert_eq!(report.rows_removed, 1);
        assert!(report.reason.is_none());
        assert_eq!(fresh.live_row_count(), 4);
        assert_eq!(fresh.tombstoned_rows(), 1);
        assert!(!fresh.is_observation(&o3));
        // The fragment's cell is gone from query results.
        let query = CubeQuery {
            rollups: BTreeMap::from([(iri("dim/city"), iri("lv/country"))]),
            ..CubeQuery::default()
        };
        let output = execute(&fresh, &query).unwrap();
        assert!(!output
            .cells
            .iter()
            .any(|c| c.coordinates == vec![member("K2"), member("m1")]));
    }

    #[test]
    fn accumulated_tombstones_trigger_a_reported_compaction() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Remove three of the five observations (each as one whole-batch
        // delta): live 2/5 < the 0.5 threshold, so the serve must apply
        // the deltas, notice the fraction and compact.
        for (name, city, month, value, score) in
            [("o1", "c1", "m1", 10, 4), ("o3", "c2", "m1", 5, 1), ("o4", "c3", "m1", 100, 9)]
        {
            let removed = endpoint
                .store()
                .remove_all(&observation_triples(name, city, month, value, score));
            assert_eq!(removed, 6);
        }
        let fresh = catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Compaction);
        assert_eq!(
            report.reason,
            Some(RebuildReason::LowLiveFraction {
                live_rows: 2,
                total_rows: 5
            })
        );
        assert_eq!(report.rows_removed, 3);
        // The compacted cube is dense again: no tombstones, 2 physical rows.
        assert_eq!(fresh.row_count(), 2);
        assert_eq!(fresh.tombstoned_rows(), 0);
        // Compaction rebuilds the zone maps from scratch: they cover only
        // the surviving rows and pass the exact-recomputation checker.
        fresh.verify_zone_invariants().unwrap();
        assert_eq!(fresh.zone_maps().rows(), 2);
        let output = execute(&fresh, &CubeQuery::default()).unwrap();
        assert_eq!(output.cells.len(), 2);
    }

    fn dummy_report(from_epoch: u64) -> MaintenanceReport {
        MaintenanceReport {
            dataset: iri("dataset/sales"),
            strategy: MaintenanceStrategy::Delta,
            reason: None,
            duration: Duration::from_micros(from_epoch),
            from_epoch,
            to_epoch: from_epoch + 1,
            deltas_applied: 1,
            rows_appended: 1,
            rows_removed: 0,
            members_added: 0,
        }
    }

    #[test]
    fn report_log_evicts_oldest_first_at_capacity() {
        let mut log = ReportLog::new();
        assert!(log.is_empty());
        let overflow = 10;
        for epoch in 0..(ReportLog::CAPACITY + overflow) as u64 {
            log.push(dummy_report(epoch));
        }
        assert_eq!(log.len(), ReportLog::CAPACITY, "capped at capacity");
        let reports = log.to_vec();
        assert_eq!(
            reports.first().unwrap().from_epoch,
            overflow as u64,
            "the oldest reports were evicted first"
        );
        assert_eq!(
            reports.last().unwrap().from_epoch,
            (ReportLog::CAPACITY + overflow - 1) as u64,
            "the newest report is retained"
        );
        assert_eq!(log.last().unwrap().from_epoch, reports.last().unwrap().from_epoch);
        // Order inside the ring is strictly oldest → newest.
        assert!(reports.windows(2).all(|w| w[0].from_epoch + 1 == w[1].from_epoch));
    }

    #[test]
    fn serve_report_retention_is_capped_via_the_ring() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        for round in 0..(ReportLog::CAPACITY + 5) {
            endpoint
                .insert_triples(&observation_triples(
                    &format!("ring{round}"),
                    "c1",
                    "m1",
                    1,
                    1,
                ))
                .unwrap();
            catalog.serve(&endpoint, &schema).unwrap();
        }
        let reports = catalog.reports(&schema.dataset);
        assert_eq!(reports.len(), ReportLog::CAPACITY);
        // All retained refreshes are the appends — the Fresh build aged out.
        assert!(reports.iter().all(|r| r.strategy == MaintenanceStrategy::Delta));
    }

    #[test]
    fn serve_decisions_feed_the_metrics_registry() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        // Delta append, then a refused delta (cut roll-up link) → rebuild.
        endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();
        catalog.serve(&endpoint, &schema).unwrap();
        assert!(endpoint
            .store()
            .remove(&qb4olap::rollup_triple(&member("c1"), &member("K1"))));
        catalog.serve(&endpoint, &schema).unwrap();
        // Unchanged serve → hit.
        catalog.serve(&endpoint, &schema).unwrap();

        let snapshot = catalog.metrics().snapshot();
        assert_eq!(snapshot.counter("catalog.refresh.fresh"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.delta"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.rebuild"), 1);
        assert_eq!(snapshot.counter("catalog.refresh.compaction"), 0);
        assert_eq!(snapshot.counter("catalog.refusal.rollup-link-removed"), 1);
        assert_eq!(snapshot.counter("catalog.serve.calls"), 4);
        assert_eq!(snapshot.counter("catalog.serve.hits"), 1);
        assert_eq!(snapshot.gauge("catalog.live_fraction"), Some(1.0));
        let refresh = snapshot.histogram("catalog.refresh.duration_ns").unwrap();
        assert_eq!(refresh.count, 3, "fresh + delta + rebuild all timed");
    }

    #[test]
    fn serve_emits_a_nested_span_tree() {
        let collector = Arc::new(obs::CollectingSubscriber::new());
        obs::with_subscriber(collector.clone(), || {
            let (endpoint, schema, catalog) = setup();
            catalog.serve(&endpoint, &schema).unwrap();
            endpoint.insert_triples(&observation_triples("o6", "c1", "m1", 3, 3)).unwrap();
            catalog.serve(&endpoint, &schema).unwrap();
            endpoint.store().disable_change_log();
            endpoint.insert_triples(&observation_triples("o7", "c2", "m2", 2, 2)).unwrap();
            catalog.serve(&endpoint, &schema).unwrap();
        });
        // The builds issue SPARQL queries, so sparql.parse/sparql.evaluate
        // spans appear nested (depth 2) under the build spans; the catalog
        // layer of the tree is what this test pins down.
        let records = collector.records();
        assert!(
            records
                .iter()
                .any(|r| r.name.starts_with("sparql.") && r.depth == 2),
            "endpoint spans nest under the build spans"
        );
        let spans: Vec<(&str, usize)> = records
            .iter()
            .filter(|r| r.name.starts_with("catalog."))
            .map(|r| (r.name, r.depth))
            .collect();
        assert_eq!(
            spans,
            vec![
                ("catalog.serve", 0),
                ("catalog.fresh-build", 1),
                ("catalog.serve", 0),
                ("catalog.delta-replay", 1),
                ("catalog.serve", 0),
                ("catalog.rebuild", 1),
            ],
            "each serve span contains its refresh-path span"
        );
    }

    #[test]
    fn eviction_forces_a_fresh_build() {
        let (endpoint, schema, catalog) = setup();
        catalog.serve(&endpoint, &schema).unwrap();
        catalog.evict(&schema.dataset);
        assert!(catalog.peek(&schema.dataset).is_none());
        catalog.serve(&endpoint, &schema).unwrap();
        let report = catalog.last_report(&schema.dataset).unwrap();
        assert_eq!(report.strategy, MaintenanceStrategy::Fresh);
    }

    #[test]
    fn conservative_snapshot_endpoint_pins_the_first_build() {
        use sparql::ConservativeEndpoint;

        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let conservative = ConservativeEndpoint::new(endpoint);
        let catalog = CubeCatalog::new();

        let first = catalog.serve(&conservative, &schema).unwrap();
        assert_eq!(first.row_count(), 5);
        assert_eq!(
            catalog.last_report(&schema.dataset).unwrap().strategy,
            MaintenanceStrategy::Fresh
        );

        // Mutate through the wrapper: the store really moves, but the
        // snapshot-mode epoch stays 0, so the catalog must keep serving
        // the original build — never a delta, never a rebuild.
        conservative
            .insert_triples(&observation_triples("o6", "c1", "m1", 3, 3))
            .unwrap();
        assert!(conservative.inner().epoch() > 0, "the store itself moved");

        let second = catalog.serve(&conservative, &schema).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "pinned to the first build");
        assert_eq!(second.row_count(), 5, "the mutation stays invisible");
        assert_eq!(
            catalog.reports(&schema.dataset).len(),
            1,
            "no refresh was ever attempted"
        );
    }

    #[test]
    fn conservative_epoch_endpoint_degrades_to_rebuild_per_change() {
        use sparql::ConservativeEndpoint;

        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let conservative = ConservativeEndpoint::with_epochs(endpoint);
        let catalog = CubeCatalog::new();
        catalog.serve(&conservative, &schema).unwrap();

        // Two separate mutations, two serves: every epoch change must
        // degrade to a change-log-gap rebuild — the wrapper reports
        // movement but never surfaces deltas.
        for (round, obs) in [("o6", 6usize), ("o7", 7)] {
            conservative
                .insert_triples(&observation_triples(round, "c2", "m2", 2, 2))
                .unwrap();
            let fresh = catalog.serve(&conservative, &schema).unwrap();
            assert_eq!(fresh.row_count(), obs, "the rebuild sees every row");
            let report = catalog.last_report(&schema.dataset).unwrap();
            assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
            assert_eq!(report.reason, Some(RebuildReason::ChangeLogGap));
            assert_eq!(report.deltas_applied, 0);

            // Degraded, not wrong: the rebuilt cube matches a from-scratch
            // materialization of the same store.
            let scratch =
                MaterializedCube::from_endpoint(&conservative, &schema).unwrap();
            assert_eq!(
                execute(&fresh, &CubeQuery::default()).unwrap(),
                execute(&scratch, &CubeQuery::default()).unwrap()
            );
        }
        assert!(
            catalog
                .reports(&schema.dataset)
                .iter()
                .all(|r| r.strategy != MaintenanceStrategy::Delta),
            "the delta path must be unreachable through a conservative endpoint"
        );
    }
}
