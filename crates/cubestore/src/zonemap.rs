//! Per-segment zone maps: the pruning metadata that lets the executor skip
//! whole [`CowVec`](crate::cowvec::CowVec) segments without reading a row.
//!
//! The sealed 4096-row segment is already the unit of copy-on-write
//! sharing; this module makes it the unit of *pruning* too. At
//! materialization time (and incrementally under
//! [`apply_delta`](crate::MaterializedCube::apply_delta)) the cube records,
//! per segment:
//!
//! * for each dimension column, the **set of distinct bottom-member codes**
//!   present in the segment (including [`NO_MEMBER`](crate::NO_MEMBER) for
//!   unbound rows).
//!   Because fact rows are append-only — removals tombstone, they never
//!   rewrite a row — these sets are *exact*, not over-approximations. At
//!   query time the executor lifts a segment's code set through the
//!   roll-up map of each kept axis, so a dice at *any* level (leaf, mid or
//!   top) can prove a segment irrelevant;
//! * for each measure column, the **min/max** of the segment's values
//!   (exact `i64` bounds for integer vectors, total-order `f64` bounds for
//!   float vectors). Measure dices have `HAVING` semantics — they filter
//!   *aggregates*, not rows — so these bounds are not used for pruning
//!   today; they are maintained and invariant-checked so the segment
//!   metadata stays complete;
//! * (on [`Tombstones`], not here) a per-segment dead-row count, so a
//!   fully-dead segment is skipped without touching the bitmap.
//!
//! The structures mirror the [`CowVec`](crate::cowvec::CowVec) cost model:
//! sealed segments' code sets live behind `Arc`s (cloning a cube's zone
//! maps is O(segments)), and only the small tail set mutates as rows are
//! appended. Tombstone-only deltas leave zone maps untouched — a dead
//! row's codes stay in its segment's set, which only costs precision,
//! never soundness. Compaction re-materializes the cube and therefore
//! rebuilds the zone maps from scratch.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::columns::{DimensionColumn, MeasureColumn, MeasureVector};
use crate::cowvec::SEGMENT_LEN;
use crate::dictionary::MemberId;
use crate::tombstone::Tombstones;

/// The per-segment pruning metadata of one cube: one code set per
/// (dimension, segment) and one min/max per (measure, segment), covering
/// every physical row (tombstoned rows included).
#[derive(Debug, Clone, Default)]
pub struct ZoneMaps {
    /// Physical rows covered so far (== the cube's `row_count` between
    /// maintenance steps).
    rows: usize,
    dimensions: Vec<DimensionZones>,
    measures: Vec<MeasureZones>,
}

/// The zone entries of one dimension column: sealed segments share their
/// sorted code sets behind `Arc`s, the tail accumulates in a `BTreeSet`
/// until it seals.
#[derive(Debug, Clone, Default)]
struct DimensionZones {
    sealed: Vec<Arc<Vec<MemberId>>>,
    tail: BTreeSet<MemberId>,
}

/// Per-segment min/max of one measure column, in the column's own value
/// space. The last entry covers the (possibly unsealed) tail and widens in
/// place as rows append. Float bounds use `f64::total_cmp` so NaNs and
/// signed zeros order deterministically.
#[derive(Debug, Clone)]
enum MeasureZones {
    Int(Vec<(i64, i64)>),
    Float(Vec<(f64, f64)>),
}

impl MeasureZones {
    fn empty_for(data: &MeasureVector) -> Self {
        match data {
            MeasureVector::Integer(_) => MeasureZones::Int(Vec::new()),
            MeasureVector::Decimal(_) | MeasureVector::Double(_) => MeasureZones::Float(Vec::new()),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            MeasureZones::Int(entries) => entries.is_empty(),
            MeasureZones::Float(entries) => entries.is_empty(),
        }
    }

    fn matches(&self, data: &MeasureVector) -> bool {
        matches!(
            (self, data),
            (MeasureZones::Int(_), MeasureVector::Integer(_))
                | (
                    MeasureZones::Float(_),
                    MeasureVector::Decimal(_) | MeasureVector::Double(_)
                )
        )
    }

    /// Widens the zone of `segment` with the value of `row` (appending the
    /// segment's first entry when the row opens a new segment).
    fn record(&mut self, data: &MeasureVector, row: usize, segment: usize) {
        match (self, data) {
            (MeasureZones::Int(entries), MeasureVector::Integer(values)) => {
                let value = *values.get(row);
                if entries.len() <= segment {
                    entries.push((value, value));
                } else {
                    let bounds = &mut entries[segment];
                    bounds.0 = bounds.0.min(value);
                    bounds.1 = bounds.1.max(value);
                }
            }
            (
                MeasureZones::Float(entries),
                MeasureVector::Decimal(values) | MeasureVector::Double(values),
            ) => {
                let value = *values.get(row);
                if entries.len() <= segment {
                    entries.push((value, value));
                } else {
                    let bounds = &mut entries[segment];
                    if value.total_cmp(&bounds.0).is_lt() {
                        bounds.0 = value;
                    }
                    if value.total_cmp(&bounds.1).is_gt() {
                        bounds.1 = value;
                    }
                }
            }
            _ => debug_assert!(false, "measure zone variant out of sync with its vector"),
        }
    }
}

/// Iterates one segment's distinct member codes, sealed or tail.
pub(crate) enum SegmentCodes<'a> {
    Sealed(std::slice::Iter<'a, MemberId>),
    Tail(std::collections::btree_set::Iter<'a, MemberId>),
}

impl Iterator for SegmentCodes<'_> {
    type Item = MemberId;

    fn next(&mut self) -> Option<MemberId> {
        match self {
            SegmentCodes::Sealed(iter) => iter.next().copied(),
            SegmentCodes::Tail(iter) => iter.next().copied(),
        }
    }
}

impl ZoneMaps {
    /// Builds the zone maps of a freshly materialized cube.
    pub(crate) fn build(
        dimensions: &[DimensionColumn],
        measures: &[MeasureColumn],
        row_count: usize,
    ) -> Self {
        let mut zones = ZoneMaps {
            rows: 0,
            dimensions: vec![DimensionZones::default(); dimensions.len()],
            measures: measures
                .iter()
                .map(|column| MeasureZones::empty_for(&column.data))
                .collect(),
        };
        zones.extend(dimensions, measures, row_count);
        zones
    }

    /// Extends the zone maps over rows appended since the last call
    /// (incremental maintenance: O(delta), touching only the tail entries —
    /// and sealing them at segment boundaries, exactly as the columns do).
    /// A maintenance step that appended nothing (tombstone-only deltas) is
    /// a no-op: zone sets are never loosened, and never tightened either —
    /// a dead row's codes staying in its segment's set costs precision,
    /// not soundness.
    pub(crate) fn extend(
        &mut self,
        dimensions: &[DimensionColumn],
        measures: &[MeasureColumn],
        row_count: usize,
    ) {
        // A zero-row build leaves a placeholder integer vector behind; the
        // first real append may re-type it. Mirror the re-typing while the
        // zones are still empty.
        for (zones, column) in self.measures.iter_mut().zip(measures) {
            if zones.is_empty() && !zones.matches(&column.data) {
                *zones = MeasureZones::empty_for(&column.data);
            }
        }
        for row in self.rows..row_count {
            let seals_segment = (row + 1) % SEGMENT_LEN == 0;
            for (zones, column) in self.dimensions.iter_mut().zip(dimensions) {
                zones.tail.insert(column.code(row));
                if seals_segment {
                    zones
                        .sealed
                        .push(Arc::new(zones.tail.iter().copied().collect()));
                    zones.tail.clear();
                }
            }
            let segment = row / SEGMENT_LEN;
            for (zones, column) in self.measures.iter_mut().zip(measures) {
                zones.record(&column.data, row, segment);
            }
        }
        self.rows = row_count;
    }

    /// Physical rows covered by the zone maps.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of segments covered (sealed segments plus a tail segment).
    pub fn segment_count(&self) -> usize {
        self.rows.div_ceil(SEGMENT_LEN)
    }

    /// The distinct member codes of one (dimension, segment) zone, `None`
    /// when the maps do not cover that segment (out-of-sync maps — the
    /// executor treats the segment as unprunable).
    pub(crate) fn dimension_codes(
        &self,
        dimension: usize,
        segment: usize,
    ) -> Option<SegmentCodes<'_>> {
        let zones = self.dimensions.get(dimension)?;
        if segment < zones.sealed.len() {
            Some(SegmentCodes::Sealed(zones.sealed[segment].iter()))
        } else if segment == zones.sealed.len() && !zones.tail.is_empty() {
            Some(SegmentCodes::Tail(zones.tail.iter()))
        } else {
            None
        }
    }

    /// Verifies every zone invariant against the actual column contents —
    /// the checker the lifecycle tests run over every segment. Because
    /// fact rows are append-only, the dimension sets must equal the exact
    /// distinct code sets and the measure bounds must equal the exact
    /// per-segment extremes; the tombstone bitmap's per-segment dead
    /// counts must re-count exactly.
    pub(crate) fn verify(
        &self,
        dimensions: &[DimensionColumn],
        measures: &[MeasureColumn],
        row_count: usize,
        tombstones: &Tombstones,
    ) -> Result<(), String> {
        if self.rows != row_count {
            return Err(format!(
                "zone maps cover {} rows but the cube has {row_count}",
                self.rows
            ));
        }
        if self.dimensions.len() != dimensions.len() {
            return Err("zone maps out of sync with the dimension columns".to_string());
        }
        if self.measures.len() != measures.len() {
            return Err("zone maps out of sync with the measure columns".to_string());
        }
        let segments = self.segment_count();
        let segment_rows =
            |segment: usize| segment * SEGMENT_LEN..((segment + 1) * SEGMENT_LEN).min(row_count);

        for (position, (zones, column)) in self.dimensions.iter().zip(dimensions).enumerate() {
            let expected_sealed = row_count / SEGMENT_LEN;
            if zones.sealed.len() != expected_sealed {
                return Err(format!(
                    "dimension {position}: {} sealed zone sets for {expected_sealed} sealed segments",
                    zones.sealed.len()
                ));
            }
            for segment in 0..segments {
                let actual: BTreeSet<MemberId> =
                    segment_rows(segment).map(|row| column.code(row)).collect();
                let recorded: Vec<MemberId> = self
                    .dimension_codes(position, segment)
                    .map(Iterator::collect)
                    .unwrap_or_default();
                if recorded != actual.iter().copied().collect::<Vec<_>>() {
                    return Err(format!(
                        "dimension {position} segment {segment}: zone set {recorded:?} does not \
                         match the column's distinct codes {actual:?}"
                    ));
                }
            }
        }

        for (position, (zones, column)) in self.measures.iter().zip(measures).enumerate() {
            if row_count > 0 && !zones.matches(&column.data) {
                return Err(format!(
                    "measure {position}: zone variant out of sync with the vector"
                ));
            }
            for segment in 0..segments {
                match zones {
                    MeasureZones::Int(entries) => {
                        let MeasureVector::Integer(values) = &column.data else {
                            return Err(format!("measure {position}: vector/zone mismatch"));
                        };
                        let rows = segment_rows(segment).map(|row| *values.get(row));
                        let (min, max) = rows.fold((i64::MAX, i64::MIN), |(lo, hi), v| {
                            (lo.min(v), hi.max(v))
                        });
                        if entries.get(segment) != Some(&(min, max)) {
                            return Err(format!(
                                "measure {position} segment {segment}: bounds {:?} do not match \
                                 the exact extremes ({min}, {max})",
                                entries.get(segment)
                            ));
                        }
                    }
                    MeasureZones::Float(entries) => {
                        let (MeasureVector::Decimal(values) | MeasureVector::Double(values)) =
                            &column.data
                        else {
                            return Err(format!("measure {position}: vector/zone mismatch"));
                        };
                        let mut rows = segment_rows(segment).map(|row| *values.get(row));
                        let first = rows.next().expect("segments are non-empty");
                        let (min, max) = rows.fold((first, first), |(lo, hi), v| {
                            (
                                if v.total_cmp(&lo).is_lt() { v } else { lo },
                                if v.total_cmp(&hi).is_gt() { v } else { hi },
                            )
                        });
                        let recorded = entries.get(segment).copied();
                        if recorded.map(|(lo, hi)| (lo.to_bits(), hi.to_bits()))
                            != Some((min.to_bits(), max.to_bits()))
                        {
                            return Err(format!(
                                "measure {position} segment {segment}: bounds {recorded:?} do \
                                 not match the exact extremes ({min}, {max})"
                            ));
                        }
                    }
                }
            }
        }

        let mut recounted_dead = 0usize;
        for segment in 0..segments {
            let actual = segment_rows(segment)
                .filter(|&row| tombstones.is_dead(row))
                .count();
            let recorded = tombstones.dead_in_segment(segment);
            if recorded != actual {
                return Err(format!(
                    "segment {segment}: per-segment dead count {recorded} does not re-count to \
                     {actual}"
                ));
            }
            recounted_dead += actual;
        }
        if recounted_dead != tombstones.dead_rows() {
            return Err(format!(
                "per-segment dead counts sum to {recounted_dead}, bitmap reports {}",
                tombstones.dead_rows()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::DimensionColumn;
    use crate::dictionary::{Dictionary, NO_MEMBER};
    use qb4olap::AggregateFunction;
    use rdf::{Iri, Literal, Term};

    fn column(codes: Vec<MemberId>) -> DimensionColumn {
        let mut dictionary = Dictionary::new();
        for suffix in ["a", "b", "c", "d"] {
            dictionary.encode(&Term::iri(format!("http://m/{suffix}")));
        }
        DimensionColumn::new(Iri::new("http://dim"), Iri::new("http://lv"), codes, dictionary)
    }

    fn measure(values: Vec<i64>) -> MeasureColumn {
        let mut data = MeasureVector::for_literal(&Literal::integer(0)).unwrap();
        for value in &values {
            data.push(&Literal::integer(*value)).unwrap();
        }
        MeasureColumn {
            property: Iri::new("http://measure"),
            aggregate: AggregateFunction::Sum,
            data,
        }
    }

    #[test]
    fn build_records_exact_sets_and_bounds_per_segment() {
        let rows = SEGMENT_LEN + 10;
        let codes: Vec<MemberId> = (0..rows)
            .map(|row| if row < SEGMENT_LEN { (row % 3) as MemberId } else { 3 })
            .collect();
        let values: Vec<i64> = (0..rows).map(|row| row as i64 % 100).collect();
        let dimensions = [column(codes)];
        let measures = [measure(values)];
        let zones = ZoneMaps::build(&dimensions, &measures, rows);
        assert_eq!(zones.rows(), rows);
        assert_eq!(zones.segment_count(), 2);
        assert_eq!(
            zones.dimension_codes(0, 0).unwrap().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            zones.dimension_codes(0, 1).unwrap().collect::<Vec<_>>(),
            vec![3]
        );
        assert!(zones.dimension_codes(0, 2).is_none(), "no third segment");
        assert!(zones.dimension_codes(1, 0).is_none(), "no second dimension");
        zones
            .verify(&dimensions, &measures, rows, &Tombstones::new())
            .unwrap();
    }

    #[test]
    fn extend_is_incremental_and_seals_at_boundaries() {
        let total = SEGMENT_LEN * 2 + 5;
        let codes: Vec<MemberId> = (0..total).map(|row| (row % 4) as MemberId).collect();
        let values: Vec<i64> = (0..total).map(|row| -(row as i64)).collect();
        let dimensions = [column(codes)];
        let measures = [measure(values)];
        let mut zones = ZoneMaps::build(&dimensions, &measures, 100);
        // Extending in several steps must land on the same maps as one
        // fresh build over all rows.
        zones.extend(&dimensions, &measures, SEGMENT_LEN + 1);
        zones.extend(&dimensions, &measures, total);
        zones
            .verify(&dimensions, &measures, total, &Tombstones::new())
            .unwrap();
        let fresh = ZoneMaps::build(&dimensions, &measures, total);
        for segment in 0..zones.segment_count() {
            assert_eq!(
                zones.dimension_codes(0, segment).unwrap().collect::<Vec<_>>(),
                fresh.dimension_codes(0, segment).unwrap().collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn unbound_rows_keep_no_member_in_the_zone_set() {
        let dimensions = [column(vec![0, NO_MEMBER, 1])];
        let zones = ZoneMaps::build(&dimensions, &[], 3);
        assert_eq!(
            zones.dimension_codes(0, 0).unwrap().collect::<Vec<_>>(),
            vec![0, 1, NO_MEMBER]
        );
        zones
            .verify(&dimensions, &[], 3, &Tombstones::new())
            .unwrap();
    }

    #[test]
    fn verify_catches_a_stale_row_count() {
        let dimensions = [column(vec![0, 1])];
        let zones = ZoneMaps::build(&dimensions, &[], 2);
        let error = zones
            .verify(&dimensions, &[], 3, &Tombstones::new())
            .unwrap_err();
        assert!(error.contains("cover 2 rows"), "{error}");
    }
}
