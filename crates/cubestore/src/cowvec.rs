//! A segmented, copy-on-write growable vector — the storage behind every
//! fact column of a [`MaterializedCube`](crate::MaterializedCube).
//!
//! The serving layer refreshes a cube by cloning it and replaying a delta
//! onto the clone ([`crate::MaterializedCube::apply_delta`]). With plain
//! `Vec` columns that
//! clone is O(rows) *per refresh*, even for a 1-row append. A [`CowVec`]
//! makes the clone O(segments) instead: elements live in immutable,
//! `Arc`-shared segments of [`SEGMENT_LEN`] elements plus one mutable tail,
//! so a clone bumps one reference count per sealed segment and copies only
//! the tail (< [`SEGMENT_LEN`] elements). Appending seals the tail into a
//! new shared segment whenever it fills up, so repeated
//! clone-append-publish cycles — the catalog's refresh loop — copy a
//! bounded amount of data no matter how large the cube has grown.
//!
//! Random access stays O(1): every sealed segment holds exactly
//! [`SEGMENT_LEN`] elements (a power of two), so indexing is a shift and a
//! mask, no search.

use std::sync::Arc;

/// log2 of [`SEGMENT_LEN`].
const SEGMENT_BITS: usize = 12;

/// Elements per sealed segment (4096). Power of two so [`CowVec::get`]
/// compiles to shift + mask. Small enough that the per-clone tail copy is
/// negligible, large enough that an 80k-row cube is ~20 segments.
pub const SEGMENT_LEN: usize = 1 << SEGMENT_BITS;

const SEGMENT_MASK: usize = SEGMENT_LEN - 1;

/// A growable vector whose clones share all sealed segments.
///
/// Invariant: every element of `segments` holds exactly [`SEGMENT_LEN`]
/// elements; `tail` holds the remaining `len % SEGMENT_LEN`.
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    segments: Vec<Arc<Vec<T>>>,
    tail: Vec<T>,
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec {
            segments: Vec::new(),
            tail: Vec::new(),
        }
    }
}

impl<T> CowVec<T> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        (self.segments.len() << SEGMENT_BITS) + self.tail.len()
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty() && self.tail.is_empty()
    }

    /// The element at `index`.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> &T {
        let segment = index >> SEGMENT_BITS;
        if segment < self.segments.len() {
            &self.segments[segment][index & SEGMENT_MASK]
        } else {
            &self.tail[index - (self.segments.len() << SEGMENT_BITS)]
        }
    }

    /// Appends one element, sealing the tail into a shared segment when it
    /// reaches [`SEGMENT_LEN`].
    pub fn push(&mut self, value: T) {
        self.tail.push(value);
        if self.tail.len() == SEGMENT_LEN {
            self.segments.push(Arc::new(std::mem::take(&mut self.tail)));
        }
    }

    /// Iterates over the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.segments
            .iter()
            .flat_map(|segment| segment.iter())
            .chain(self.tail.iter())
    }

    /// Builds a vector from a plain `Vec`, sealing full segments.
    pub fn from_vec(values: Vec<T>) -> Self {
        let mut out = CowVec::new();
        let mut values = values.into_iter();
        loop {
            let chunk: Vec<T> = values.by_ref().take(SEGMENT_LEN).collect();
            if chunk.len() == SEGMENT_LEN {
                out.segments.push(Arc::new(chunk));
            } else {
                out.tail = chunk;
                return out;
            }
        }
    }

    /// Number of sealed (shared) segments — exposed so the maintenance
    /// experiments can show clone cost is O(segments), not O(rows).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The contiguous elements of `segment`: a sealed segment's full
    /// [`SEGMENT_LEN`] elements, or the (possibly shorter) tail for
    /// `segment == segment_count()`. Lets segment-granular consumers (zone
    /// building, segment scans) read a whole segment as one slice instead
    /// of [`SEGMENT_LEN`] `get` calls.
    ///
    /// # Panics
    /// Panics if `segment > segment_count()`, or if it names an empty tail.
    #[inline]
    pub fn segment_slice(&self, segment: usize) -> &[T] {
        if segment < self.segments.len() {
            &self.segments[segment]
        } else {
            assert!(
                segment == self.segments.len() && !self.tail.is_empty(),
                "segment {segment} out of range"
            );
            &self.tail
        }
    }
}

impl<T> FromIterator<T> for CowVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = CowVec::new();
        for value in iter {
            out.push(value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_len_roundtrip_across_segment_boundaries() {
        let mut v: CowVec<usize> = CowVec::new();
        assert!(v.is_empty());
        let n = SEGMENT_LEN * 2 + 17;
        for i in 0..n {
            v.push(i);
        }
        assert_eq!(v.len(), n);
        assert_eq!(v.segment_count(), 2);
        assert!(!v.is_empty());
        for i in (0..n).step_by(997) {
            assert_eq!(*v.get(i), i);
        }
        assert_eq!(*v.get(n - 1), n - 1);
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected.len(), n);
        assert!(collected.iter().enumerate().all(|(i, &x)| i == x));
    }

    #[test]
    fn from_vec_matches_push() {
        let n = SEGMENT_LEN + 3;
        let pushed: CowVec<usize> = (0..n).collect();
        let converted = CowVec::from_vec((0..n).collect());
        assert_eq!(pushed.len(), converted.len());
        assert_eq!(pushed.segment_count(), converted.segment_count());
        assert!(pushed.iter().zip(converted.iter()).all(|(a, b)| a == b));
        // Exactly one full segment converts with an empty tail.
        let exact = CowVec::from_vec((0..SEGMENT_LEN).collect::<Vec<usize>>());
        assert_eq!(exact.len(), SEGMENT_LEN);
        assert_eq!(exact.segment_count(), 1);
    }

    #[test]
    fn clones_share_sealed_segments() {
        let n = SEGMENT_LEN * 3 + 5;
        let original: CowVec<u64> = (0..n as u64).collect();
        let mut clone = original.clone();
        for (a, b) in original.segments.iter().zip(&clone.segments) {
            assert!(Arc::ptr_eq(a, b), "sealed segments are shared, not copied");
        }
        // Appending to the clone leaves the original untouched.
        clone.push(999);
        assert_eq!(clone.len(), n + 1);
        assert_eq!(original.len(), n);
        assert_eq!(*clone.get(n), 999);
    }

    #[test]
    fn segment_slice_views_sealed_segments_and_the_tail() {
        let n = SEGMENT_LEN + 5;
        let v: CowVec<usize> = (0..n).collect();
        assert_eq!(v.segment_slice(0).len(), SEGMENT_LEN);
        assert_eq!(v.segment_slice(0)[17], 17);
        assert_eq!(v.segment_slice(1), &[SEGMENT_LEN, SEGMENT_LEN + 1, SEGMENT_LEN + 2, SEGMENT_LEN + 3, SEGMENT_LEN + 4]);
    }

    #[test]
    #[should_panic]
    fn segment_slice_past_the_tail_panics() {
        let v: CowVec<u32> = (0..10).collect();
        v.segment_slice(1);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let v: CowVec<u32> = (0..10).collect();
        v.get(10);
    }
}
