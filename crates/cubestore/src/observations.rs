//! The observation → fact-row index, layered for copy-on-write refreshes.
//!
//! Incremental maintenance needs to know, for every materialized
//! observation node, which fact row it occupies (to detect mutations of
//! already-materialized data and to resolve removals to a tombstone row).
//! A plain `HashMap<Term, usize>` would make every delta refresh clone the
//! whole map — O(rows) `Term` clones for a 1-row append. Instead the index
//! is layered: a large, `Arc`-shared **base** built at materialization
//! time, plus a small mutable **overlay** recording the rows appended (and
//! the nodes removed) since. A clone shares the base and copies only the
//! overlay; when the overlay outgrows a fraction of the base, it is merged
//! down once — amortized O(delta) per refresh.

use std::collections::HashMap;
use std::sync::Arc;

use rdf::Term;

/// Overlay entries per base entry tolerated before a merge (1/8th), so
/// lookup stays two probes and the amortized merge cost per appended row
/// is O(1).
const MERGE_DENOMINATOR: usize = 8;

/// Overlay size below which no merge happens regardless of the ratio.
const MERGE_MINIMUM: usize = 64;

/// A layered observation → row map with cheap clones.
#[derive(Debug, Clone, Default)]
pub struct ObservationIndex {
    /// The shared bulk of the index.
    base: Arc<HashMap<Term, usize>>,
    /// Recent changes: `Some(row)` = inserted/overridden, `None` = removed.
    overlay: HashMap<Term, Option<usize>>,
    /// Number of live entries across both layers.
    live: usize,
}

impl ObservationIndex {
    /// Creates an index over the rows assigned at build time.
    pub fn from_map(base: HashMap<Term, usize>) -> Self {
        let live = base.len();
        ObservationIndex {
            base: Arc::new(base),
            overlay: HashMap::new(),
            live,
        }
    }

    /// The fact row of an observation node, if it is materialized (and not
    /// removed).
    pub fn row_of(&self, node: &Term) -> Option<usize> {
        match self.overlay.get(node) {
            Some(entry) => *entry,
            None => self.base.get(node).copied(),
        }
    }

    /// True if `node` is a live materialized observation.
    pub fn contains(&self, node: &Term) -> bool {
        self.row_of(node).is_some()
    }

    /// Number of live observations.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no observation is materialized.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Records that `node` occupies fact row `row`.
    pub fn insert(&mut self, node: Term, row: usize) {
        if self.row_of(&node).is_none() {
            self.live += 1;
        }
        self.overlay.insert(node, Some(row));
        self.maybe_merge();
    }

    /// Removes `node` from the index (its row was tombstoned). Returns the
    /// row it occupied.
    pub fn remove(&mut self, node: &Term) -> Option<usize> {
        let row = self.row_of(node)?;
        self.live -= 1;
        if self.base.contains_key(node) {
            self.overlay.insert(node.clone(), None);
        } else {
            self.overlay.remove(node);
        }
        self.maybe_merge();
        Some(row)
    }

    /// Merges the overlay into the base once it outgrows the ratio — one
    /// O(rows) rebuild amortized over many O(delta) refreshes.
    fn maybe_merge(&mut self) {
        if self.overlay.len() < MERGE_MINIMUM
            || self.overlay.len() * MERGE_DENOMINATOR < self.base.len()
        {
            return;
        }
        let mut merged = HashMap::with_capacity(self.live);
        for (node, row) in self.base.iter() {
            if !self.overlay.contains_key(node) {
                merged.insert(node.clone(), *row);
            }
        }
        for (node, entry) in self.overlay.drain() {
            if let Some(row) = entry {
                merged.insert(node, row);
            }
        }
        self.base = Arc::new(merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> Term {
        Term::iri(format!("http://example.org/obs/{i}"))
    }

    #[test]
    fn layered_insert_remove_lookup() {
        let base: HashMap<Term, usize> = (0..10).map(|i| (node(i), i)).collect();
        let mut index = ObservationIndex::from_map(base);
        assert_eq!(index.len(), 10);
        assert_eq!(index.row_of(&node(3)), Some(3));

        index.insert(node(100), 10);
        assert_eq!(index.len(), 11);
        assert!(index.contains(&node(100)));

        // Removing a base entry shadows it; removing an overlay entry
        // drops it outright.
        assert_eq!(index.remove(&node(3)), Some(3));
        assert_eq!(index.remove(&node(100)), Some(10));
        assert_eq!(index.len(), 9);
        assert!(!index.contains(&node(3)));
        assert!(!index.contains(&node(100)));
        assert_eq!(index.remove(&node(3)), None, "double remove");
        assert!(!index.is_empty());
    }

    #[test]
    fn clones_share_the_base() {
        let base: HashMap<Term, usize> = (0..100).map(|i| (node(i), i)).collect();
        let mut index = ObservationIndex::from_map(base);
        let clone = index.clone();
        assert!(Arc::ptr_eq(&index.base, &clone.base));
        index.insert(node(500), 100);
        assert!(
            Arc::ptr_eq(&index.base, &clone.base),
            "small overlay growth does not clone the base"
        );
        assert!(!clone.contains(&node(500)));
    }

    #[test]
    fn overlay_merges_down_when_it_outgrows_the_ratio() {
        let base: HashMap<Term, usize> = (0..64).map(|i| (node(i), i)).collect();
        let mut index = ObservationIndex::from_map(base);
        index.remove(&node(0));
        for i in 0..80 {
            index.insert(node(1000 + i), 64 + i);
        }
        // Removal-only streams merge too (removal-heavy delta sequences
        // must not accumulate an O(removals) overlay between compactions).
        let mut removals = ObservationIndex::from_map(
            (0..512).map(|i| (node(i), i)).collect::<HashMap<_, _>>(),
        );
        for i in 0..200 {
            removals.remove(&node(i));
        }
        assert!(
            removals.overlay.len() < MERGE_MINIMUM,
            "removals merged down (len {})",
            removals.overlay.len()
        );
        assert_eq!(removals.len(), 312);
        assert!(!removals.contains(&node(5)));
        assert!(removals.contains(&node(300)));
        // The merge fires somewhere along the way, so the overlay never
        // accumulates all 81 changes.
        assert!(
            index.overlay.len() < MERGE_MINIMUM,
            "overlay merged into the base after outgrowing it (len {})",
            index.overlay.len()
        );
        assert!(index.base.len() > 64, "base absorbed the merged entries");
        assert_eq!(index.len(), 64 - 1 + 80);
        assert!(!index.contains(&node(0)), "removal survives the merge");
        assert_eq!(index.row_of(&node(1079)), Some(64 + 79));
        assert_eq!(index.row_of(&node(5)), Some(5));
    }
}
