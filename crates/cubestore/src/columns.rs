//! The columns of a materialized cube: dictionary-encoded dimension-member
//! columns and dense typed measure vectors.
//!
//! All per-row storage is backed by [`CowVec`], so cloning a cube for a
//! delta refresh shares the sealed column segments instead of copying
//! every row, and an append extends only each column's small mutable tail
//! (see the [`crate::cowvec`] module docs for the cost model).

use qb4olap::AggregateFunction;
use rdf::{Iri, Literal, Term};

use crate::cowvec::CowVec;
use crate::dictionary::{Dictionary, MemberId, NO_MEMBER};
use crate::error::CubeStoreError;

/// One dimension of the fact table: the member of the dimension's bottom
/// level on each observation, dictionary-encoded.
#[derive(Debug, Clone)]
pub struct DimensionColumn {
    /// The dimension IRI (e.g. `schema:citizenshipDim`).
    pub dimension: Iri,
    /// The dimension's bottom level, which doubles as the observation
    /// property carrying the member (e.g. `property:citizen`).
    pub bottom_level: Iri,
    /// Per-row member codes into [`DimensionColumn::dictionary`]
    /// ([`NO_MEMBER`] where the observation has no value for the dimension).
    codes: CowVec<MemberId>,
    /// The bottom-member dictionary. It may contain members that are *not*
    /// declared `qb4o:memberOf` the bottom level; the roll-up maps decide
    /// what those members reach.
    pub dictionary: Dictionary,
}

impl DimensionColumn {
    /// Creates a column for a dimension with pre-encoded codes.
    pub fn new(
        dimension: Iri,
        bottom_level: Iri,
        codes: Vec<MemberId>,
        dictionary: Dictionary,
    ) -> Self {
        DimensionColumn {
            dimension,
            bottom_level,
            codes: CowVec::from_vec(codes),
            dictionary,
        }
    }

    /// The member code of one row ([`NO_MEMBER`] if unbound).
    #[inline]
    pub fn code(&self, row: usize) -> MemberId {
        *self.codes.get(row)
    }

    /// Iterates over the per-row codes in row order (tombstoned rows
    /// included — liveness lives on the cube, not the column).
    pub fn codes(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.codes.iter().copied()
    }

    /// The contiguous codes of one [`crate::cowvec::SEGMENT_LEN`]-row
    /// column segment (see [`CowVec::segment_slice`]), for segment-granular
    /// scans. Panics on a segment past the tail.
    #[inline]
    pub fn code_segment(&self, segment: usize) -> &[MemberId] {
        self.codes.segment_slice(segment)
    }

    /// Number of physical rows (tombstoned rows included).
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of physical rows with no member bound.
    pub fn unbound_rows(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NO_MEMBER).count()
    }

    /// Appends one fact row (incremental maintenance), encoding the member
    /// into the column dictionary ([`NO_MEMBER`] when the observation has
    /// no value for the dimension).
    pub fn push_row(&mut self, member: Option<&Term>) {
        let code = match member {
            Some(term) => self.dictionary.encode(term),
            None => NO_MEMBER,
        };
        self.codes.push(code);
    }
}

/// One measure value routed for aggregation: integer-routed values
/// accumulate exactly (no `f64` round-trip), float-routed values go through
/// the order-independent compensated sum. See
/// [`MeasureVector::numeric_at`] for the routing rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MeasureValue {
    /// An input the SPARQL engine reads as an integer.
    Integer(i64),
    /// An input the SPARQL engine reads as a float.
    Float(f64),
}

/// A dense, typed vector of measure values.
///
/// The variant is chosen at build time from the XSD datatype of the measure
/// literals, and the builder verifies that every literal round-trips exactly
/// through the variant's reconstruction (so MIN/MAX can return the same
/// [`Term`]s the SPARQL engine returns). Data that does not round-trip is
/// rejected as [`CubeStoreError::Unsupported`].
#[derive(Debug, Clone)]
pub enum MeasureVector {
    /// `xsd:integer` values.
    Integer(CowVec<i64>),
    /// `xsd:decimal` values.
    Decimal(CowVec<f64>),
    /// `xsd:double` values.
    Double(CowVec<f64>),
}

impl MeasureVector {
    /// Creates an empty vector of the variant matching `literal`'s datatype.
    pub fn for_literal(literal: &Literal) -> Result<Self, CubeStoreError> {
        let datatype = literal.datatype();
        if *datatype == rdf::vocab::xsd::integer() {
            Ok(MeasureVector::Integer(CowVec::new()))
        } else if *datatype == rdf::vocab::xsd::decimal() {
            Ok(MeasureVector::Decimal(CowVec::new()))
        } else if *datatype == rdf::vocab::xsd::double() {
            Ok(MeasureVector::Double(CowVec::new()))
        } else {
            Err(CubeStoreError::Unsupported(format!(
                "measure values of datatype <{}> are not supported by the columnar engine",
                datatype.as_str()
            )))
        }
    }

    /// Appends a value, verifying it reconstructs to exactly `literal`.
    pub fn push(&mut self, literal: &Literal) -> Result<(), CubeStoreError> {
        let fail = |lit: &Literal| {
            CubeStoreError::Unsupported(format!(
                "measure literal \"{}\"^^<{}> does not round-trip through the columnar encoding",
                lit.lexical(),
                lit.datatype().as_str()
            ))
        };
        match self {
            MeasureVector::Integer(values) => {
                let v = literal.as_integer().ok_or_else(|| fail(literal))?;
                if Literal::integer(v) != *literal {
                    return Err(fail(literal));
                }
                values.push(v);
            }
            MeasureVector::Decimal(values) => {
                let v = literal.as_double().ok_or_else(|| fail(literal))?;
                if Literal::decimal(v) != *literal {
                    return Err(fail(literal));
                }
                values.push(v);
            }
            MeasureVector::Double(values) => {
                let v = literal.as_double().ok_or_else(|| fail(literal))?;
                if Literal::double(v) != *literal {
                    return Err(fail(literal));
                }
                values.push(v);
            }
        }
        Ok(())
    }

    /// The numeric value of one row as `f64`. For [`MeasureVector::Integer`]
    /// this **rounds** above 2⁵³ (the `i64` → `f64` conversion is lossy
    /// there); aggregation goes through [`MeasureVector::numeric_at`]
    /// instead, which keeps integers exact end-to-end.
    #[inline]
    pub fn value(&self, row: usize) -> f64 {
        match self {
            MeasureVector::Integer(v) => *v.get(row) as f64,
            MeasureVector::Decimal(v) | MeasureVector::Double(v) => *v.get(row),
        }
    }

    /// One row routed exactly as the SPARQL engine routes the corresponding
    /// literal ([`MeasureVector::term_at`]) into its aggregates: a lexical
    /// form that parses as `i64` is an integer input, everything else a
    /// float input. The routing decides which [`sparql::NumericSum`] path a
    /// value takes, so it must match the literal-side routing bit-for-bit:
    ///
    /// * `Integer` rows always route integer (canonical `xsd:integer`
    ///   lexicals always parse);
    /// * `Double` rows route integer when integral and within `i64` range
    ///   (the canonical lexical of `2.0` is `"2"`);
    /// * `Decimal` rows additionally need `|v| ≥ 1e15`: below that the
    ///   canonical lexical keeps a trailing `.0` and never parses as an
    ///   integer (see `rdf`'s decimal formatting).
    ///
    /// `tests::numeric_routing_matches_the_literal_parse` pins the
    /// equivalence against an actual parse of [`MeasureVector::term_at`].
    #[inline]
    pub fn numeric_at(&self, row: usize) -> MeasureValue {
        /// The `i64` the value's canonical lexical form denotes, if it
        /// parses as one. Below 2⁵³ the shortest round-trip form is the
        /// exact integer; beyond that it may denote a *neighbouring*
        /// integer (`4.611686018427388e18` prints as
        /// `"4611686018427388000"`, not 2⁶²), so the actual form is
        /// consulted — exactly what the engine's `as_integer` read does.
        fn int_if_lexically_integer(value: f64) -> Option<i64> {
            const TWO_53: f64 = 9_007_199_254_740_992.0;
            if value.fract() != 0.0 {
                return None;
            }
            if value.abs() < TWO_53 {
                return Some(value as i64);
            }
            value.to_string().parse::<i64>().ok()
        }
        match self {
            MeasureVector::Integer(v) => MeasureValue::Integer(*v.get(row)),
            MeasureVector::Decimal(v) => {
                let value = *v.get(row);
                match int_if_lexically_integer(value) {
                    Some(int) if value.abs() >= 1e15 => MeasureValue::Integer(int),
                    _ => MeasureValue::Float(value),
                }
            }
            MeasureVector::Double(v) => {
                let value = *v.get(row);
                match int_if_lexically_integer(value) {
                    Some(int) => MeasureValue::Integer(int),
                    None => MeasureValue::Float(value),
                }
            }
        }
    }

    /// Reconstructs the original [`Term`] for a raw value of this vector
    /// (used by MIN/MAX, whose SPARQL result is one of the input terms, and
    /// by the removal path, which rebuilds an observation's measure triples
    /// from its row to verify a removal is complete).
    pub fn term_for(&self, value: f64) -> Term {
        match self {
            MeasureVector::Integer(_) => Term::Literal(Literal::integer(value as i64)),
            MeasureVector::Decimal(_) => Term::Literal(Literal::decimal(value)),
            MeasureVector::Double(_) => Term::Literal(Literal::double(value)),
        }
    }

    /// Reconstructs the exact [`Term`] of one row — unlike
    /// [`MeasureVector::term_for`] this never round-trips an integer
    /// through `f64`, so it is lossless for the full `i64` range. The
    /// removal path uses it to rebuild an observation's measure triples.
    pub fn term_at(&self, row: usize) -> Term {
        match self {
            MeasureVector::Integer(v) => Term::Literal(Literal::integer(*v.get(row))),
            MeasureVector::Decimal(v) => Term::Literal(Literal::decimal(*v.get(row))),
            MeasureVector::Double(v) => Term::Literal(Literal::double(*v.get(row))),
        }
    }

    /// Number of physical rows (tombstoned rows included).
    pub fn len(&self) -> usize {
        match self {
            MeasureVector::Integer(v) => v.len(),
            MeasureVector::Decimal(v) | MeasureVector::Double(v) => v.len(),
        }
    }

    /// True if the vector has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One measure of the fact table.
#[derive(Debug, Clone)]
pub struct MeasureColumn {
    /// The measure property (e.g. `sdmx-measure:obsValue`).
    pub property: Iri,
    /// The aggregate function attached by the QB4OLAP schema.
    pub aggregate: AggregateFunction,
    /// The values, one per row.
    pub data: MeasureVector,
}

impl MeasureColumn {
    /// Appends one value (incremental maintenance). An empty column — the
    /// placeholder integer vector a zero-row build leaves behind — is
    /// re-typed to the literal's datatype first, exactly as the builder
    /// would have typed it from the first accepted row.
    pub fn push_value(&mut self, literal: &Literal) -> Result<(), CubeStoreError> {
        if self.data.is_empty() {
            // An unsupported datatype falls through to push(), whose error
            // names the offending literal.
            if let Ok(vector) = MeasureVector::for_literal(literal) {
                self.data = vector;
            }
        }
        self.data.push(literal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_column_accessors() {
        let mut dict = Dictionary::new();
        let a = dict.encode(&Term::iri("http://m/a"));
        let column = DimensionColumn::new(
            Iri::new("http://dim"),
            Iri::new("http://level"),
            vec![a, NO_MEMBER, a],
            dict,
        );
        assert_eq!(column.len(), 3);
        assert!(!column.is_empty());
        assert_eq!(column.code(1), NO_MEMBER);
        assert_eq!(column.unbound_rows(), 1);
        assert_eq!(column.codes().collect::<Vec<_>>(), vec![a, NO_MEMBER, a]);
    }

    #[test]
    fn integer_vector_roundtrip() {
        let lit = Literal::integer(42);
        let mut vector = MeasureVector::for_literal(&lit).unwrap();
        vector.push(&lit).unwrap();
        vector.push(&Literal::integer(-7)).unwrap();
        assert_eq!(vector.len(), 2);
        assert!(!vector.is_empty());
        assert_eq!(vector.value(0), 42.0);
        assert_eq!(vector.term_for(-7.0), Term::integer(-7));
        // A decimal literal cannot be pushed into an integer vector.
        assert!(vector.push(&Literal::decimal(1.5)).is_err());
        // A non-canonical lexical form does not round-trip.
        assert!(vector
            .push(&Literal::typed("007", rdf::vocab::xsd::integer()))
            .is_err());
    }

    #[test]
    fn decimal_and_double_vectors() {
        let mut decimal = MeasureVector::for_literal(&Literal::decimal(1.5)).unwrap();
        decimal.push(&Literal::decimal(1.5)).unwrap();
        assert_eq!(decimal.value(0), 1.5);
        assert_eq!(decimal.term_for(1.5), Term::Literal(Literal::decimal(1.5)));

        let mut double = MeasureVector::for_literal(&Literal::double(2.25)).unwrap();
        double.push(&Literal::double(2.25)).unwrap();
        assert_eq!(double.term_for(2.25), Term::Literal(Literal::double(2.25)));
    }

    #[test]
    fn unsupported_datatypes_are_rejected() {
        assert!(MeasureVector::for_literal(&Literal::string("x")).is_err());
        assert!(MeasureVector::for_literal(&Literal::boolean(true)).is_err());
    }

    /// The aggregation routing of `numeric_at` must be exactly "does the
    /// canonical lexical form parse as i64" — the read the SPARQL engine
    /// performs on the literal `term_at` reconstructs.
    #[test]
    fn numeric_routing_matches_the_literal_parse() {
        let tricky = [
            0.0,
            -0.0,
            2.0,
            2.5,
            -3.75,
            1e15,
            1e15 - 0.5,
            -1e15,
            9.007199254740993e15, // 2^53 + 1-ish: integral, huge
            9.223372036854776e18, // 2^63: one past i64::MAX
            -9.223372036854776e18, // exactly i64::MIN
            4.611686018427388e18, // 2^62
            1e300,
        ];
        for make in [MeasureVector::Decimal, MeasureVector::Double] {
            let vector = make(CowVec::from_vec(tricky.to_vec()));
            for (row, &raw) in tricky.iter().enumerate() {
                let literal = match vector.term_at(row) {
                    Term::Literal(l) => l,
                    other => panic!("measure term {other} is not a literal"),
                };
                let expected = match literal.as_integer() {
                    Some(i) => MeasureValue::Integer(i),
                    None => MeasureValue::Float(raw),
                };
                assert_eq!(
                    vector.numeric_at(row),
                    expected,
                    "routing diverges from the literal parse for {} ({:?})",
                    literal.lexical(),
                    vector
                );
            }
        }
    }

    /// Integer rows keep the full `i64` range exact end-to-end: neither
    /// `numeric_at` nor `term_at` round-trips through `f64`.
    #[test]
    fn integer_boundary_values_stay_exact() {
        let mut vector = MeasureVector::for_literal(&Literal::integer(0)).unwrap();
        for v in [i64::MAX, i64::MAX - 1, i64::MIN, i64::MIN + 1] {
            vector.push(&Literal::integer(v)).unwrap();
        }
        assert_eq!(vector.numeric_at(0), MeasureValue::Integer(i64::MAX));
        assert_eq!(vector.numeric_at(1), MeasureValue::Integer(i64::MAX - 1));
        assert_eq!(vector.numeric_at(2), MeasureValue::Integer(i64::MIN));
        assert_eq!(vector.numeric_at(3), MeasureValue::Integer(i64::MIN + 1));
        assert_eq!(vector.term_at(1), Term::integer(i64::MAX - 1), "no f64 round-trip");
        // The f64 view *does* round there — which is why aggregation must
        // not use it for integer vectors.
        assert_eq!(vector.value(0), vector.value(1));
    }
}
