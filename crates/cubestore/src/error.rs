//! Error types of the columnar cube engine, including the enumerable
//! delta-refusal reasons incremental maintenance reports.

use std::fmt;

/// Why a store delta could not be replayed onto the columns — the typed
/// half of a [`DeltaRefusal`].
///
/// The variants enumerate every refusal the delta classifier can produce
/// (see the decision table in the [`crate::delta`] module docs); tests
/// iterate [`RefusalKind::ALL`] to keep the table and the code in sync.
/// Every refusal makes the catalog fall back to a full rebuild, so a wrong
/// classification can cost performance but never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RefusalKind {
    /// A schema/hierarchy-structure triple was inserted or removed.
    SchemaStructure,
    /// A `skos:broader` link was added to an already-materialized member.
    RollupLinkAdded,
    /// A `skos:broader` link of a materialized member was removed.
    RollupLinkRemoved,
    /// A `qb4o:memberOf` declaration of a materialized member was removed.
    MemberRemoved,
    /// A member declaration collided with a term already frozen in the
    /// fact columns or reachable in the hierarchy.
    MemberConflict,
    /// An already-materialized observation *gained* a relevant triple
    /// (dimension or measure value), or a removal targeted a value of it
    /// the build never materialized (a duplicate the store held) — either
    /// way its frozen row can no longer be trusted. Removals of the
    /// materialized values themselves are delta-appliable: the row is
    /// tombstoned and the surviving fragment re-classified (see the
    /// decision table in the [`crate::delta`] module docs).
    ObservationMutated,
    /// A previously dropped (incomplete) observation gained or lost
    /// triples — a fresh build might now classify it differently.
    DroppedObservationMutated,
    /// A new observation arrived incomplete (untyped, or missing a
    /// measure value).
    IncompleteObservation,
    /// A new observation carried several values for one dimension or
    /// measure, or a non-literal measure value.
    MalformedObservation,
    /// An attribute value conflicted with the one already materialized.
    AttributeConflict,
    /// An attribute value of a materialized member was removed.
    AttributeRemoved,
    /// An attribute value arrived for a member the cube has never seen.
    UnknownMemberAttribute,
    /// The dataset's `rdfs:label` changed or was removed.
    DatasetLabelChanged,
}

impl RefusalKind {
    /// Every refusal kind, for exhaustive enumeration in tests and docs.
    ///
    /// Two historical kinds are gone, lifted into the delta path:
    /// `NonIntegralAppend` (float aggregation is order-independent now —
    /// compensated summation — so float appends replay exactly) and
    /// `PartialObservationRemoval` (partial removals tombstone the row and
    /// re-classify the surviving fragment instead of rebuilding).
    pub const ALL: [RefusalKind; 13] = [
        RefusalKind::SchemaStructure,
        RefusalKind::RollupLinkAdded,
        RefusalKind::RollupLinkRemoved,
        RefusalKind::MemberRemoved,
        RefusalKind::MemberConflict,
        RefusalKind::ObservationMutated,
        RefusalKind::DroppedObservationMutated,
        RefusalKind::IncompleteObservation,
        RefusalKind::MalformedObservation,
        RefusalKind::AttributeConflict,
        RefusalKind::AttributeRemoved,
        RefusalKind::UnknownMemberAttribute,
        RefusalKind::DatasetLabelChanged,
    ];

    /// A stable, slug-like name (used in maintenance telemetry).
    pub fn name(self) -> &'static str {
        match self {
            RefusalKind::SchemaStructure => "schema-structure",
            RefusalKind::RollupLinkAdded => "rollup-link-added",
            RefusalKind::RollupLinkRemoved => "rollup-link-removed",
            RefusalKind::MemberRemoved => "member-removed",
            RefusalKind::MemberConflict => "member-conflict",
            RefusalKind::ObservationMutated => "observation-mutated",
            RefusalKind::DroppedObservationMutated => "dropped-observation-mutated",
            RefusalKind::IncompleteObservation => "incomplete-observation",
            RefusalKind::MalformedObservation => "malformed-observation",
            RefusalKind::AttributeConflict => "attribute-conflict",
            RefusalKind::AttributeRemoved => "attribute-removed",
            RefusalKind::UnknownMemberAttribute => "unknown-member-attribute",
            RefusalKind::DatasetLabelChanged => "dataset-label-changed",
        }
    }
}

impl fmt::Display for RefusalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One delta-refusal: the enumerable kind plus the human-readable detail
/// (which triple/node/member tripped the classifier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRefusal {
    /// The enumerable refusal class.
    pub kind: RefusalKind,
    /// What exactly was refused, for logs and error messages.
    pub detail: String,
}

impl DeltaRefusal {
    /// Creates a refusal.
    pub fn new(kind: RefusalKind, detail: impl Into<String>) -> Self {
        DeltaRefusal {
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DeltaRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.detail, self.kind)
    }
}

/// Errors raised while materializing or querying a columnar cube.
#[derive(Debug, Clone, PartialEq)]
pub enum CubeStoreError {
    /// The cube could not be materialized from the endpoint.
    Build(String),
    /// The data uses a feature the columnar engine does not implement
    /// (non-functional roll-ups, non-numeric measures, ...). Callers should
    /// fall back to the SPARQL backend.
    Unsupported(String),
    /// The query references schema elements the materialized cube does not
    /// have (unknown dimension, level without a roll-up map, ...).
    Query(String),
    /// A store delta cannot be applied incrementally. Callers fall back to
    /// a full rebuild; the [`DeltaRefusal`] becomes the rebuild reason the
    /// maintenance report records.
    DeltaUnsupported(DeltaRefusal),
    /// The endpoint failed while the cube was being materialized.
    Sparql(String),
}

impl fmt::Display for CubeStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeStoreError::Build(m) => write!(f, "cube build error: {m}"),
            CubeStoreError::Unsupported(m) => write!(f, "unsupported by the columnar engine: {m}"),
            CubeStoreError::Query(m) => write!(f, "columnar query error: {m}"),
            CubeStoreError::DeltaUnsupported(r) => {
                write!(f, "delta cannot be applied incrementally: {r}")
            }
            CubeStoreError::Sparql(m) => write!(f, "endpoint error during materialization: {m}"),
        }
    }
}

impl std::error::Error for CubeStoreError {}

impl From<sparql::SparqlError> for CubeStoreError {
    fn from(e: sparql::SparqlError) -> Self {
        CubeStoreError::Sparql(e.to_string())
    }
}

impl From<qb::QbError> for CubeStoreError {
    fn from(e: qb::QbError) -> Self {
        CubeStoreError::Build(e.to_string())
    }
}

impl From<qb4olap::Qb4olapError> for CubeStoreError {
    fn from(e: qb4olap::Qb4olapError) -> Self {
        CubeStoreError::Build(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CubeStoreError::Build("b".into()).to_string().contains("b"));
        assert!(CubeStoreError::Unsupported("u".into())
            .to_string()
            .contains("unsupported"));
        assert!(CubeStoreError::Query("q".into()).to_string().contains("q"));
        let e: CubeStoreError = sparql::SparqlError::eval("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: CubeStoreError = qb::QbError::NotFound("d".into()).into();
        assert!(e.to_string().contains("d"));
        let e: CubeStoreError = qb4olap::Qb4olapError::SchemaNotFound("s".into()).into();
        assert!(e.to_string().contains("s"));
    }

    #[test]
    fn refusals_carry_kind_and_detail() {
        let refusal = DeltaRefusal::new(RefusalKind::RollupLinkRemoved, "link gone");
        let error = CubeStoreError::DeltaUnsupported(refusal.clone());
        let rendered = error.to_string();
        assert!(rendered.contains("link gone"), "{rendered}");
        assert!(rendered.contains("rollup-link-removed"), "{rendered}");
        assert_eq!(refusal.kind, RefusalKind::RollupLinkRemoved);
    }

    #[test]
    fn refusal_kinds_enumerate_with_distinct_names() {
        let names: std::collections::BTreeSet<&str> =
            RefusalKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), RefusalKind::ALL.len(), "names are distinct");
    }
}
