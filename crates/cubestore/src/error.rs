//! Error type of the columnar cube engine.

use std::fmt;

/// Errors raised while materializing or querying a columnar cube.
#[derive(Debug, Clone, PartialEq)]
pub enum CubeStoreError {
    /// The cube could not be materialized from the endpoint.
    Build(String),
    /// The data uses a feature the columnar engine does not implement
    /// (non-functional roll-ups, non-numeric measures, ...). Callers should
    /// fall back to the SPARQL backend.
    Unsupported(String),
    /// The query references schema elements the materialized cube does not
    /// have (unknown dimension, level without a roll-up map, ...).
    Query(String),
    /// A store delta cannot be applied incrementally (it touches
    /// schema/hierarchy structure, mutates already-materialized data, or
    /// removes relevant triples). Callers fall back to a full rebuild; the
    /// message is the rebuild reason the maintenance report records.
    DeltaUnsupported(String),
    /// The endpoint failed while the cube was being materialized.
    Sparql(String),
}

impl fmt::Display for CubeStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CubeStoreError::Build(m) => write!(f, "cube build error: {m}"),
            CubeStoreError::Unsupported(m) => write!(f, "unsupported by the columnar engine: {m}"),
            CubeStoreError::Query(m) => write!(f, "columnar query error: {m}"),
            CubeStoreError::DeltaUnsupported(m) => {
                write!(f, "delta cannot be applied incrementally: {m}")
            }
            CubeStoreError::Sparql(m) => write!(f, "endpoint error during materialization: {m}"),
        }
    }
}

impl std::error::Error for CubeStoreError {}

impl From<sparql::SparqlError> for CubeStoreError {
    fn from(e: sparql::SparqlError) -> Self {
        CubeStoreError::Sparql(e.to_string())
    }
}

impl From<qb::QbError> for CubeStoreError {
    fn from(e: qb::QbError) -> Self {
        CubeStoreError::Build(e.to_string())
    }
}

impl From<qb4olap::Qb4olapError> for CubeStoreError {
    fn from(e: qb4olap::Qb4olapError) -> Self {
        CubeStoreError::Build(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(CubeStoreError::Build("b".into()).to_string().contains("b"));
        assert!(CubeStoreError::Unsupported("u".into())
            .to_string()
            .contains("unsupported"));
        assert!(CubeStoreError::Query("q".into()).to_string().contains("q"));
        let e: CubeStoreError = sparql::SparqlError::eval("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: CubeStoreError = qb::QbError::NotFound("d".into()).into();
        assert!(e.to_string().contains("d"));
        let e: CubeStoreError = qb4olap::Qb4olapError::SchemaNotFound("s".into()).into();
        assert!(e.to_string().contains("s"));
    }
}
