//! The tombstone bitmap over fact rows: how observation *removals* become
//! delta-appliable instead of forcing a full rebuild.
//!
//! Removing a fact row from columnar storage in place would shift every
//! later row (and invalidate the observation → row index). Instead the row
//! stays physically present and is marked dead here; the executor's scan
//! skips dead rows, so query results are identical to a rebuild without
//! the removed observation. *Partial* removals tombstone through the same
//! bitmap: the old row dies, and — when the surviving fragment is still a
//! complete observation — a replacement row is appended at the column
//! tail (see the [`crate::delta`] decision table). Dead rows still occupy
//! memory, so the catalog compacts (re-materializes) a cube once its
//! live-row fraction drops below
//! [`crate::catalog::COMPACTION_LIVE_FRACTION`].
//!
//! The bit storage is `Arc`-shared between a cube and its delta-refreshed
//! clones: a refresh that removes nothing shares the bitmap outright, and
//! one that does remove pays a words-sized (`rows / 64` bits) copy — far
//! below the cost of cloning any column.

use std::sync::Arc;

use crate::cowvec::SEGMENT_LEN;

/// A copy-on-write bitmap marking dead (removed) fact rows.
///
/// Rows beyond the bitmap's allocated words are implicitly live, so pure
/// appends never touch (or grow) the bitmap.
#[derive(Debug, Clone, Default)]
pub struct Tombstones {
    /// Bit `row` set = row is dead. Lazily grown on the first removal past
    /// the current words.
    words: Arc<Vec<u64>>,
    /// Number of set bits, kept so live-row accounting is O(1).
    dead: usize,
    /// Dead rows per [`SEGMENT_LEN`]-row column segment, so the executor
    /// can skip a fully-dead segment (or elide per-row liveness checks in
    /// a fully-live one) without touching the bitmap. Indexed by
    /// `row / SEGMENT_LEN`, lazily grown like `words`.
    segment_dead: Arc<Vec<u32>>,
}

impl Tombstones {
    /// Creates an empty bitmap (every row live).
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `row` has been tombstoned.
    #[inline]
    pub fn is_dead(&self, row: usize) -> bool {
        self.words
            .get(row / 64)
            .is_some_and(|word| word & (1 << (row % 64)) != 0)
    }

    /// True if no row has been tombstoned (the scan can skip the per-row
    /// liveness check entirely).
    pub fn is_empty(&self) -> bool {
        self.dead == 0
    }

    /// Number of tombstoned rows.
    pub fn dead_rows(&self) -> usize {
        self.dead
    }

    /// Number of tombstoned rows inside column segment `segment`
    /// (rows `segment * SEGMENT_LEN ..`). Segments past the counters are
    /// implicitly fully live, mirroring `words`.
    #[inline]
    pub fn dead_in_segment(&self, segment: usize) -> usize {
        self.segment_dead
            .get(segment)
            .map_or(0, |&count| count as usize)
    }

    /// Marks `row` dead. Returns `false` (and changes nothing) if the row
    /// was already dead. Clones the shared words at most once per refresh.
    pub fn kill(&mut self, row: usize) -> bool {
        if self.is_dead(row) {
            return false;
        }
        let words = Arc::make_mut(&mut self.words);
        if words.len() <= row / 64 {
            words.resize(row / 64 + 1, 0);
        }
        words[row / 64] |= 1 << (row % 64);
        let segment = row / SEGMENT_LEN;
        let segment_dead = Arc::make_mut(&mut self.segment_dead);
        if segment_dead.len() <= segment {
            segment_dead.resize(segment + 1, 0);
        }
        segment_dead[segment] += 1;
        self.dead += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_and_query() {
        let mut t = Tombstones::new();
        assert!(t.is_empty());
        assert!(!t.is_dead(1000), "rows past the words are live");
        assert!(t.kill(3));
        assert!(t.kill(64));
        assert!(t.kill(200));
        assert!(!t.kill(64), "double kill is a no-op");
        assert_eq!(t.dead_rows(), 3);
        assert!(t.is_dead(3) && t.is_dead(64) && t.is_dead(200));
        assert!(!t.is_dead(4) && !t.is_dead(63) && !t.is_dead(201));
        assert!(!t.is_empty());
    }

    #[test]
    fn per_segment_dead_counts_track_kills() {
        let mut t = Tombstones::new();
        assert_eq!(t.dead_in_segment(0), 0);
        assert_eq!(t.dead_in_segment(99), 0, "past the counters = fully live");
        t.kill(0);
        t.kill(SEGMENT_LEN - 1);
        t.kill(SEGMENT_LEN);
        t.kill(SEGMENT_LEN * 3 + 7);
        assert!(!t.kill(0), "double kill does not double count");
        assert_eq!(t.dead_in_segment(0), 2);
        assert_eq!(t.dead_in_segment(1), 1);
        assert_eq!(t.dead_in_segment(2), 0);
        assert_eq!(t.dead_in_segment(3), 1);
        assert_eq!(
            (0..4).map(|s| t.dead_in_segment(s)).sum::<usize>(),
            t.dead_rows()
        );
    }

    #[test]
    fn clones_share_words_until_mutated() {
        let mut a = Tombstones::new();
        a.kill(10);
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.words, &b.words));
        b.kill(11);
        assert!(!Arc::ptr_eq(&a.words, &b.words), "copy-on-write");
        assert!(!a.is_dead(11));
        assert!(b.is_dead(10) && b.is_dead(11));
    }
}
