//! The delta overlay: non-blocking serving of a base cube plus pending
//! changes.
//!
//! A [`CubeSnapshot`] is what the catalog hands a reader: an immutable
//! `Arc` pair of the last fully-folded **base** cube and an optional
//! [`DeltaOverlay`] holding every change accreted since — appended rows,
//! tombstoned rows and new members, already merged into a copy-on-write
//! cube that shares all sealed segments with the base. Readers execute
//! against [`CubeSnapshot::cube`] without ever holding a catalog lock, so
//! a background fold or rebuild can run concurrently and publish its
//! result with an atomic swap.
//!
//! ## Why the merged overlay is bit-identical to a fold
//!
//! Overlay rows enter through [`MaterializedCube::apply_delta`] — the same
//! code path a blocking delta refresh uses. That means:
//!
//! * overlay rows are dictionary-encoded against the **same** (extended)
//!   dictionaries and run through the same compiled roll-up maps, so a
//!   scan cannot tell an overlay row from a folded one;
//! * aggregation order does not matter: integer sums are exact `i128`
//!   partials and float sums are compensated (see `sparql::numeric`), so
//!   `base rows ⊕ overlay rows` equals any re-folded row order bit for
//!   bit;
//! * tombstone masks only ever *remove* rows from consideration and
//!   `apply_delta` maintains the per-segment zone maps exactly (appends
//!   extend only the tail entry, tombstones never loosen bounds), so
//!   segment pruning commutes with the overlay: a segment pruned on the
//!   merged cube contains no row a folded cube would have scanned.
//!
//! The `QB2OLAP_NO_OVERLAY` environment variable (mirroring
//! `QB2OLAP_NO_PRUNE`) forces every snapshot serve down the blocking
//! fold-then-serve path, as a differential kill switch.

use std::sync::Arc;

use crate::build::MaterializedCube;

/// True unless the `QB2OLAP_NO_OVERLAY` kill switch is set (non-empty,
/// not `"0"`). With the switch thrown, [`crate::CubeCatalog::serve_snapshot`]
/// degrades to the blocking fold-then-serve path — results must be
/// bit-identical either way, which is exactly what the differential
/// campaigns check.
pub fn overlay_enabled() -> bool {
    !obs::env::kill_switch("QB2OLAP_NO_OVERLAY")
}

/// Total number of level members a cube serves (all levels summed).
pub(crate) fn member_total(cube: &MaterializedCube) -> usize {
    cube.levels().values().map(|index| index.member_count()).sum()
}

/// The changes accreted on top of a base cube since its last fold:
/// appended rows, tombstoned base rows and new members, held as an
/// immutable merged cube that shares every sealed segment with the base.
#[derive(Debug, Clone)]
pub struct DeltaOverlay {
    /// Base + overlay, merged through `apply_delta` (COW: sealed segments
    /// are `Arc`-shared with the base cube).
    merged: Arc<MaterializedCube>,
    /// Physical row count of the base the overlay was accreted on — the
    /// consistency anchor a torn snapshot would violate.
    base_rows: usize,
    /// Epoch of the base the overlay was accreted on.
    base_epoch: u64,
    /// The store epoch the overlay catches the snapshot up to.
    epoch: u64,
    /// Store deltas accreted into the overlay (cumulative since the base).
    deltas_applied: usize,
    /// Rows appended on top of the base.
    rows_appended: usize,
    /// Base (or earlier-overlay) rows tombstoned by the overlay.
    rows_tombstoned: usize,
    /// Level members added by the overlay.
    members_added: usize,
    /// The first bookkeeping underflow observed while accreting, if any —
    /// a merged cube with *fewer* rows/tombstones/members than its base
    /// means the fold mis-merged. Recorded instead of saturated away, and
    /// surfaced as an error by [`CubeSnapshot::verify_consistent`].
    underflow: Option<String>,
}

impl DeltaOverlay {
    /// Builds the overlay bookkeeping for `merged`, accreted on `base` at
    /// `base_epoch`, catching up to `epoch`. `prior_deltas` carries the
    /// delta count of the overlay this one replaces (accretion is
    /// cumulative until a fold resets the base).
    pub(crate) fn new(
        base: &MaterializedCube,
        base_epoch: u64,
        merged: Arc<MaterializedCube>,
        epoch: u64,
        prior_deltas: usize,
        newly_applied: usize,
    ) -> Self {
        // Checked, not saturating: `apply_delta` only ever *adds* rows,
        // tombstones and members on top of the base, so any of these
        // differences coming out negative means a mis-merged fold paired
        // the wrong base with this overlay. Saturation used to mask that
        // as a plausible-looking zero; now the underflow is recorded and
        // `verify_consistent` refuses the snapshot.
        let mut underflow = None;
        let mut checked = |what: &str, merged_count: usize, base_count: usize| {
            merged_count.checked_sub(base_count).unwrap_or_else(|| {
                if underflow.is_none() {
                    underflow = Some(format!(
                        "{what} underflow: merged cube has {merged_count} but its base has {base_count}"
                    ));
                }
                0
            })
        };
        let rows_appended = checked("row-count", merged.row_count(), base.row_count());
        let rows_tombstoned =
            checked("tombstone-count", merged.tombstoned_rows(), base.tombstoned_rows());
        let members_added = checked("member-count", member_total(&merged), member_total(base));
        DeltaOverlay {
            base_rows: base.row_count(),
            base_epoch,
            epoch,
            deltas_applied: prior_deltas + newly_applied,
            rows_appended,
            rows_tombstoned,
            members_added,
            underflow,
            merged,
        }
    }

    /// The merged cube (base + overlay) readers scan.
    pub fn merged(&self) -> &Arc<MaterializedCube> {
        &self.merged
    }

    /// The store epoch the overlay catches the snapshot up to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of the base cube the overlay was accreted on.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Physical row count of the base cube the overlay was accreted on.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Store deltas accreted since the base was last folded.
    pub fn deltas_applied(&self) -> usize {
        self.deltas_applied
    }

    /// Rows the overlay appended on top of the base.
    pub fn rows_appended(&self) -> usize {
        self.rows_appended
    }

    /// Base rows the overlay tombstoned.
    pub fn rows_tombstoned(&self) -> usize {
        self.rows_tombstoned
    }

    /// Level members the overlay added.
    pub fn members_added(&self) -> usize {
        self.members_added
    }

    /// The bookkeeping underflow recorded while accreting, if any — a
    /// merged cube smaller than its base along any counted axis. `None`
    /// on every healthy overlay.
    pub fn bookkeeping_underflow(&self) -> Option<&str> {
        self.underflow.as_deref()
    }
}

/// One pinned, immutable view of a dataset: the last folded base cube
/// plus the overlay accreted since (if any). Cheap to clone; readers hold
/// it across an entire execution without any catalog lock, so maintenance
/// can never stall them and they can never observe a half-published swap.
#[derive(Debug, Clone)]
pub struct CubeSnapshot {
    base: Arc<MaterializedCube>,
    base_epoch: u64,
    overlay: Option<Arc<DeltaOverlay>>,
}

impl CubeSnapshot {
    /// A snapshot of a base cube with an optional overlay.
    pub(crate) fn new(
        base: Arc<MaterializedCube>,
        base_epoch: u64,
        overlay: Option<Arc<DeltaOverlay>>,
    ) -> Self {
        CubeSnapshot {
            base,
            base_epoch,
            overlay,
        }
    }

    /// The cube a reader should execute against: the merged overlay cube
    /// when an overlay is pinned, the base otherwise.
    pub fn cube(&self) -> &Arc<MaterializedCube> {
        match &self.overlay {
            Some(overlay) => overlay.merged(),
            None => &self.base,
        }
    }

    /// The last fully-folded base cube.
    pub fn base(&self) -> &Arc<MaterializedCube> {
        &self.base
    }

    /// The store epoch of the base cube.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The store epoch the snapshot is consistent with: the overlay's
    /// caught-up epoch when present, the base epoch otherwise.
    pub fn epoch(&self) -> u64 {
        match &self.overlay {
            Some(overlay) => overlay.epoch(),
            None => self.base_epoch,
        }
    }

    /// The pinned overlay, when one is accreted.
    pub fn overlay(&self) -> Option<&Arc<DeltaOverlay>> {
        self.overlay.as_ref()
    }

    /// True when the snapshot serves base + overlay rather than a folded
    /// base alone.
    pub fn is_overlaid(&self) -> bool {
        self.overlay.is_some()
    }

    /// Checks the snapshot is not torn: the overlay (when present) must
    /// have been accreted on exactly this base, at this base epoch, and
    /// its bookkeeping must be consistent with the merged cube. The stress
    /// suite calls this on every pinned snapshot.
    pub fn verify_consistent(&self) -> Result<(), String> {
        let Some(overlay) = &self.overlay else {
            return Ok(());
        };
        if let Some(detail) = overlay.bookkeeping_underflow() {
            return Err(format!("torn snapshot: {detail}"));
        }
        if overlay.base_epoch() != self.base_epoch {
            return Err(format!(
                "torn snapshot: overlay accreted at base epoch {} but base is at {}",
                overlay.base_epoch(),
                self.base_epoch
            ));
        }
        if overlay.base_rows() != self.base.row_count() {
            return Err(format!(
                "torn snapshot: overlay accreted on a {}-row base but base has {} rows",
                overlay.base_rows(),
                self.base.row_count()
            ));
        }
        if overlay.epoch() < self.base_epoch {
            return Err(format!(
                "torn snapshot: overlay epoch {} behind base epoch {}",
                overlay.epoch(),
                self.base_epoch
            ));
        }
        let merged = overlay.merged();
        if merged.row_count() != overlay.base_rows() + overlay.rows_appended() {
            return Err(format!(
                "torn snapshot: merged cube has {} rows, expected {} base + {} appended",
                merged.row_count(),
                overlay.base_rows(),
                overlay.rows_appended()
            ));
        }
        Ok(())
    }

    /// The `OVERLAY` line a query profile carries so overlay serving is
    /// visible in `EXPLAIN ANALYZE` output: what the overlay added, how
    /// many deltas it absorbed, and the epoch window it covers.
    pub fn plan_line(&self) -> String {
        match &self.overlay {
            Some(overlay) => format!(
                "OVERLAY rows={} tombstones={} members={} deltas={} epochs={}..{}",
                overlay.rows_appended(),
                overlay.rows_tombstoned(),
                overlay.members_added(),
                overlay.deltas_applied(),
                overlay.base_epoch(),
                overlay.epoch()
            ),
            None => "OVERLAY none".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use qb4olap::AggregateFunction;
    use sparql::Endpoint;

    use crate::testutil::{fixture, observation_triples};

    use super::*;

    fn overlaid_snapshot() -> CubeSnapshot {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        endpoint.store().enable_change_log();
        let base = Arc::new(MaterializedCube::from_endpoint(&endpoint, &schema).unwrap());
        let base_epoch = endpoint.epoch();
        endpoint
            .insert_triples(&observation_triples("o6", "c1", "m1", 3, 3))
            .unwrap();
        let deltas = endpoint.deltas_since(base_epoch).unwrap();
        let merged = Arc::new(base.apply_delta(&deltas).unwrap());
        let overlay = DeltaOverlay::new(
            &base,
            base_epoch,
            merged,
            endpoint.epoch(),
            0,
            deltas.len(),
        );
        CubeSnapshot::new(base, base_epoch, Some(Arc::new(overlay)))
    }

    #[test]
    fn snapshot_bookkeeping_tracks_the_accreted_delta() {
        let snapshot = overlaid_snapshot();
        assert!(snapshot.is_overlaid());
        snapshot.verify_consistent().unwrap();
        let overlay = snapshot.overlay().unwrap();
        assert_eq!(overlay.rows_appended(), 1);
        assert_eq!(overlay.rows_tombstoned(), 0);
        assert_eq!(overlay.deltas_applied(), 1);
        assert_eq!(snapshot.cube().row_count(), 6);
        assert_eq!(snapshot.base().row_count(), 5);
        assert!(snapshot.epoch() > snapshot.base_epoch());
        let line = snapshot.plan_line();
        assert!(line.starts_with("OVERLAY rows=1 "), "{line}");
    }

    /// The mis-merged-fold regression: pairing an overlay with a base
    /// *larger* than its merged cube used to saturate the row delta to a
    /// plausible-looking 0; it must now be recorded as an underflow and
    /// refused by `verify_consistent`.
    #[test]
    fn verify_consistent_rejects_a_mis_merged_fold() {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        endpoint.store().enable_change_log();
        let base = Arc::new(MaterializedCube::from_endpoint(&endpoint, &schema).unwrap());
        let base_epoch = endpoint.epoch();
        endpoint
            .insert_triples(&observation_triples("o7", "c1", "m1", 4, 4))
            .unwrap();
        let deltas = endpoint.deltas_since(base_epoch).unwrap();
        let merged = Arc::new(base.apply_delta(&deltas).unwrap());
        // Swap the roles: accrete the *smaller* cube "on top of" the
        // larger one, the shape a mis-merged fold would produce.
        let overlay = DeltaOverlay::new(
            &merged,
            base_epoch,
            base.clone(),
            endpoint.epoch(),
            0,
            deltas.len(),
        );
        assert!(
            overlay.bookkeeping_underflow().is_some(),
            "the underflow must be recorded, not saturated away"
        );
        assert_eq!(overlay.rows_appended(), 0, "the count itself stays safe");
        let snapshot = CubeSnapshot::new(merged, base_epoch, Some(Arc::new(overlay)));
        let err = snapshot.verify_consistent().unwrap_err();
        assert!(err.contains("underflow"), "{err}");
        // A healthy overlay records nothing.
        assert!(overlaid_snapshot()
            .overlay()
            .unwrap()
            .bookkeeping_underflow()
            .is_none());
    }

    #[test]
    fn verify_consistent_rejects_a_torn_pairing() {
        let snapshot = overlaid_snapshot();
        let overlay = snapshot.overlay().unwrap().clone();
        // Pair the overlay with a base from a different epoch: torn.
        let torn = CubeSnapshot::new(
            snapshot.base().clone(),
            snapshot.base_epoch() + 1,
            Some(overlay),
        );
        let err = torn.verify_consistent().unwrap_err();
        assert!(err.contains("torn snapshot"), "{err}");
    }

    #[test]
    fn base_only_snapshots_are_trivially_consistent() {
        let (endpoint, schema) = fixture(AggregateFunction::Sum);
        let base = Arc::new(MaterializedCube::from_endpoint(&endpoint, &schema).unwrap());
        let snapshot = CubeSnapshot::new(base, endpoint.epoch(), None);
        assert!(!snapshot.is_overlaid());
        snapshot.verify_consistent().unwrap();
        assert_eq!(snapshot.plan_line(), "OVERLAY none");
        assert_eq!(snapshot.epoch(), snapshot.base_epoch());
    }

    #[test]
    fn the_kill_switch_reads_the_environment() {
        // The variable is unset in the test environment; the switch must
        // default to enabled. (ci.sh reruns whole campaigns with it set.)
        if std::env::var("QB2OLAP_NO_OVERLAY").is_err() {
            assert!(overlay_enabled());
        }
    }
}
