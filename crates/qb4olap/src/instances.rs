//! Level instances (members), roll-up links between members, and member
//! attribute values.
//!
//! QB4OLAP represents the *instance* side of a hierarchy with
//! `qb4o:memberOf` (member → level) and `skos:broader` (child member →
//! parent member) links, plus level-attribute triples on the members.
//! The Enrichment module generates these triples; the Exploration and
//! Querying modules read them back through the functions in this module.

use rdf::vocab::{qb4o, skos};
use rdf::{Iri, Term, Triple};
use sparql::Endpoint;

use crate::error::Qb4olapError;

/// Generates the triple declaring `member` as an instance of `level`.
pub fn member_of_triple(member: &Term, level: &Iri) -> Triple {
    Triple::new(member.clone(), qb4o::member_of(), Term::Iri(level.clone()))
}

/// Generates the triple linking a child member to its parent member.
pub fn rollup_triple(child: &Term, parent: &Term) -> Triple {
    Triple::new(child.clone(), skos::broader(), parent.clone())
}

/// Generates an attribute-value triple for a member.
pub fn attribute_triple(member: &Term, attribute: &Iri, value: &Term) -> Triple {
    Triple::new(member.clone(), attribute.clone(), value.clone())
}

/// All members of a level, via `qb4o:memberOf`.
pub fn members_of_level(endpoint: &dyn Endpoint, level: &Iri) -> Result<Vec<Term>, Qb4olapError> {
    let solutions = endpoint.select(&format!(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT DISTINCT ?m WHERE {{ ?m qb4o:memberOf <{level}> }} ORDER BY ?m",
        level = level.as_str()
    ))?;
    Ok(solutions
        .rows
        .iter()
        .filter_map(|r| r.first().cloned().flatten())
        .collect())
}

/// Number of members of a level.
pub fn member_count(endpoint: &dyn Endpoint, level: &Iri) -> Result<usize, Qb4olapError> {
    let solutions = endpoint.select(&format!(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE {{ ?m qb4o:memberOf <{level}> }}",
        level = level.as_str()
    ))?;
    Ok(solutions
        .get(0, "n")
        .and_then(Term::as_literal)
        .and_then(|l| l.as_integer())
        .unwrap_or(0) as usize)
}

/// The `(child member, parent member)` roll-up pairs between two levels.
pub fn rollup_pairs(
    endpoint: &dyn Endpoint,
    child_level: &Iri,
    parent_level: &Iri,
) -> Result<Vec<(Term, Term)>, Qb4olapError> {
    let solutions = endpoint.select(&format!(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
         SELECT ?child ?parent WHERE {{
           ?child qb4o:memberOf <{child}> ; skos:broader ?parent .
           ?parent qb4o:memberOf <{parent}> .
         }} ORDER BY ?child ?parent",
        child = child_level.as_str(),
        parent = parent_level.as_str()
    ))?;
    Ok(solutions
        .rows
        .iter()
        .filter_map(|r| match (r.first().cloned().flatten(), r.get(1).cloned().flatten()) {
            (Some(c), Some(p)) => Some((c, p)),
            _ => None,
        })
        .collect())
}

/// The parent member of `member` at `parent_level`, if any.
pub fn parent_member(
    endpoint: &dyn Endpoint,
    member: &Term,
    parent_level: &Iri,
) -> Result<Option<Term>, Qb4olapError> {
    let Term::Iri(member_iri) = member else {
        return Ok(None);
    };
    let solutions = endpoint.select(&format!(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
         SELECT ?parent WHERE {{
           <{m}> skos:broader ?parent .
           ?parent qb4o:memberOf <{parent}> .
         }}",
        m = member_iri.as_str(),
        parent = parent_level.as_str()
    ))?;
    Ok(solutions.get(0, "parent").cloned())
}

/// The attribute value of a member, if present.
pub fn attribute_value(
    endpoint: &dyn Endpoint,
    member: &Term,
    attribute: &Iri,
) -> Result<Option<Term>, Qb4olapError> {
    let Term::Iri(member_iri) = member else {
        return Ok(None);
    };
    let solutions = endpoint.select(&format!(
        "SELECT ?v WHERE {{ <{m}> <{attr}> ?v }}",
        m = member_iri.as_str(),
        attr = attribute.as_str()
    ))?;
    Ok(solutions.get(0, "v").cloned())
}

/// Checks that every member of `child_level` that has a roll-up link to a
/// member of `parent_level` has exactly one such link — the instance-level
/// counterpart of a `ManyToOne` hierarchy step. Returns the members that
/// violate the constraint.
pub fn non_functional_members(
    endpoint: &dyn Endpoint,
    child_level: &Iri,
    parent_level: &Iri,
) -> Result<Vec<Term>, Qb4olapError> {
    let solutions = endpoint.select(&format!(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         PREFIX skos: <http://www.w3.org/2004/02/skos/core#>
         SELECT ?child (COUNT(DISTINCT ?parent) AS ?n) WHERE {{
           ?child qb4o:memberOf <{child}> ; skos:broader ?parent .
           ?parent qb4o:memberOf <{parent}> .
         }} GROUP BY ?child HAVING (COUNT(DISTINCT ?parent) > 1) ORDER BY ?child",
        child = child_level.as_str(),
        parent = parent_level.as_str()
    ))?;
    Ok(solutions
        .rows
        .iter()
        .filter_map(|r| r.first().cloned().flatten())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::Literal;
    use sparql::LocalEndpoint;

    fn level(name: &str) -> Iri {
        Iri::new(format!("http://example.org/level/{name}"))
    }

    fn member(name: &str) -> Term {
        Term::iri(format!("http://example.org/member/{name}"))
    }

    fn endpoint_with_instances() -> LocalEndpoint {
        let endpoint = LocalEndpoint::new();
        let mut triples = Vec::new();
        for (m, l) in [
            ("SY", "country"),
            ("NG", "country"),
            ("FR", "country"),
            ("Asia", "continent"),
            ("Africa", "continent"),
            ("Europe", "continent"),
        ] {
            triples.push(member_of_triple(&member(m), &level(l)));
        }
        for (c, p) in [("SY", "Asia"), ("NG", "Africa"), ("FR", "Europe")] {
            triples.push(rollup_triple(&member(c), &member(p)));
        }
        triples.push(attribute_triple(
            &member("Africa"),
            &Iri::new("http://example.org/attr/continentName"),
            &Term::Literal(Literal::string("Africa")),
        ));
        endpoint.insert_triples(&triples).unwrap();
        endpoint
    }

    #[test]
    fn members_and_counts() {
        let ep = endpoint_with_instances();
        assert_eq!(members_of_level(&ep, &level("country")).unwrap().len(), 3);
        assert_eq!(member_count(&ep, &level("continent")).unwrap(), 3);
        assert_eq!(member_count(&ep, &level("missing")).unwrap(), 0);
    }

    #[test]
    fn rollups_and_parent_lookup() {
        let ep = endpoint_with_instances();
        let pairs = rollup_pairs(&ep, &level("country"), &level("continent")).unwrap();
        assert_eq!(pairs.len(), 3);
        assert!(pairs.contains(&(member("SY"), member("Asia"))));
        assert_eq!(
            parent_member(&ep, &member("NG"), &level("continent")).unwrap(),
            Some(member("Africa"))
        );
        assert_eq!(
            parent_member(&ep, &member("NG"), &level("country")).unwrap(),
            None
        );
        assert_eq!(
            parent_member(&ep, &Term::Literal(Literal::string("x")), &level("continent")).unwrap(),
            None
        );
    }

    #[test]
    fn attribute_lookup() {
        let ep = endpoint_with_instances();
        assert_eq!(
            attribute_value(
                &ep,
                &member("Africa"),
                &Iri::new("http://example.org/attr/continentName")
            )
            .unwrap(),
            Some(Term::Literal(Literal::string("Africa")))
        );
        assert_eq!(
            attribute_value(
                &ep,
                &member("Asia"),
                &Iri::new("http://example.org/attr/continentName")
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn functional_rollup_violations_detected() {
        let ep = endpoint_with_instances();
        assert!(non_functional_members(&ep, &level("country"), &level("continent"))
            .unwrap()
            .is_empty());
        // Give Syria a second continent to break functionality.
        ep.insert_triples(&[rollup_triple(&member("SY"), &member("Europe"))])
            .unwrap();
        let violators =
            non_functional_members(&ep, &level("country"), &level("continent")).unwrap();
        assert_eq!(violators, vec![member("SY")]);
    }
}
