//! The QB4OLAP layer of the QB2OLAP reproduction.
//!
//! QB4OLAP extends the QB vocabulary with the multidimensional concepts
//! OLAP needs (Section II of the paper): dimension hierarchies built from
//! levels and hierarchy steps, level attributes, fact–level cardinalities
//! and aggregate functions on measures. This crate provides:
//!
//! * [`model`] — the in-memory cube schema (dimensions, hierarchies, levels,
//!   attributes, measures, cardinalities, aggregate functions);
//! * [`triples`] — schema → RDF triples (Triple Generation phase) and
//!   RDF → schema (what Exploration/Querying read back from the endpoint);
//! * [`instances`] — level members, member roll-up links (`skos:broader`)
//!   and member attribute values;
//! * [`validate`] — structural schema validation.

#![warn(missing_docs)]

pub mod error;
pub mod instances;
pub mod model;
pub mod triples;
pub mod validate;

pub use error::Qb4olapError;
pub use instances::{
    attribute_triple, attribute_value, member_count, member_of_triple, members_of_level,
    non_functional_members, parent_member, rollup_pairs, rollup_triple,
};
pub use model::{
    AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep, Level,
    LevelAttribute, LevelComponent, MeasureSpec,
};
pub use triples::{schema_from_endpoint, schema_triples};
pub use validate::{validate_schema, SchemaIssue, SchemaReport, SchemaSeverity};
