//! Structural validation of QB4OLAP cube schemas.
//!
//! The Enrichment module calls this after every user action so that the
//! schema shown in the exploration tree is always well formed, and before
//! the Triple Generation phase so that only valid schemas reach the
//! endpoint.

use std::collections::BTreeSet;

use rdf::Iri;

use crate::model::CubeSchema;

/// Severity of a schema finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaSeverity {
    /// The schema cannot be used for querying.
    Error,
    /// The schema is usable but a design smell was detected
    /// (e.g. a non-summarisable ManyToMany roll-up).
    Warning,
}

/// One schema validation finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaIssue {
    /// Which check produced the finding.
    pub check: &'static str,
    /// Error or warning.
    pub severity: SchemaSeverity,
    /// Human-readable description.
    pub message: String,
}

/// The result of validating a schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SchemaReport {
    /// All findings.
    pub issues: Vec<SchemaIssue>,
}

impl SchemaReport {
    /// True if no error-severity issue was found.
    pub fn is_valid(&self) -> bool {
        !self
            .issues
            .iter()
            .any(|i| i.severity == SchemaSeverity::Error)
    }

    fn error(&mut self, check: &'static str, message: String) {
        self.issues.push(SchemaIssue {
            check,
            severity: SchemaSeverity::Error,
            message,
        });
    }

    fn warning(&mut self, check: &'static str, message: String) {
        self.issues.push(SchemaIssue {
            check,
            severity: SchemaSeverity::Warning,
            message,
        });
    }
}

/// Validates a cube schema.
///
/// Checks:
/// * `has-measure` — at least one measure with an aggregate function;
/// * `has-level-component` — at least one fact–level component;
/// * `dimension-has-hierarchy` — every dimension declares ≥ 1 hierarchy with ≥ 1 level;
/// * `step-levels-declared` — every hierarchy step references levels declared
///   in its hierarchy;
/// * `component-in-dimension` — every fact–level component belongs to some
///   dimension (once dimensions exist);
/// * `no-cycles` — hierarchy steps are acyclic;
/// * `summarisable-cardinality` — warn on ManyToMany / OneToMany roll-ups.
pub fn validate_schema(schema: &CubeSchema) -> SchemaReport {
    let mut report = SchemaReport::default();

    if schema.measures.is_empty() {
        report.error(
            "has-measure",
            "the schema declares no measure; OLAP queries need at least one".to_string(),
        );
    }
    if schema.level_components.is_empty() {
        report.error(
            "has-level-component",
            "the schema declares no fact-level component (qb4o:level)".to_string(),
        );
    }

    for dimension in &schema.dimensions {
        if dimension.hierarchies.is_empty() {
            report.error(
                "dimension-has-hierarchy",
                format!(
                    "dimension <{}> declares no hierarchy",
                    dimension.iri.as_str()
                ),
            );
            continue;
        }
        for hierarchy in &dimension.hierarchies {
            if hierarchy.levels.is_empty() {
                report.error(
                    "dimension-has-hierarchy",
                    format!(
                        "hierarchy <{}> declares no level",
                        hierarchy.iri.as_str()
                    ),
                );
            }
            for step in &hierarchy.steps {
                if !hierarchy.has_level(&step.child) || !hierarchy.has_level(&step.parent) {
                    report.error(
                        "step-levels-declared",
                        format!(
                            "hierarchy <{}> has a step {} -> {} whose levels are not all declared via qb4o:hasLevel",
                            hierarchy.iri.as_str(),
                            step.child.as_str(),
                            step.parent.as_str()
                        ),
                    );
                }
                if !step.cardinality.is_functional() {
                    report.warning(
                        "summarisable-cardinality",
                        format!(
                            "roll-up {} -> {} has cardinality {:?}; aggregates over it may double-count",
                            step.child.as_str(),
                            step.parent.as_str(),
                            step.cardinality
                        ),
                    );
                }
            }
            if has_cycle(hierarchy.steps.iter().map(|s| (&s.child, &s.parent))) {
                report.error(
                    "no-cycles",
                    format!(
                        "hierarchy <{}> contains a cyclic roll-up chain",
                        hierarchy.iri.as_str()
                    ),
                );
            }
        }
    }

    if !schema.dimensions.is_empty() {
        for component in &schema.level_components {
            if schema.dimension_of_level(&component.level).is_none() {
                report.warning(
                    "component-in-dimension",
                    format!(
                        "fact level <{}> is not part of any dimension hierarchy yet",
                        component.level.as_str()
                    ),
                );
            }
        }
    }

    report
}

/// Cycle detection over the child → parent edges.
fn has_cycle<'a>(edges: impl Iterator<Item = (&'a Iri, &'a Iri)>) -> bool {
    let edges: Vec<(&Iri, &Iri)> = edges.collect();
    let nodes: BTreeSet<&Iri> = edges.iter().flat_map(|(c, p)| [*c, *p]).collect();
    // Kahn's algorithm: if we cannot consume every node, there is a cycle.
    let mut remaining = edges.clone();
    let mut removable: Vec<&Iri> = Vec::new();
    let mut removed: BTreeSet<&Iri> = BTreeSet::new();
    loop {
        removable.clear();
        for node in &nodes {
            if removed.contains(node) {
                continue;
            }
            // A node with no outgoing edge among the remaining edges is safe.
            if remaining.iter().all(|(c, _)| c != node) {
                removable.push(node);
            }
        }
        if removable.is_empty() {
            break;
        }
        for node in &removable {
            removed.insert(node);
        }
        remaining.retain(|(_, p)| !removed.contains(p));
    }
    removed.len() != nodes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{
        AggregateFunction, Cardinality, Dimension, Hierarchy, HierarchyStep, LevelComponent,
        MeasureSpec,
    };
    use rdf::vocab::{demo_schema, eurostat_property, sdmx_measure};

    fn valid_schema() -> CubeSchema {
        let mut schema = CubeSchema::new(
            Iri::new("http://example.org/dsdQB4O"),
            Iri::new("http://example.org/ds"),
        );
        schema.measures.push(MeasureSpec {
            property: sdmx_measure::obs_value(),
            aggregate: AggregateFunction::Sum,
        });
        schema.level_components.push(LevelComponent {
            level: eurostat_property::citizen(),
            cardinality: Cardinality::ManyToOne,
            dimension: Some(demo_schema::citizenship_dim()),
        });
        let mut hierarchy = Hierarchy::new(demo_schema::citizenship_geo_hier());
        hierarchy.levels = vec![eurostat_property::citizen(), demo_schema::continent()];
        hierarchy.steps = vec![HierarchyStep {
            child: eurostat_property::citizen(),
            parent: demo_schema::continent(),
            cardinality: Cardinality::ManyToOne,
        }];
        let mut dimension = Dimension::new(demo_schema::citizenship_dim());
        dimension.hierarchies.push(hierarchy);
        schema.dimensions.push(dimension);
        schema
    }

    #[test]
    fn valid_schema_passes() {
        let report = validate_schema(&valid_schema());
        assert!(report.is_valid(), "{:?}", report.issues);
    }

    #[test]
    fn missing_measure_and_levels_are_errors() {
        let schema = CubeSchema::new(
            Iri::new("http://example.org/dsd"),
            Iri::new("http://example.org/ds"),
        );
        let report = validate_schema(&schema);
        assert!(!report.is_valid());
        let checks: Vec<&str> = report.issues.iter().map(|i| i.check).collect();
        assert!(checks.contains(&"has-measure"));
        assert!(checks.contains(&"has-level-component"));
    }

    #[test]
    fn undeclared_step_level_is_an_error() {
        let mut schema = valid_schema();
        schema.dimensions[0].hierarchies[0]
            .steps
            .push(HierarchyStep {
                child: demo_schema::continent(),
                parent: demo_schema::cit_all(), // not in hierarchy.levels
                cardinality: Cardinality::ManyToOne,
            });
        let report = validate_schema(&schema);
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "step-levels-declared" && i.severity == SchemaSeverity::Error));
    }

    #[test]
    fn many_to_many_is_a_warning() {
        let mut schema = valid_schema();
        schema.dimensions[0].hierarchies[0].steps[0].cardinality = Cardinality::ManyToMany;
        let report = validate_schema(&schema);
        assert!(report.is_valid(), "warnings do not invalidate the schema");
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "summarisable-cardinality"));
    }

    #[test]
    fn cycle_is_detected() {
        let mut schema = valid_schema();
        {
            let hierarchy = &mut schema.dimensions[0].hierarchies[0];
            hierarchy.steps.push(HierarchyStep {
                child: demo_schema::continent(),
                parent: eurostat_property::citizen(),
                cardinality: Cardinality::ManyToOne,
            });
        }
        let report = validate_schema(&schema);
        assert!(report.issues.iter().any(|i| i.check == "no-cycles"));
    }

    #[test]
    fn orphan_level_component_is_a_warning() {
        let mut schema = valid_schema();
        schema.level_components.push(LevelComponent {
            level: Iri::new("http://example.org/unattached"),
            cardinality: Cardinality::ManyToOne,
            dimension: None,
        });
        let report = validate_schema(&schema);
        assert!(report
            .issues
            .iter()
            .any(|i| i.check == "component-in-dimension"));
    }

    #[test]
    fn empty_dimension_is_an_error() {
        let mut schema = valid_schema();
        schema
            .dimensions
            .push(Dimension::new(Iri::new("http://example.org/emptyDim")));
        let report = validate_schema(&schema);
        assert!(!report.is_valid());
    }
}
