//! The QB4OLAP multidimensional schema model.
//!
//! QB4OLAP extends QB with the concepts the paper's Section II describes:
//! dimension levels (as DSD components via `qb4o:level`), dimension
//! hierarchies with hierarchy steps and parent/child cardinalities, level
//! attributes, and aggregate functions attached to measures.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use rdf::vocab::qb4o;
use rdf::Iri;

/// An OLAP aggregate function (`qb4o:AggregateFunction` instances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggregateFunction {
    /// `qb4o:sum`.
    Sum,
    /// `qb4o:avg`.
    Avg,
    /// `qb4o:count`.
    Count,
    /// `qb4o:min`.
    Min,
    /// `qb4o:max`.
    Max,
}

impl AggregateFunction {
    /// The QB4OLAP IRI of the function.
    pub fn iri(self) -> Iri {
        match self {
            AggregateFunction::Sum => qb4o::sum(),
            AggregateFunction::Avg => qb4o::avg(),
            AggregateFunction::Count => qb4o::count(),
            AggregateFunction::Min => qb4o::min(),
            AggregateFunction::Max => qb4o::max(),
        }
    }

    /// Parses a QB4OLAP aggregate-function IRI.
    pub fn from_iri(iri: &Iri) -> Option<Self> {
        Some(match iri.local_name() {
            "sum" => AggregateFunction::Sum,
            "avg" => AggregateFunction::Avg,
            "count" => AggregateFunction::Count,
            "min" => AggregateFunction::Min,
            "max" => AggregateFunction::Max,
            _ => return None,
        })
    }

    /// The SPARQL aggregate keyword implementing this function.
    pub fn sparql_name(self) -> &'static str {
        match self {
            AggregateFunction::Sum => "SUM",
            AggregateFunction::Avg => "AVG",
            AggregateFunction::Count => "COUNT",
            AggregateFunction::Min => "MIN",
            AggregateFunction::Max => "MAX",
        }
    }
}

/// The cardinality of a fact–level or parent–child relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// `qb4o:OneToOne`.
    OneToOne,
    /// `qb4o:OneToMany`.
    OneToMany,
    /// `qb4o:ManyToOne` (the usual roll-up cardinality).
    ManyToOne,
    /// `qb4o:ManyToMany`.
    ManyToMany,
}

impl Cardinality {
    /// The QB4OLAP IRI of the cardinality.
    pub fn iri(self) -> Iri {
        match self {
            Cardinality::OneToOne => qb4o::one_to_one(),
            Cardinality::OneToMany => qb4o::one_to_many(),
            Cardinality::ManyToOne => qb4o::many_to_one(),
            Cardinality::ManyToMany => qb4o::many_to_many(),
        }
    }

    /// Parses a QB4OLAP cardinality IRI.
    pub fn from_iri(iri: &Iri) -> Option<Self> {
        Some(match iri.local_name() {
            "OneToOne" => Cardinality::OneToOne,
            "OneToMany" => Cardinality::OneToMany,
            "ManyToOne" => Cardinality::ManyToOne,
            "ManyToMany" => Cardinality::ManyToMany,
            _ => return None,
        })
    }

    /// True if each child maps to at most one parent (summarisable roll-up).
    pub fn is_functional(self) -> bool {
        matches!(self, Cardinality::ManyToOne | Cardinality::OneToOne)
    }
}

/// A level attribute (`qb4o:LevelAttribute`), e.g. `schema:continentName`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelAttribute {
    /// The attribute IRI.
    pub iri: Iri,
    /// Optional human-readable label.
    pub label: Option<String>,
}

impl LevelAttribute {
    /// Creates an attribute.
    pub fn new(iri: Iri) -> Self {
        LevelAttribute { iri, label: None }
    }
}

/// A dimension level (`qb4o:LevelProperty`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Level {
    /// The level IRI (e.g. `property:citizen`, `schema:continent`).
    pub iri: Iri,
    /// Descriptive attributes attached to the level.
    pub attributes: Vec<LevelAttribute>,
    /// Optional human-readable label.
    pub label: Option<String>,
}

impl Level {
    /// Creates a level with no attributes.
    pub fn new(iri: Iri) -> Self {
        Level {
            iri,
            attributes: Vec::new(),
            label: None,
        }
    }

    /// Adds an attribute.
    pub fn with_attribute(mut self, attribute: LevelAttribute) -> Self {
        self.attributes.push(attribute);
        self
    }
}

/// A roll-up relationship between two levels of a hierarchy
/// (`qb4o:HierarchyStep`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyStep {
    /// The finer (child) level.
    pub child: Iri,
    /// The coarser (parent) level.
    pub parent: Iri,
    /// The parent–child cardinality.
    pub cardinality: Cardinality,
}

/// A dimension hierarchy (`qb4o:Hierarchy`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    /// The hierarchy IRI (e.g. `schema:citizenshipGeoHier`).
    pub iri: Iri,
    /// All levels of the hierarchy.
    pub levels: Vec<Iri>,
    /// Roll-up steps between consecutive levels.
    pub steps: Vec<HierarchyStep>,
    /// Optional label.
    pub label: Option<String>,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(iri: Iri) -> Self {
        Hierarchy {
            iri,
            levels: Vec::new(),
            steps: Vec::new(),
            label: None,
        }
    }

    /// True if the hierarchy declares the level.
    pub fn has_level(&self, level: &Iri) -> bool {
        self.levels.contains(level)
    }

    /// The parent level(s) reachable from `level` in one step.
    pub fn parents_of(&self, level: &Iri) -> Vec<&Iri> {
        self.steps
            .iter()
            .filter(|s| &s.child == level)
            .map(|s| &s.parent)
            .collect()
    }

    /// The child level(s) that roll up to `level` in one step.
    pub fn children_of(&self, level: &Iri) -> Vec<&Iri> {
        self.steps
            .iter()
            .filter(|s| &s.parent == level)
            .map(|s| &s.child)
            .collect()
    }

    /// Levels that are not a parent of any step (the finest levels).
    pub fn bottom_levels(&self) -> Vec<&Iri> {
        self.levels
            .iter()
            .filter(|l| self.steps.iter().all(|s| &s.parent != *l))
            .collect()
    }

    /// The sequence of steps from `from` up to `to`, if `to` is reachable by
    /// following parent links (breadth-first, shortest path).
    pub fn rollup_path(&self, from: &Iri, to: &Iri) -> Option<Vec<&HierarchyStep>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut queue: VecDeque<(&Iri, Vec<&HierarchyStep>)> = VecDeque::new();
        let mut visited: BTreeSet<&Iri> = BTreeSet::new();
        queue.push_back((from, Vec::new()));
        visited.insert(from);
        while let Some((level, path)) = queue.pop_front() {
            for step in self.steps.iter().filter(|s| &s.child == level) {
                if visited.contains(&step.parent) {
                    continue;
                }
                let mut new_path = path.clone();
                new_path.push(step);
                if &step.parent == to {
                    return Some(new_path);
                }
                visited.insert(&step.parent);
                queue.push_back((&step.parent, new_path));
            }
        }
        None
    }
}

/// A dimension (`qb:DimensionProperty` carrying QB4OLAP hierarchies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// The dimension IRI (e.g. `schema:citizenshipDim`).
    pub iri: Iri,
    /// Its hierarchies.
    pub hierarchies: Vec<Hierarchy>,
    /// Optional label.
    pub label: Option<String>,
}

impl Dimension {
    /// Creates a dimension with no hierarchies.
    pub fn new(iri: Iri) -> Self {
        Dimension {
            iri,
            hierarchies: Vec::new(),
            label: None,
        }
    }

    /// All distinct levels across the dimension's hierarchies.
    pub fn levels(&self) -> Vec<&Iri> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for h in &self.hierarchies {
            for l in &h.levels {
                if seen.insert(l) {
                    out.push(l);
                }
            }
        }
        out
    }

    /// True if any hierarchy of the dimension declares the level.
    pub fn has_level(&self, level: &Iri) -> bool {
        self.hierarchies.iter().any(|h| h.has_level(level))
    }

    /// The bottom level of the dimension: the level that appears as a child
    /// but never as a parent across all hierarchies. Falls back to the first
    /// declared level.
    pub fn bottom_level(&self) -> Option<&Iri> {
        let mut parents: BTreeSet<&Iri> = BTreeSet::new();
        for h in &self.hierarchies {
            for s in &h.steps {
                parents.insert(&s.parent);
            }
        }
        self.levels()
            .into_iter()
            .find(|l| !parents.contains(l))
            .or_else(|| self.levels().into_iter().next())
    }

    /// Finds a roll-up path from `from` to `to` in any hierarchy of the
    /// dimension, returning the hierarchy and the steps.
    pub fn rollup_path(&self, from: &Iri, to: &Iri) -> Option<(&Hierarchy, Vec<&HierarchyStep>)> {
        for h in &self.hierarchies {
            if let Some(path) = h.rollup_path(from, to) {
                return Some((h, path));
            }
        }
        None
    }

    /// All levels reachable *upward* from `from` across the dimension's
    /// hierarchies, in declaration order and without duplicates (`from`
    /// itself is excluded). These are the valid roll-up targets a
    /// materialized-cube builder must precompute maps for.
    pub fn ancestor_levels(&self, from: &Iri) -> Vec<Iri> {
        self.levels()
            .into_iter()
            .filter(|level| *level != from && self.rollup_path(from, level).is_some())
            .cloned()
            .collect()
    }
}

/// A measure with its default aggregate function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureSpec {
    /// The measure property (e.g. `sdmx-measure:obsValue`).
    pub property: Iri,
    /// The default aggregate function (`qb4o:aggregateFunction`).
    pub aggregate: AggregateFunction,
}

/// A fact–level component of the QB4OLAP DSD (`qb4o:level` +
/// `qb4o:cardinality`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelComponent {
    /// The bottom level attached to the fact.
    pub level: Iri,
    /// The fact–level cardinality.
    pub cardinality: Cardinality,
    /// The dimension this level belongs to, once hierarchies are defined.
    pub dimension: Option<Iri>,
}

/// A complete QB4OLAP cube schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeSchema {
    /// The QB4OLAP DSD IRI (the redefined DSD, e.g.
    /// `schema:migr_asyappctzmQB4O`).
    pub dsd: Iri,
    /// The dataset the schema describes.
    pub dataset: Iri,
    /// Fact–level components.
    pub level_components: Vec<LevelComponent>,
    /// Measures with aggregate functions.
    pub measures: Vec<MeasureSpec>,
    /// Dimensions with hierarchies.
    pub dimensions: Vec<Dimension>,
    /// Level details (attributes) keyed by level IRI.
    pub levels: BTreeMap<Iri, Level>,
}

impl CubeSchema {
    /// Creates an empty schema for a dataset.
    pub fn new(dsd: Iri, dataset: Iri) -> Self {
        CubeSchema {
            dsd,
            dataset,
            level_components: Vec::new(),
            measures: Vec::new(),
            dimensions: Vec::new(),
            levels: BTreeMap::new(),
        }
    }

    /// Finds a dimension by IRI.
    pub fn dimension(&self, iri: &Iri) -> Option<&Dimension> {
        self.dimensions.iter().find(|d| &d.iri == iri)
    }

    /// Finds a dimension by IRI (mutable).
    pub fn dimension_mut(&mut self, iri: &Iri) -> Option<&mut Dimension> {
        self.dimensions.iter_mut().find(|d| &d.iri == iri)
    }

    /// The dimension that contains a given level.
    pub fn dimension_of_level(&self, level: &Iri) -> Option<&Dimension> {
        self.dimensions.iter().find(|d| d.has_level(level))
    }

    /// The level details for an IRI, if registered.
    pub fn level(&self, iri: &Iri) -> Option<&Level> {
        self.levels.get(iri)
    }

    /// Registers (or returns) level details.
    pub fn level_mut(&mut self, iri: &Iri) -> &mut Level {
        self.levels
            .entry(iri.clone())
            .or_insert_with(|| Level::new(iri.clone()))
    }

    /// The measure spec for a property.
    pub fn measure(&self, property: &Iri) -> Option<&MeasureSpec> {
        self.measures.iter().find(|m| &m.property == property)
    }

    /// The bottom level attached to the fact for a dimension, derived from
    /// the level components (preferred) or the dimension's own structure.
    pub fn bottom_level_of_dimension(&self, dimension: &Iri) -> Option<Iri> {
        if let Some(dim) = self.dimension(dimension) {
            // Prefer a level component that belongs to this dimension.
            for component in &self.level_components {
                if dim.has_level(&component.level) {
                    return Some(component.level.clone());
                }
            }
            return dim.bottom_level().cloned();
        }
        None
    }

    /// All level attributes declared for a level.
    pub fn level_attributes(&self, level: &Iri) -> Vec<&LevelAttribute> {
        self.level(level)
            .map(|l| l.attributes.iter().collect())
            .unwrap_or_default()
    }

    /// The attribute with the given IRI on any level, with its level.
    pub fn find_attribute(&self, attribute: &Iri) -> Option<(&Iri, &LevelAttribute)> {
        for (level_iri, level) in &self.levels {
            if let Some(attr) = level.attributes.iter().find(|a| &a.iri == attribute) {
                return Some((level_iri, attr));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::{demo_schema, eurostat_property};

    /// The citizenship dimension from the paper: citizen → continent → citAll.
    pub(crate) fn citizenship_dimension() -> Dimension {
        let mut hierarchy = Hierarchy::new(demo_schema::citizenship_geo_hier());
        hierarchy.levels = vec![
            eurostat_property::citizen(),
            demo_schema::continent(),
            demo_schema::cit_all(),
        ];
        hierarchy.steps = vec![
            HierarchyStep {
                child: eurostat_property::citizen(),
                parent: demo_schema::continent(),
                cardinality: Cardinality::ManyToOne,
            },
            HierarchyStep {
                child: demo_schema::continent(),
                parent: demo_schema::cit_all(),
                cardinality: Cardinality::ManyToOne,
            },
        ];
        let mut dim = Dimension::new(demo_schema::citizenship_dim());
        dim.hierarchies.push(hierarchy);
        dim
    }

    #[test]
    fn aggregate_function_iri_roundtrip() {
        for f in [
            AggregateFunction::Sum,
            AggregateFunction::Avg,
            AggregateFunction::Count,
            AggregateFunction::Min,
            AggregateFunction::Max,
        ] {
            assert_eq!(AggregateFunction::from_iri(&f.iri()), Some(f));
        }
        assert_eq!(AggregateFunction::from_iri(&Iri::new("http://x#median")), None);
        assert_eq!(AggregateFunction::Sum.sparql_name(), "SUM");
    }

    #[test]
    fn cardinality_iri_roundtrip_and_functionality() {
        for c in [
            Cardinality::OneToOne,
            Cardinality::OneToMany,
            Cardinality::ManyToOne,
            Cardinality::ManyToMany,
        ] {
            assert_eq!(Cardinality::from_iri(&c.iri()), Some(c));
        }
        assert!(Cardinality::ManyToOne.is_functional());
        assert!(!Cardinality::ManyToMany.is_functional());
    }

    #[test]
    fn hierarchy_navigation() {
        let dim = citizenship_dimension();
        let h = &dim.hierarchies[0];
        assert_eq!(
            h.parents_of(&eurostat_property::citizen()),
            vec![&demo_schema::continent()]
        );
        assert_eq!(
            h.children_of(&demo_schema::continent()),
            vec![&eurostat_property::citizen()]
        );
        assert_eq!(h.bottom_levels(), vec![&eurostat_property::citizen()]);
    }

    #[test]
    fn rollup_path_search() {
        let dim = citizenship_dimension();
        let (h, path) = dim
            .rollup_path(&eurostat_property::citizen(), &demo_schema::cit_all())
            .expect("path exists");
        assert_eq!(h.iri, demo_schema::citizenship_geo_hier());
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].parent, demo_schema::continent());

        assert!(dim
            .rollup_path(&demo_schema::cit_all(), &eurostat_property::citizen())
            .is_none(), "roll-up paths only go upwards");
        let (_, same) = dim
            .rollup_path(&eurostat_property::citizen(), &eurostat_property::citizen())
            .unwrap();
        assert!(same.is_empty());
    }

    #[test]
    fn dimension_bottom_level() {
        let dim = citizenship_dimension();
        assert_eq!(dim.bottom_level(), Some(&eurostat_property::citizen()));
        assert_eq!(dim.levels().len(), 3);
        assert!(dim.has_level(&demo_schema::continent()));
    }

    #[test]
    fn ancestor_levels_exclude_self_and_unreachable() {
        let dim = citizenship_dimension();
        assert_eq!(
            dim.ancestor_levels(&eurostat_property::citizen()),
            vec![demo_schema::continent(), demo_schema::cit_all()]
        );
        assert_eq!(
            dim.ancestor_levels(&demo_schema::continent()),
            vec![demo_schema::cit_all()]
        );
        assert!(dim.ancestor_levels(&demo_schema::cit_all()).is_empty());
    }

    #[test]
    fn cube_schema_lookups() {
        let mut schema = CubeSchema::new(
            Iri::new("http://example.org/dsdQB4O"),
            Iri::new("http://example.org/dataset"),
        );
        schema.dimensions.push(citizenship_dimension());
        schema.level_components.push(LevelComponent {
            level: eurostat_property::citizen(),
            cardinality: Cardinality::ManyToOne,
            dimension: Some(demo_schema::citizenship_dim()),
        });
        schema.measures.push(MeasureSpec {
            property: rdf::vocab::sdmx_measure::obs_value(),
            aggregate: AggregateFunction::Sum,
        });
        schema
            .level_mut(&demo_schema::continent())
            .attributes
            .push(LevelAttribute::new(demo_schema::continent_name()));

        assert!(schema.dimension(&demo_schema::citizenship_dim()).is_some());
        assert_eq!(
            schema
                .dimension_of_level(&demo_schema::continent())
                .map(|d| &d.iri),
            Some(&demo_schema::citizenship_dim())
        );
        assert_eq!(
            schema.bottom_level_of_dimension(&demo_schema::citizenship_dim()),
            Some(eurostat_property::citizen())
        );
        assert_eq!(
            schema
                .measure(&rdf::vocab::sdmx_measure::obs_value())
                .map(|m| m.aggregate),
            Some(AggregateFunction::Sum)
        );
        assert_eq!(schema.level_attributes(&demo_schema::continent()).len(), 1);
        let (level, _attr) = schema
            .find_attribute(&demo_schema::continent_name())
            .expect("attribute registered");
        assert_eq!(level, &demo_schema::continent());
        assert!(schema.find_attribute(&Iri::new("http://missing")).is_none());
    }
}
