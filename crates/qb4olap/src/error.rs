//! Error type for the QB4OLAP layer.

use std::fmt;

/// Errors raised while generating or reading QB4OLAP structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qb4olapError {
    /// A SPARQL query failed.
    Sparql(String),
    /// No QB4OLAP schema found for the requested dataset.
    SchemaNotFound(String),
    /// The schema is structurally invalid.
    InvalidSchema(String),
}

impl fmt::Display for Qb4olapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qb4olapError::Sparql(m) => write!(f, "SPARQL error in QB4OLAP layer: {m}"),
            Qb4olapError::SchemaNotFound(m) => write!(f, "QB4OLAP schema not found: {m}"),
            Qb4olapError::InvalidSchema(m) => write!(f, "invalid QB4OLAP schema: {m}"),
        }
    }
}

impl std::error::Error for Qb4olapError {}

impl From<sparql::SparqlError> for Qb4olapError {
    fn from(e: sparql::SparqlError) -> Self {
        Qb4olapError::Sparql(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: Qb4olapError = sparql::SparqlError::eval("x").into();
        assert!(e.to_string().contains("x"));
        assert!(Qb4olapError::SchemaNotFound("ds".into())
            .to_string()
            .contains("ds"));
        assert!(Qb4olapError::InvalidSchema("bad".into())
            .to_string()
            .contains("bad"));
    }
}
