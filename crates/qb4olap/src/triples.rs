//! QB4OLAP schema ⇄ RDF triples.
//!
//! [`schema_triples`] is the Triple Generation phase output for the schema
//! part (Figure 2 of the paper); [`schema_from_endpoint`] is its inverse and
//! is what the Exploration and Querying modules use to read the enriched
//! schema back from the endpoint.

use rdf::vocab::{qb as qbv, qb4o, rdf as rdfv, rdfs};
use rdf::{BlankNode, Iri, Literal, Term, Triple};
use sparql::Endpoint;

use crate::error::Qb4olapError;
use crate::model::{
    AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
    LevelAttribute, LevelComponent, MeasureSpec,
};

/// Generates all RDF triples describing a QB4OLAP cube schema.
pub fn schema_triples(schema: &CubeSchema) -> Vec<Triple> {
    let mut triples = Vec::new();
    let dsd = Term::Iri(schema.dsd.clone());

    triples.push(Triple::new(
        dsd.clone(),
        rdfv::type_(),
        Term::Iri(qbv::data_structure_definition()),
    ));
    triples.push(Triple::new(
        Term::Iri(schema.dataset.clone()),
        qbv::structure(),
        Term::Iri(schema.dsd.clone()),
    ));

    // Fact–level components.
    for (index, component) in schema.level_components.iter().enumerate() {
        let spec = Term::Blank(BlankNode::new(format!("q4-level-comp-{index}")));
        triples.push(Triple::new(dsd.clone(), qbv::component(), spec.clone()));
        triples.push(Triple::new(
            spec.clone(),
            qb4o::level(),
            Term::Iri(component.level.clone()),
        ));
        triples.push(Triple::new(
            spec,
            qb4o::cardinality(),
            Term::Iri(component.cardinality.iri()),
        ));
    }

    // Measure components with aggregate functions.
    for (index, measure) in schema.measures.iter().enumerate() {
        let spec = Term::Blank(BlankNode::new(format!("q4-measure-comp-{index}")));
        triples.push(Triple::new(dsd.clone(), qbv::component(), spec.clone()));
        triples.push(Triple::new(
            spec.clone(),
            qbv::measure(),
            Term::Iri(measure.property.clone()),
        ));
        triples.push(Triple::new(
            spec,
            qb4o::aggregate_function(),
            Term::Iri(measure.aggregate.iri()),
        ));
        triples.push(Triple::new(
            Term::Iri(measure.property.clone()),
            rdfv::type_(),
            Term::Iri(qbv::measure_property()),
        ));
    }

    // Levels and their attributes.
    for (level_iri, level) in &schema.levels {
        triples.push(Triple::new(
            Term::Iri(level_iri.clone()),
            rdfv::type_(),
            Term::Iri(qb4o::level_property()),
        ));
        if let Some(label) = &level.label {
            triples.push(Triple::new(
                Term::Iri(level_iri.clone()),
                rdfs::label(),
                Literal::lang_string(label, "en"),
            ));
        }
        for attribute in &level.attributes {
            triples.push(Triple::new(
                Term::Iri(attribute.iri.clone()),
                rdfv::type_(),
                Term::Iri(qb4o::level_attribute()),
            ));
            triples.push(Triple::new(
                Term::Iri(level_iri.clone()),
                qb4o::has_attribute(),
                Term::Iri(attribute.iri.clone()),
            ));
            triples.push(Triple::new(
                Term::Iri(attribute.iri.clone()),
                qb4o::in_level(),
                Term::Iri(level_iri.clone()),
            ));
            if let Some(label) = &attribute.label {
                triples.push(Triple::new(
                    Term::Iri(attribute.iri.clone()),
                    rdfs::label(),
                    Literal::lang_string(label, "en"),
                ));
            }
        }
    }

    // Dimensions, hierarchies, hierarchy steps.
    for dimension in &schema.dimensions {
        triples.push(Triple::new(
            Term::Iri(dimension.iri.clone()),
            rdfv::type_(),
            Term::Iri(qbv::dimension_property()),
        ));
        if let Some(label) = &dimension.label {
            triples.push(Triple::new(
                Term::Iri(dimension.iri.clone()),
                rdfs::label(),
                Literal::lang_string(label, "en"),
            ));
        }
        for hierarchy in &dimension.hierarchies {
            triples.push(Triple::new(
                Term::Iri(dimension.iri.clone()),
                qb4o::has_hierarchy(),
                Term::Iri(hierarchy.iri.clone()),
            ));
            triples.push(Triple::new(
                Term::Iri(hierarchy.iri.clone()),
                rdfv::type_(),
                Term::Iri(qb4o::hierarchy()),
            ));
            triples.push(Triple::new(
                Term::Iri(hierarchy.iri.clone()),
                qb4o::in_dimension(),
                Term::Iri(dimension.iri.clone()),
            ));
            if let Some(label) = &hierarchy.label {
                triples.push(Triple::new(
                    Term::Iri(hierarchy.iri.clone()),
                    rdfs::label(),
                    Literal::lang_string(label, "en"),
                ));
            }
            for level in &hierarchy.levels {
                triples.push(Triple::new(
                    Term::Iri(hierarchy.iri.clone()),
                    qb4o::has_level(),
                    Term::Iri(level.clone()),
                ));
            }
            for (index, step) in hierarchy.steps.iter().enumerate() {
                let node = Term::Blank(BlankNode::new(format!(
                    "ih-{}-{}",
                    hierarchy.iri.local_name(),
                    index
                )));
                triples.push(Triple::new(
                    node.clone(),
                    rdfv::type_(),
                    Term::Iri(qb4o::hierarchy_step()),
                ));
                triples.push(Triple::new(
                    node.clone(),
                    qb4o::in_hierarchy(),
                    Term::Iri(hierarchy.iri.clone()),
                ));
                triples.push(Triple::new(
                    node.clone(),
                    qb4o::child_level(),
                    Term::Iri(step.child.clone()),
                ));
                triples.push(Triple::new(
                    node.clone(),
                    qb4o::parent_level(),
                    Term::Iri(step.parent.clone()),
                ));
                triples.push(Triple::new(
                    node,
                    qb4o::pc_cardinality(),
                    Term::Iri(step.cardinality.iri()),
                ));
            }
        }
    }
    triples
}

/// Reads the QB4OLAP schema of a dataset back from an endpoint.
///
/// The dataset must have a `qb:structure` whose components use `qb4o:level`
/// (i.e. the Redefinition phase already happened).
pub fn schema_from_endpoint(
    endpoint: &dyn Endpoint,
    dataset: &Iri,
) -> Result<CubeSchema, Qb4olapError> {
    // Find the QB4OLAP DSD of the dataset.
    let dsd_solutions = endpoint.select(&format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT DISTINCT ?dsd WHERE {{
           <{ds}> qb:structure ?dsd .
           ?dsd qb:component ?c .
           ?c qb4o:level ?level .
         }}",
        ds = dataset.as_str()
    ))?;
    let dsd = dsd_solutions
        .get(0, "dsd")
        .and_then(Term::as_iri)
        .cloned()
        .ok_or_else(|| {
            Qb4olapError::SchemaNotFound(format!(
                "dataset <{}> has no QB4OLAP structure (run the Redefinition phase first)",
                dataset.as_str()
            ))
        })?;

    let mut schema = CubeSchema::new(dsd.clone(), dataset.clone());

    // Level components.
    let level_components = endpoint.select(&format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT ?level ?card WHERE {{
           <{dsd}> qb:component ?c .
           ?c qb4o:level ?level .
           OPTIONAL {{ ?c qb4o:cardinality ?card }}
         }} ORDER BY ?level",
        dsd = dsd.as_str()
    ))?;
    for i in 0..level_components.len() {
        let Some(level) = level_components.get(i, "level").and_then(Term::as_iri).cloned() else {
            continue;
        };
        let cardinality = level_components
            .get(i, "card")
            .and_then(Term::as_iri)
            .and_then(Cardinality::from_iri)
            .unwrap_or(Cardinality::ManyToOne);
        schema.level_components.push(LevelComponent {
            level: level.clone(),
            cardinality,
            dimension: None,
        });
        schema.level_mut(&level);
    }

    // Measures.
    let measures = endpoint.select(&format!(
        "PREFIX qb: <http://purl.org/linked-data/cube#>
         PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT ?measure ?agg WHERE {{
           <{dsd}> qb:component ?c .
           ?c qb:measure ?measure .
           OPTIONAL {{ ?c qb4o:aggregateFunction ?agg }}
         }} ORDER BY ?measure",
        dsd = dsd.as_str()
    ))?;
    for i in 0..measures.len() {
        let Some(property) = measures.get(i, "measure").and_then(Term::as_iri).cloned() else {
            continue;
        };
        let aggregate = measures
            .get(i, "agg")
            .and_then(Term::as_iri)
            .and_then(AggregateFunction::from_iri)
            .unwrap_or(AggregateFunction::Sum);
        schema.measures.push(MeasureSpec {
            property,
            aggregate,
        });
    }

    // Hierarchies and dimensions.
    let hierarchies = endpoint.select(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT ?dim ?hier ?level WHERE {
           ?hier a qb4o:Hierarchy ; qb4o:inDimension ?dim ; qb4o:hasLevel ?level .
         } ORDER BY ?dim ?hier ?level",
    )?;
    for i in 0..hierarchies.len() {
        let (Some(dim_iri), Some(hier_iri), Some(level_iri)) = (
            hierarchies.get(i, "dim").and_then(Term::as_iri).cloned(),
            hierarchies.get(i, "hier").and_then(Term::as_iri).cloned(),
            hierarchies.get(i, "level").and_then(Term::as_iri).cloned(),
        ) else {
            continue;
        };
        let dimension = match schema.dimension_mut(&dim_iri) {
            Some(d) => d,
            None => {
                schema.dimensions.push(Dimension::new(dim_iri.clone()));
                schema.dimensions.last_mut().expect("just pushed")
            }
        };
        let hierarchy = match dimension.hierarchies.iter_mut().find(|h| h.iri == hier_iri) {
            Some(h) => h,
            None => {
                dimension.hierarchies.push(Hierarchy::new(hier_iri.clone()));
                dimension.hierarchies.last_mut().expect("just pushed")
            }
        };
        if !hierarchy.levels.contains(&level_iri) {
            hierarchy.levels.push(level_iri.clone());
        }
        schema.level_mut(&level_iri);
    }

    // Hierarchy steps.
    let steps = endpoint.select(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT ?hier ?child ?parent ?card WHERE {
           ?step a qb4o:HierarchyStep ;
                 qb4o:inHierarchy ?hier ;
                 qb4o:childLevel ?child ;
                 qb4o:parentLevel ?parent .
           OPTIONAL { ?step qb4o:pcCardinality ?card }
         } ORDER BY ?hier ?child",
    )?;
    for i in 0..steps.len() {
        let (Some(hier_iri), Some(child), Some(parent)) = (
            steps.get(i, "hier").and_then(Term::as_iri).cloned(),
            steps.get(i, "child").and_then(Term::as_iri).cloned(),
            steps.get(i, "parent").and_then(Term::as_iri).cloned(),
        ) else {
            continue;
        };
        let cardinality = steps
            .get(i, "card")
            .and_then(Term::as_iri)
            .and_then(Cardinality::from_iri)
            .unwrap_or(Cardinality::ManyToOne);
        for dimension in &mut schema.dimensions {
            if let Some(hierarchy) = dimension.hierarchies.iter_mut().find(|h| h.iri == hier_iri) {
                hierarchy.steps.push(HierarchyStep {
                    child: child.clone(),
                    parent: parent.clone(),
                    cardinality,
                });
            }
        }
    }

    // Level attributes.
    let attributes = endpoint.select(
        "PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
         SELECT ?level ?attr WHERE { ?level qb4o:hasAttribute ?attr } ORDER BY ?level ?attr",
    )?;
    for i in 0..attributes.len() {
        let (Some(level), Some(attr)) = (
            attributes.get(i, "level").and_then(Term::as_iri).cloned(),
            attributes.get(i, "attr").and_then(Term::as_iri).cloned(),
        ) else {
            continue;
        };
        if schema.levels.contains_key(&level) || schema.dimension_of_level(&level).is_some() {
            let entry = schema.level_mut(&level);
            if !entry.attributes.iter().any(|a| a.iri == attr) {
                entry.attributes.push(LevelAttribute::new(attr));
            }
        }
    }

    // Attach dimensions to level components now that hierarchies are known.
    let dimension_of: Vec<(Iri, Option<Iri>)> = schema
        .level_components
        .iter()
        .map(|c| {
            (
                c.level.clone(),
                schema.dimension_of_level(&c.level).map(|d| d.iri.clone()),
            )
        })
        .collect();
    for component in &mut schema.level_components {
        if let Some((_, dim)) = dimension_of.iter().find(|(l, _)| l == &component.level) {
            component.dimension = dim.clone();
        }
    }

    // Make sure every hierarchy level has a Level entry.
    let all_levels: Vec<Iri> = schema
        .dimensions
        .iter()
        .flat_map(|d| d.levels().into_iter().cloned().collect::<Vec<_>>())
        .collect();
    for level in all_levels {
        schema.level_mut(&level);
    }

    Ok(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::vocab::{demo_schema, eurostat_property, sdmx_measure};
    use rdf::Graph;
    use sparql::LocalEndpoint;

    fn demo_schema_value() -> CubeSchema {
        let mut schema = CubeSchema::new(
            demo_schema::term("migr_asyappctzmQB4O"),
            rdf::vocab::eurostat_data::migr_asyappctzm(),
        );
        schema.level_components.push(LevelComponent {
            level: eurostat_property::citizen(),
            cardinality: Cardinality::ManyToOne,
            dimension: Some(demo_schema::citizenship_dim()),
        });
        schema.measures.push(MeasureSpec {
            property: sdmx_measure::obs_value(),
            aggregate: AggregateFunction::Sum,
        });

        let mut hierarchy = Hierarchy::new(demo_schema::citizenship_geo_hier());
        hierarchy.levels = vec![
            eurostat_property::citizen(),
            demo_schema::continent(),
            demo_schema::cit_all(),
        ];
        hierarchy.steps = vec![
            HierarchyStep {
                child: eurostat_property::citizen(),
                parent: demo_schema::continent(),
                cardinality: Cardinality::ManyToOne,
            },
            HierarchyStep {
                child: demo_schema::continent(),
                parent: demo_schema::cit_all(),
                cardinality: Cardinality::ManyToOne,
            },
        ];
        let mut dimension = Dimension::new(demo_schema::citizenship_dim());
        dimension.hierarchies.push(hierarchy);
        schema.dimensions.push(dimension);

        for level in [
            eurostat_property::citizen(),
            demo_schema::continent(),
            demo_schema::cit_all(),
        ] {
            schema.level_mut(&level);
        }
        schema
            .level_mut(&demo_schema::continent())
            .attributes
            .push(LevelAttribute::new(demo_schema::continent_name()));
        schema
    }

    #[test]
    fn schema_triples_match_paper_structure() {
        let schema = demo_schema_value();
        let graph = Graph::from_triples(schema_triples(&schema));

        // The DSD is typed and carries one level component and one measure component.
        assert!(graph.contains(&Triple::new(
            Term::Iri(schema.dsd.clone()),
            rdfv::type_(),
            Term::Iri(qbv::data_structure_definition()),
        )));
        assert_eq!(
            graph
                .objects(&Term::Iri(schema.dsd.clone()), &qbv::component())
                .len(),
            2
        );
        // The citizenship dimension declares its hierarchy, as in the paper's listing.
        assert!(graph.contains(&Triple::new(
            Term::Iri(demo_schema::citizenship_dim()),
            qb4o::has_hierarchy(),
            Term::Iri(demo_schema::citizenship_geo_hier()),
        )));
        // Hierarchy steps exist with ManyToOne cardinality.
        let steps = graph.subjects_of_type(&qb4o::hierarchy_step());
        assert_eq!(steps.len(), 2);
        for step in steps {
            assert_eq!(
                graph.object(&step, &qb4o::pc_cardinality()),
                Some(Term::Iri(qb4o::many_to_one()))
            );
        }
        // The attribute is linked both ways.
        assert!(graph.contains(&Triple::new(
            Term::Iri(demo_schema::continent()),
            qb4o::has_attribute(),
            Term::Iri(demo_schema::continent_name()),
        )));
        assert!(graph.contains(&Triple::new(
            Term::Iri(demo_schema::continent_name()),
            qb4o::in_level(),
            Term::Iri(demo_schema::continent()),
        )));
    }

    #[test]
    fn schema_roundtrips_through_endpoint() {
        let schema = demo_schema_value();
        let endpoint = LocalEndpoint::new();
        endpoint
            .insert_triples(&schema_triples(&schema))
            .unwrap();

        let loaded = schema_from_endpoint(&endpoint, &schema.dataset).unwrap();
        assert_eq!(loaded.dsd, schema.dsd);
        assert_eq!(loaded.level_components.len(), 1);
        assert_eq!(
            loaded.level_components[0].dimension,
            Some(demo_schema::citizenship_dim())
        );
        assert_eq!(loaded.measures, schema.measures);
        assert_eq!(loaded.dimensions.len(), 1);
        let dim = &loaded.dimensions[0];
        assert_eq!(dim.hierarchies.len(), 1);
        assert_eq!(dim.hierarchies[0].levels.len(), 3);
        assert_eq!(dim.hierarchies[0].steps.len(), 2);
        assert_eq!(
            loaded.level_attributes(&demo_schema::continent()).len(),
            1
        );
        assert_eq!(
            loaded.bottom_level_of_dimension(&demo_schema::citizenship_dim()),
            Some(eurostat_property::citizen())
        );
    }

    #[test]
    fn missing_qb4olap_structure_is_reported() {
        let endpoint = LocalEndpoint::new();
        let err = schema_from_endpoint(&endpoint, &Iri::new("http://example.org/none"))
            .expect_err("no schema present");
        assert!(matches!(err, Qb4olapError::SchemaNotFound(_)));
    }
}
