//! Generates the paper's demo cube (synthetic Eurostat asylum
//! applications), enriches it, and serves it over HTTP.
//!
//! ```text
//! cargo run --release -p qb2olap_server --bin serve_demo -- \
//!     --addr 127.0.0.1:7878 --observations 5000
//! curl 'http://127.0.0.1:7878/ql' --data-binary @query.ql
//! ```

use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut observations = 5_000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--observations" => {
                observations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--observations needs a number")
            }
            "--help" | "-h" => {
                eprintln!("usage: serve_demo [--addr HOST:PORT] [--observations N]");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    eprintln!("generating + enriching the demo cube ({observations} observations)...");
    let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(observations))
        .expect("demo cube");
    let tool = qb2olap::Qb2Olap::new(cube.endpoint.clone());

    let config = qb2olap_server::ServerConfig {
        addr,
        default_dataset: Some(cube.dataset.clone()),
        ..qb2olap_server::ServerConfig::default()
    };
    let server = qb2olap_server::start(tool, config).expect("bind server");
    eprintln!("serving <{}> on {}", cube.dataset.as_str(), server.base_url());
    eprintln!("try: curl '{}/explore/schema'", server.base_url());
    eprintln!("     curl '{}/metrics'", server.base_url());

    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
