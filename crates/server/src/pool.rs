//! The fixed worker pool and its bounded accept queue.
//!
//! The accept loop never blocks on a slow handler: accepted connections go
//! through a bounded [`std::sync::mpsc::sync_channel`], and when every
//! worker is busy *and* the queue is full the connection is refused on the
//! spot (`try_dispatch` hands it back so the caller can answer `429 Too
//! Many Requests`). A `queue` of `0` makes the channel a rendezvous: a
//! connection is admitted only when a worker is already waiting for it —
//! the strictest admission policy, and the one the saturation tests use.
//!
//! Shutdown is graceful by construction: dropping the sender ends the
//! channel, each worker drains whatever was already queued, finishes its
//! in-flight connection, and returns; `shutdown` then joins them all.

use std::net::TcpStream;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A fixed pool of worker threads consuming accepted connections from a
/// bounded queue.
pub struct WorkerPool {
    sender: Option<SyncSender<TcpStream>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each running `handler` on every connection
    /// it dequeues. `queue` bounds how many accepted-but-unserved
    /// connections may wait (0 = rendezvous, nothing waits).
    pub fn start<F>(workers: usize, queue: usize, handler: Arc<F>) -> Self
    where
        F: Fn(TcpStream) + Send + Sync + 'static,
    {
        let (sender, receiver) = sync_channel::<TcpStream>(queue);
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = receiver.clone();
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("qb2olap-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &*handler))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Hands a connection to the pool. On saturation (queue full or pool
    /// shut down) the connection comes back to the caller, which owes the
    /// client an explicit refusal.
    pub fn try_dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let Some(sender) = &self.sender else {
            return Err(stream);
        };
        try_send(sender, stream)
    }

    /// A cloneable submit-only handle for the accept loop. The pool itself
    /// stays with its owner, whose `shutdown` must drop the **last** sender
    /// to close the queue — so every `Dispatcher` must be gone (the accept
    /// thread joined) before calling it.
    pub fn dispatcher(&self) -> Dispatcher {
        Dispatcher {
            sender: self
                .sender
                .clone()
                .expect("dispatcher requested after shutdown"),
        }
    }

    /// Closes the queue and waits for every worker to drain it and finish
    /// in-flight work.
    pub fn shutdown(mut self) {
        self.sender.take(); // close the channel; workers exit after draining
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The sender half of a pool's queue; see [`WorkerPool::dispatcher`].
#[derive(Clone)]
pub struct Dispatcher {
    sender: SyncSender<TcpStream>,
}

impl Dispatcher {
    /// Same contract as [`WorkerPool::try_dispatch`].
    pub fn try_dispatch(&self, stream: TcpStream) -> Result<(), TcpStream> {
        try_send(&self.sender, stream)
    }
}

fn try_send(sender: &SyncSender<TcpStream>, stream: TcpStream) -> Result<(), TcpStream> {
    sender.try_send(stream).map_err(|e| match e {
        TrySendError::Full(stream) => stream,
        TrySendError::Disconnected(stream) => stream,
    })
}

fn worker_loop<F: Fn(TcpStream)>(receiver: &Mutex<Receiver<TcpStream>>, handler: &F) {
    loop {
        // Hold the lock only while dequeueing, never while serving.
        let next = receiver.lock().recv();
        match next {
            Ok(stream) => handler(stream),
            Err(_) => return, // sender dropped and queue drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn connected_pair(listener: &TcpListener) -> TcpStream {
        TcpStream::connect(listener.local_addr().unwrap()).unwrap()
    }

    #[test]
    fn pool_runs_handlers_and_drains_on_shutdown() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let handler = {
            let served = served.clone();
            Arc::new(move |_stream: TcpStream| {
                served.fetch_add(1, Ordering::SeqCst);
            })
        };
        let pool = WorkerPool::start(2, 8, handler);
        for _ in 0..5 {
            let client = connected_pair(&listener);
            let (server_side, _) = listener.accept().unwrap();
            pool.try_dispatch(server_side).expect("queue has room");
            drop(client);
        }
        // shutdown drains everything that was queued before returning.
        pool.shutdown();
        assert_eq!(served.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn rendezvous_queue_refuses_when_workers_are_busy() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        let block_rx = Mutex::new(block_rx);
        let handler = Arc::new(move |_stream: TcpStream| {
            // Park the single worker until the test releases it.
            let _ = block_rx.lock().recv_timeout(Duration::from_secs(5));
        });
        let pool = WorkerPool::start(1, 0, handler);

        // First connection occupies the worker...
        let _c1 = connected_pair(&listener);
        let (s1, _) = listener.accept().unwrap();
        pool.try_dispatch(s1).expect("a worker is waiting");
        // ... give it a moment to actually dequeue, then the rendezvous
        // channel has nobody listening: dispatch must hand the stream back.
        std::thread::sleep(Duration::from_millis(50));
        let _c2 = connected_pair(&listener);
        let (s2, _) = listener.accept().unwrap();
        assert!(pool.try_dispatch(s2).is_err(), "saturated pool refuses");

        block_tx.send(()).unwrap();
        pool.shutdown();
    }
}
