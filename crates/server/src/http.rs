//! A hand-rolled HTTP/1.1 subset: request parsing with hard limits,
//! response serialization, keep-alive bookkeeping.
//!
//! The server speaks exactly the slice of HTTP/1.1 a query endpoint
//! needs — `GET`/`POST`, `Content-Length` bodies (no chunked transfer
//! encoding), persistent connections with `Connection: close` opt-out —
//! and rejects everything outside it with the *specific* status code a
//! client can act on: `400` for malformed syntax, `405` for other
//! methods, `408` for a request that stalls mid-flight, `413` for a body
//! past the configured cap, `431` for header sections past theirs.
//! Every limit is enforced **while reading**, so a hostile or broken
//! client cannot make the server buffer unbounded input.

use std::io::{self, BufRead, Write};
use std::time::Duration;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// The decoded path component of the request target (`/ql`).
    pub path: String,
    /// The raw query string after `?`, if any (percent-encoded).
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// True when the client asked to keep the connection open after this
    /// exchange (HTTP/1.1 default, `Connection: close` opts out).
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The decoded value of a query-string parameter.
    pub fn query_param(&self, name: &str) -> Option<String> {
        let query = self.query.as_deref()?;
        for pair in query.split('&') {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            if key == name {
                return Some(percent_decode(value));
            }
        }
        None
    }

    /// The request body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why reading a request failed — each variant maps to one response (or,
/// for clean EOF/idle cases, to a silent close).
#[derive(Debug)]
pub enum ReadError {
    /// The connection closed cleanly before a new request started.
    ClosedIdle,
    /// The read timed out before the first byte of a new request — an
    /// idle keep-alive connection, closed without a response.
    TimedOutIdle,
    /// The read timed out after part of a request arrived → `408`.
    TimedOutMidRequest,
    /// The request is syntactically malformed → `400` with the detail.
    Malformed(String),
    /// The declared body exceeds the configured cap → `413`.
    BodyTooLarge {
        /// The `Content-Length` the client declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The request line + headers exceed the configured cap → `431`.
    HeadersTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// The method is outside the supported subset → `405`.
    MethodNotAllowed(String),
    /// A transport error with no meaningful response.
    Io(io::Error),
}

/// Hard limits applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Cap on the request line plus the whole header section, in bytes.
    pub max_head_bytes: usize,
    /// Cap on the declared `Content-Length`, in bytes.
    pub max_body_bytes: usize,
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one line (up to CRLF or LF) with a running byte budget shared
/// across the whole head section.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    anything_read: &mut bool,
) -> Result<String, ReadError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && !*anything_read {
                    return Err(ReadError::ClosedIdle);
                }
                return Err(ReadError::Malformed("unexpected end of stream".into()));
            }
            Ok(_) => {
                *anything_read = true;
                if *budget == 0 {
                    return Err(ReadError::HeadersTooLarge { limit: 0 });
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()));
                }
                line.push(byte[0]);
            }
            Err(e) if is_timeout(&e) => {
                return Err(if *anything_read {
                    ReadError::TimedOutMidRequest
                } else {
                    ReadError::TimedOutIdle
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// Reads and parses one request from `reader`, enforcing `limits` as the
/// bytes arrive. The stream's read timeout doubles as both the keep-alive
/// idle timeout (before the first byte) and the stall timeout (after it).
pub fn read_request(reader: &mut impl BufRead, limits: ReadLimits) -> Result<Request, ReadError> {
    let mut budget = limits.max_head_bytes;
    let mut anything_read = false;

    // Request line. Tolerate one leading empty line (robustness note in
    // RFC 9112 §2.2).
    let mut request_line = read_line(reader, &mut budget, &mut anything_read)?;
    if request_line.is_empty() {
        request_line = read_line(reader, &mut budget, &mut anything_read)?;
    }
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_ascii_uppercase(), t.to_string(), v.to_string())
        }
        _ => {
            return Err(ReadError::Malformed(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if method != "GET" && method != "POST" {
        // Still drain the head so the 405 lands on a parseable exchange.
        loop {
            let line = read_line(reader, &mut budget, &mut anything_read)?;
            if line.is_empty() {
                break;
            }
        }
        return Err(ReadError::MethodNotAllowed(method));
    }

    // Headers.
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut connection = None::<String>;
    loop {
        let line = match read_line(reader, &mut budget, &mut anything_read) {
            Ok(line) => line,
            Err(ReadError::HeadersTooLarge { .. }) => {
                return Err(ReadError::HeadersTooLarge {
                    limit: limits.max_head_bytes,
                })
            }
            Err(other) => return Err(other),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!(
                "malformed header line {line:?}"
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Malformed(format!(
                "malformed header name in {line:?}"
            )));
        }
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    ReadError::Malformed(format!("unparsable Content-Length {value:?}"))
                })?;
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed(
                    "Transfer-Encoding is unsupported; send a Content-Length body".into(),
                ));
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            _ => {}
        }
        headers.push((name, value));
    }

    if content_length > limits.max_body_bytes {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: limits.max_body_bytes,
        });
    }

    // Body.
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        let mut filled = 0;
        while filled < content_length {
            match reader.read(&mut body[filled..]) {
                Ok(0) => {
                    return Err(ReadError::Malformed(
                        "connection closed mid-body".into(),
                    ))
                }
                Ok(n) => filled += n,
                Err(e) if is_timeout(&e) => return Err(ReadError::TimedOutMidRequest),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }

    let keep_alive = match connection.as_deref() {
        Some(c) => !c.split(',').any(|t| t.trim() == "close"),
        None => version == "HTTP/1.1",
    };

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target, None),
    };
    Ok(Request {
        method,
        path: percent_decode(&path),
        query,
        headers,
        body,
        keep_alive,
    })
}

/// One response, ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers (`(name, value)`), e.g. the snapshot epoch.
    pub extra_headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and content type.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type,
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<Vec<u8>>) -> Self {
        Response::new(200, "application/json", body)
    }

    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<Vec<u8>>) -> Self {
        Response::new(200, "text/plain; charset=utf-8", body)
    }

    /// An error response with a JSON `{"error": ...}` body carrying the
    /// engine's message verbatim.
    pub fn error(status: u16, message: &str) -> Self {
        Response::new(
            status,
            "application/json",
            format!("{{\"error\":{}}}\n", json_string(message)),
        )
    }

    /// Attaches an extra header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Content Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "",
        }
    }

    /// Serializes the response head + body; `keep_alive` decides the
    /// `Connection` header the client sees.
    pub fn write_to(&self, stream: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Percent-decodes a URL component (`%41` → `A`, `+` → space). Malformed
/// escapes pass through verbatim — the downstream parser then reports its
/// own error on the text it actually received.
pub fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                match (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    (Some(hi), Some(lo)) => {
                        out.push((hi * 16 + lo) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-encodes a URL component (everything but unreserved characters).
pub fn percent_encode(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(byte as char)
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Renders a JSON string literal (quoted, escaped) from `text`.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The read timeout the connection loop installs: `None` means block
/// forever, which the server never uses.
pub fn effective_timeout(d: Duration) -> Option<Duration> {
    Some(d.max(Duration::from_millis(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn limits() -> ReadLimits {
        ReadLimits {
            max_head_bytes: 4096,
            max_body_bytes: 1024,
        }
    }

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), limits())
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse("GET /sparql?query=SELECT%20%2A&x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sparql");
        assert_eq!(req.query_param("query").as_deref(), Some("SELECT *"));
        assert_eq!(req.query_param("x").as_deref(), Some("1"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /ql HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello").unwrap();
        assert_eq!(req.body_text(), "hello");
        assert!(!req.keep_alive);
        assert_eq!(req.header("content-length"), Some("5"));
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /too many words HTTP/1.1\r\n\r\n",
            "GET /x HTTP/3.0\r\n\r\n",
            " \r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(ReadError::Malformed(_))),
                "{raw:?} must be malformed"
            );
        }
    }

    #[test]
    fn malformed_headers_are_rejected() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_declarations_are_refused_up_front() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"),
            Err(ReadError::BodyTooLarge { declared: 99999, .. })
        ));
        let huge = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(8192));
        assert!(matches!(
            parse(&huge),
            Err(ReadError::HeadersTooLarge { .. })
        ));
    }

    #[test]
    fn unsupported_methods_are_a_405() {
        assert!(matches!(
            parse("DELETE /ql HTTP/1.1\r\nHost: h\r\n\r\n"),
            Err(ReadError::MethodNotAllowed(m)) if m == "DELETE"
        ));
    }

    #[test]
    fn clean_eof_is_idle_close() {
        assert!(matches!(parse(""), Err(ReadError::ClosedIdle)));
        assert!(matches!(
            parse("GET / HTT"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn percent_coding_round_trips() {
        let original = "SELECT * WHERE { ?s <http://x/p> \"v alue\" }";
        assert_eq!(percent_decode(&percent_encode(original)), original);
        assert_eq!(percent_decode("a%2"), "a%2", "truncated escape passes through");
        assert_eq!(percent_decode("a%zz"), "a%zz", "bad hex passes through");
    }

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
