//! A minimal blocking HTTP/1.1 client for tests and load generation.
//!
//! Speaks exactly the dialect the server does (`Content-Length` framing,
//! keep-alive by default) over one [`TcpStream`], so integration tests and
//! `loadgen` can drive the server without any external dependency — and
//! can also send deliberately broken bytes through the raw stream when a
//! test needs to provoke a `400`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A persistent connection to the server.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects, with a generous default I/O timeout so a hung test fails
    /// instead of deadlocking.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(30))
    }

    /// Connects with an explicit read/write timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request and reads the response. `path` may carry a query
    /// string; `extra_headers` land verbatim in the request head.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        extra_headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: qb2olap\r\n");
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\n\r\n",
            body.map_or(0, <[u8]>::len)
        ));
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body)?;
        }
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience: `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None, &[])
    }

    /// Convenience: `POST path` with a text body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body.as_bytes()), &[])
    }

    /// Writes raw bytes straight through — for malformed-request tests.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one response off the wire (status line, headers,
    /// `Content-Length` body).
    pub fn read_response(&mut self) -> io::Result<ClientResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value.parse().unwrap_or(0);
                }
                headers.push((name, value));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}
