//! Canonical JSON serialization of query results.
//!
//! The vendored `serde_json` shim has no derive support and no parser, so
//! the wire format is rendered by hand — which is a feature here, not a
//! workaround: these functions are the *definition* of the server's wire
//! format, and the integration tests + `loadgen` call the very same
//! functions on library-side results to assert that a response body is
//! **bit-identical** to a local call. Terms are rendered in their
//! N-Triples form (the `Display` impl of [`rdf::Term`]), which keeps IRIs,
//! blank nodes and typed literals unambiguous inside JSON strings.

use crate::http::json_string;
use ql::ResultCube;
use sparql::Solutions;

/// Renders a [`ResultCube`] as the canonical `/ql` response body.
///
/// Shape:
/// ```json
/// {"axes":[{"dimension":"...","level":"...","variable":"..."}],
///  "measures":[{"measure":"...","variable":"..."}],
///  "cells":[{"coordinates":["<iri>"],"values":["\"4\"^^<...>",null]}]}
/// ```
/// Cells arrive already in the cube's canonical coordinate order
/// ([`ResultCube::sort_cells`]), so two identical cubes always serialize
/// to identical bytes.
pub fn cube_to_json(cube: &ResultCube) -> String {
    let mut out = String::with_capacity(256 + cube.cells.len() * 64);
    out.push_str("{\"axes\":[");
    for (i, axis) in cube.axes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"dimension\":{},\"level\":{},\"variable\":{}}}",
            json_string(axis.dimension.as_str()),
            json_string(axis.level.as_str()),
            json_string(&axis.variable),
        ));
    }
    out.push_str("],\"measures\":[");
    for (i, (measure, variable)) in cube.measures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"measure\":{},\"variable\":{}}}",
            json_string(measure.as_str()),
            json_string(variable),
        ));
    }
    out.push_str("],\"cells\":[");
    for (i, cell) in cube.cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"coordinates\":[");
        for (j, term) in cell.coordinates.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&term.to_string()));
        }
        out.push_str("],\"values\":[");
        for (j, value) in cell.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match value {
                Some(term) => out.push_str(&json_string(&term.to_string())),
                None => out.push_str("null"),
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out.push('\n');
    out
}

/// Renders SPARQL SELECT [`Solutions`] as the canonical `/sparql` response
/// body: `{"variables":[...],"rows":[["<term>",null,...],...]}` with terms
/// in N-Triples form and unbound variables as `null`.
pub fn solutions_to_json(solutions: &Solutions) -> String {
    let mut out = String::with_capacity(64 + solutions.rows.len() * 48);
    out.push_str("{\"variables\":[");
    for (i, variable) in solutions.variables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(variable.name()));
    }
    out.push_str("],\"rows\":[");
    for (i, row) in solutions.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, binding) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            match binding {
                Some(term) => out.push_str(&json_string(&term.to_string())),
                None => out.push_str("null"),
            }
        }
        out.push(']');
    }
    out.push_str("]}");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdf::{Iri, Term};
    use sparql::Variable;

    #[test]
    fn solutions_serialize_with_nulls_and_escapes() {
        let solutions = Solutions {
            variables: vec![Variable::new("s"), Variable::new("v")],
            rows: vec![
                vec![Some(Term::iri("http://x/a")), Some(Term::string("say \"hi\""))],
                vec![Some(Term::iri("http://x/b")), None],
            ],
        };
        let json = solutions_to_json(&solutions);
        assert!(json.starts_with("{\"variables\":[\"s\",\"v\"]"));
        assert!(json.contains("\"<http://x/a>\""));
        // N-Triples escapes the inner quotes (`\"`), JSON escapes that
        // again (`\\\"`) — the wire form is doubly escaped.
        assert!(json.contains(r#"\\\"hi\\\""#), "literal quoting is escaped: {json}");
        assert!(json.contains(",null]"), "unbound binding is null: {json}");
    }

    #[test]
    fn cube_serialization_is_deterministic() {
        let solutions = Solutions {
            variables: vec![Variable::new("year"), Variable::new("total")],
            rows: vec![
                vec![Some(Term::iri("http://t/2014")), Some(Term::integer(7))],
                vec![Some(Term::iri("http://t/2013")), None],
            ],
        };
        let cube = ResultCube::from_solutions(
            vec![ql::CubeAxis {
                dimension: Iri::new("http://s/timeDim"),
                level: Iri::new("http://s/year"),
                variable: "year".into(),
            }],
            vec![(Iri::new("http://m/obsValue"), "total".into())],
            &solutions,
        );
        let first = cube_to_json(&cube);
        assert_eq!(first, cube_to_json(&cube), "same cube, same bytes");
        assert!(first.contains("\"dimension\":\"http://s/timeDim\""));
        // from_solutions sorts cells canonically: 2013 precedes 2014.
        let i2013 = first.find("2013").unwrap();
        let i2014 = first.find("2014").unwrap();
        assert!(i2013 < i2014, "cells arrive in canonical order");
        assert!(first.contains("\"values\":[null]"));
        assert!(first.ends_with("\n"));
    }
}
