//! # HTTP serving front end over snapshot pins
//!
//! A dependency-free HTTP/1.1 server (hand-rolled over
//! [`std::net::TcpListener`]) exposing the QB2OLAP modules over the wire:
//! QL pipelines (`/ql`), SPARQL SELECT (`/sparql`), exploration
//! (`/explore/*`), `EXPLAIN ANALYZE` (`/explain`) and the observability
//! registry (`/metrics`) — all over **one shared [`qb2olap::Qb2Olap`]**.
//!
//! The serving contract extends the library's non-blocking guarantee
//! (ARCHITECTURE.md §"Overlay & background fold") over the wire:
//!
//! - every `/ql` request pins a [`cubestore::CubeSnapshot`] (~300 ns) and
//!   computes its whole response against that pin — responses are
//!   **bit-identical** to library calls on the same snapshot, even while
//!   a background fold replaces the cube underneath;
//! - a fixed worker pool with a **bounded accept queue** admits requests;
//!   saturation is an explicit `429`, never an unbounded backlog;
//! - a per-request deadline turns overlong work into `408`;
//! - shutdown is graceful: queued and in-flight requests finish, new
//!   connections are refused.
//!
//! ```no_run
//! let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(200)).unwrap();
//! let tool = qb2olap::Qb2Olap::new(cube.endpoint.clone());
//! let server = qb2olap_server::start(tool, qb2olap_server::ServerConfig::default()).unwrap();
//! println!("serving on http://{}", server.addr());
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod pool;
mod routes;

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use obs::MetricsRegistry;
use parking_lot::RwLock;
use qb2olap::Qb2Olap;
use qb4olap::CubeSchema;
use rdf::Iri;

use http::{ReadError, ReadLimits, Response};
use pool::WorkerPool;

/// The response header carrying the epoch of the snapshot (or store) a
/// response was computed against.
pub const EPOCH_HEADER: &str = "X-Qb2olap-Epoch";

/// Server tuning knobs. `Default` is sized for tests and demos; a real
/// deployment mostly raises `workers` and `queue_capacity`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (read it back via
    /// [`QbServer::addr`]).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker; beyond it the
    /// accept loop answers `429`. `0` admits only when a worker is idle.
    pub queue_capacity: usize,
    /// Deadline per request; work that finishes later is reported as `408`.
    pub request_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub keepalive_idle: Duration,
    /// Cap on a request body (`413` beyond it).
    pub max_body_bytes: usize,
    /// Cap on the request line + headers (`431` beyond it).
    pub max_head_bytes: usize,
    /// The dataset served when a request does not name one; `None` falls
    /// back to the endpoint's single enriched cube.
    pub default_dataset: Option<Iri>,
    /// Honor the `X-Qb2olap-Test-Sleep-Ms` header (tests only — simulates
    /// slow handlers for deadline/saturation coverage).
    pub debug_delay_header: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(10),
            keepalive_idle: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            max_head_bytes: 16 << 10,
            default_dataset: None,
            debug_delay_header: false,
        }
    }
}

/// Shared server state: the tool, the config, the per-dataset schema cache
/// and the metrics registry (the catalog's, so `server.*` series land next
/// to `catalog.*` and `ql.*` in one `/metrics` snapshot).
pub struct ServerState {
    /// The shared QB2OLAP tool.
    pub tool: Qb2Olap,
    /// The server configuration.
    pub config: ServerConfig,
    /// Cached QB4OLAP schemas, discovered once per dataset.
    pub schemas: RwLock<BTreeMap<Iri, CubeSchema>>,
    /// The shared metrics registry.
    pub metrics: Arc<MetricsRegistry>,
    /// Set during shutdown: keep-alive loops close after their current
    /// response instead of waiting for another request.
    stop: AtomicBool,
}

/// A running server. Dropping it (or calling [`QbServer::shutdown`]) stops
/// accepting, drains queued and in-flight requests, and joins every thread.
pub struct QbServer {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

/// Starts a server over `tool`, returning once the listener is bound and
/// the workers are running.
pub fn start(tool: Qb2Olap, config: ServerConfig) -> std::io::Result<QbServer> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics = tool.catalog().metrics().clone();
    let state = Arc::new(ServerState {
        tool,
        config,
        schemas: RwLock::new(BTreeMap::new()),
        metrics,
        stop: AtomicBool::new(false),
    });

    let handler = {
        let state = state.clone();
        Arc::new(move |stream: TcpStream| serve_connection(&state, stream))
    };
    let pool = WorkerPool::start(state.config.workers, state.config.queue_capacity, handler);

    // The accept loop gets a clone of the queue's sender half; the pool
    // itself stays here, whose `shutdown` must drop the *last* sender to
    // end the channel — which is why shutdown joins the accept thread
    // (dropping its dispatcher) before shutting the pool down.
    let accept = {
        let state = state.clone();
        let dispatcher = pool.dispatcher();
        std::thread::Builder::new()
            .name("qb2olap-accept".to_string())
            .spawn(move || accept_loop(&state, &listener, &dispatcher))?
    };

    Ok(QbServer {
        addr,
        state,
        accept: Some(accept),
        pool: Some(pool),
    })
}

fn accept_loop(state: &ServerState, listener: &TcpListener, dispatcher: &pool::Dispatcher) {
    loop {
        let accepted = listener.accept();
        if state.stop.load(Ordering::SeqCst) {
            return; // the wake-up connection from shutdown() lands here
        }
        let Ok((stream, _peer)) = accepted else {
            continue;
        };
        state.metrics.counter("server.connections").add(1);
        if let Err(mut refused) = dispatcher.try_dispatch(stream) {
            // Every worker busy and the queue full: refuse explicitly
            // instead of queueing without bound.
            state.metrics.counter("server.rejected.saturated").add(1);
            let response = Response::error(429, "server saturated: try again");
            let _ = response.write_to(&mut refused, false);
        }
    }
}

impl QbServer {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The base URL (`http://host:port`).
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// A point-in-time snapshot of every metric, `server.*` included.
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        self.state.metrics.snapshot()
    }

    /// Stops accepting, drains queued + in-flight requests, joins all
    /// threads. Idle keep-alive connections close within the configured
    /// `keepalive_idle`.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.accept.is_none() && self.pool.is_none() {
            return;
        }
        self.state.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

impl Drop for QbServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Serves one connection for its whole keep-alive lifetime.
fn serve_connection(state: &ServerState, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = &stream;
    let limits = ReadLimits {
        max_head_bytes: state.config.max_head_bytes,
        max_body_bytes: state.config.max_body_bytes,
    };

    loop {
        // One read timeout covers both keep-alive idleness (before the
        // first byte — close silently) and a stalled request (after it —
        // answer 408).
        let _ = stream.set_read_timeout(http::effective_timeout(state.config.keepalive_idle));
        let request = match http::read_request(&mut reader, limits) {
            Ok(request) => request,
            Err(error) => {
                if let Some(response) = response_for_read_error(state, &error) {
                    record_status(state, response.status);
                    let _ = response.write_to(&mut write_half, false);
                }
                return;
            }
        };

        let started = Instant::now();
        let mut response = routes::handle(state, &request);
        if started.elapsed() > state.config.request_timeout {
            state.metrics.counter("server.timeouts").add(1);
            response = Response::error(
                408,
                &format!(
                    "request exceeded the {:?} deadline",
                    state.config.request_timeout
                ),
            );
        }
        record_status(state, response.status);

        let keep_alive = request.keep_alive && !state.stop.load(Ordering::SeqCst);
        if response.write_to(&mut write_half, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn record_status(state: &ServerState, status: u16) {
    state
        .metrics
        .counter(&format!("server.responses.{status}"))
        .add(1);
}

/// Maps a read failure to its response; `None` closes silently (clean EOF
/// or an idle keep-alive timeout — normal connection lifecycle, not an
/// error the client needs told about).
fn response_for_read_error(state: &ServerState, error: &ReadError) -> Option<Response> {
    match error {
        ReadError::ClosedIdle | ReadError::TimedOutIdle | ReadError::Io(_) => None,
        ReadError::TimedOutMidRequest => {
            state.metrics.counter("server.timeouts").add(1);
            Some(Response::error(408, "timed out reading the request"))
        }
        ReadError::Malformed(detail) => Some(Response::error(400, detail)),
        ReadError::BodyTooLarge { declared, limit } => Some(Response::error(
            413,
            &format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
        )),
        ReadError::HeadersTooLarge { limit } => Some(Response::error(
            431,
            &format!("request head exceeds the {limit}-byte limit"),
        )),
        ReadError::MethodNotAllowed(method) => Some(Response::error(
            405,
            &format!("method {method} not supported; use GET or POST"),
        )),
    }
}

// Re-exported for integration tests and loadgen: the canonical wire
// serializers — call them on library-side results to assert bit-identity
// with what the server sent.
pub use json::{cube_to_json, solutions_to_json};
pub use routes::handle as handle_request;

#[doc(hidden)]
pub use http::{percent_encode, Request as HttpRequest};
