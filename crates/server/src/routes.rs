//! Route dispatch: maps parsed requests onto the QB2OLAP modules.
//!
//! Every query route follows the same shape: resolve the dataset, fetch
//! its cached [`CubeSchema`], open the module *per request* over the
//! shared endpoint + catalog (cheap — no SPARQL round-trips thanks to
//! [`ql::QueryingModule::with_schema_and_catalog`]), pin a
//! [`cubestore::CubeSnapshot`] (~hundreds of nanoseconds, never waits on
//! a background fold), execute against the pin, serialize with the
//! canonical serializers in [`crate::json`]. Engine errors surface as
//! `400` with the engine's message verbatim in `{"error": ...}` — the
//! same string a library caller would get from the `Err`.

use std::time::Instant;

use crate::http::{Request, Response};
use crate::json::{cube_to_json, solutions_to_json};
use crate::{ServerState, EPOCH_HEADER};
use explorer::CubeExplorer;
use ql::QueryingModule;
use rdf::Iri;
use sparql::Endpoint;

/// Handles one request end to end, recording per-endpoint counters and
/// latency histograms on the shared registry.
pub fn handle(state: &ServerState, request: &Request) -> Response {
    let started = Instant::now();
    state.metrics.counter("server.requests").add(1);

    // Test hook: simulate a slow handler. Only honored when the config
    // opts in — production servers ignore the header entirely.
    if state.config.debug_delay_header {
        if let Some(ms) = request
            .header("x-qb2olap-test-sleep-ms")
            .and_then(|v| v.parse::<u64>().ok())
        {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    let response = dispatch(state, request);

    let key = endpoint_key(&request.path);
    state.metrics.counter(&format!("server.request.{key}")).add(1);
    state
        .metrics
        .histogram(&format!("server.latency_ns.{key}"))
        .record_duration(started.elapsed());
    response
}

/// The metric suffix for a path (`/explore/members` → `explore`).
fn endpoint_key(path: &str) -> &'static str {
    match path.split('/').nth(1).unwrap_or("") {
        "health" => "health",
        "datasets" => "datasets",
        "ql" => "ql",
        "sparql" => "sparql",
        "explain" => "explain",
        "explore" => "explore",
        "metrics" => "metrics",
        _ => "other",
    }
}

fn dispatch(state: &ServerState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        (_, "/health") => Response::text("ok\n"),
        ("GET", "/datasets") => datasets(state),
        (_, "/ql") => ql_route(state, request),
        (_, "/sparql") => sparql_route(state, request),
        (_, "/explain") => explain_route(state, request),
        ("GET", "/explore/schema") => explore(state, request, ExploreView::Schema),
        ("GET", "/explore/summary") => explore(state, request, ExploreView::Summary),
        ("GET", "/explore/members") => explore(state, request, ExploreView::Members),
        ("GET", "/metrics") => metrics_route(state, request),
        _ => Response::error(404, &format!("no such endpoint: {}", request.path)),
    }
}

/// The query text for `/ql` and `/explain`: POST body, or the `q`
/// query-string parameter.
fn query_text(request: &Request, param: &str) -> Result<String, Response> {
    if !request.body.is_empty() {
        return Ok(request.body_text());
    }
    if let Some(text) = request.query_param(param) {
        if !text.trim().is_empty() {
            return Ok(text);
        }
    }
    Err(Response::error(
        400,
        &format!("missing query: POST it as the request body or pass ?{param}="),
    ))
}

/// Resolves which dataset a request addresses: explicit `?dataset=`, the
/// server's configured default, else the single enriched cube on the
/// endpoint (ambiguity and absence are client errors, not guesses).
fn resolve_dataset(state: &ServerState, request: &Request) -> Result<Iri, Response> {
    if let Some(dataset) = request.query_param("dataset") {
        return Ok(Iri::new(dataset));
    }
    if let Some(dataset) = &state.config.default_dataset {
        return Ok(dataset.clone());
    }
    let cubes = explorer::list_cubes(state.tool.endpoint())
        .map_err(|e| Response::error(500, &e.to_string()))?;
    let enriched: Vec<_> = cubes.iter().filter(|c| c.enriched).collect();
    match enriched.as_slice() {
        [only] => Ok(only.dataset.clone()),
        [] => Err(Response::error(
            404,
            "no enriched cube on the endpoint; pass ?dataset=<iri>",
        )),
        _ => Err(Response::error(
            400,
            "multiple enriched cubes on the endpoint; pass ?dataset=<iri>",
        )),
    }
}

/// The cached QB4OLAP schema of a dataset, discovered once per server
/// lifetime (re-enrichment under a running server needs a restart or an
/// explicit `?dataset=` on a fresh IRI).
fn schema_for(state: &ServerState, dataset: &Iri) -> Result<qb4olap::CubeSchema, Response> {
    if let Some(schema) = state.schemas.read().get(dataset) {
        return Ok(schema.clone());
    }
    let schema = qb4olap::schema_from_endpoint(state.tool.endpoint(), dataset)
        .map_err(|e| Response::error(400, &e.to_string()))?;
    state
        .schemas
        .write()
        .entry(dataset.clone())
        .or_insert_with(|| schema.clone());
    Ok(schema)
}

fn querying_module<'t>(
    state: &'t ServerState,
    request: &Request,
) -> Result<QueryingModule<'t>, Response> {
    let dataset = resolve_dataset(state, request)?;
    let schema = schema_for(state, &dataset)?;
    Ok(QueryingModule::with_schema_and_catalog(
        state.tool.endpoint(),
        schema,
        state.tool.catalog().clone(),
    ))
}

fn ql_route(state: &ServerState, request: &Request) -> Response {
    let text = match query_text(request, "q") {
        Ok(text) => text,
        Err(response) => return response,
    };
    let module = match querying_module(state, request) {
        Ok(module) => module,
        Err(response) => return response,
    };
    // Pin first, then prepare: the response is computed entirely against
    // this snapshot, bit-identical to a library call on the same pin even
    // while a background fold replaces the base underneath.
    let snapshot = match module.snapshot() {
        Ok(snapshot) => snapshot,
        Err(e) => return Response::error(500, &e.to_string()),
    };
    let prepared = match module.prepare(&text) {
        Ok(prepared) => prepared,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    match module.execute_on_snapshot(&prepared, &snapshot) {
        Ok(cube) => Response::json(cube_to_json(&cube))
            .with_header(EPOCH_HEADER, snapshot.epoch().to_string()),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

fn sparql_route(state: &ServerState, request: &Request) -> Response {
    let text = if !request.body.is_empty() {
        request.body_text()
    } else {
        match request.query_param("query") {
            Some(text) if !text.trim().is_empty() => text,
            _ => {
                return Response::error(
                    400,
                    "missing query: POST it as the request body or pass ?query=",
                )
            }
        }
    };
    let endpoint = state.tool.endpoint();
    let epoch = endpoint.epoch();
    match endpoint.select(&text) {
        Ok(solutions) => Response::json(solutions_to_json(&solutions))
            .with_header(EPOCH_HEADER, epoch.to_string()),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

fn explain_route(state: &ServerState, request: &Request) -> Response {
    let text = match query_text(request, "q") {
        Ok(text) => text,
        Err(response) => return response,
    };
    let module = match querying_module(state, request) {
        Ok(module) => module,
        Err(response) => return response,
    };
    match module.explain(&text) {
        Ok(explained) => Response::text(explained),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

enum ExploreView {
    Schema,
    Summary,
    Members,
}

fn explore(state: &ServerState, request: &Request, view: ExploreView) -> Response {
    let dataset = match resolve_dataset(state, request) {
        Ok(dataset) => dataset,
        Err(response) => return response,
    };
    let schema = match schema_for(state, &dataset) {
        Ok(schema) => schema,
        Err(response) => return response,
    };
    let explorer = CubeExplorer::with_schema_and_catalog(
        state.tool.endpoint(),
        schema,
        state.tool.catalog().clone(),
    );
    match view {
        ExploreView::Schema => match explorer.schema_tree() {
            Ok(tree) => Response::text(tree),
            Err(e) => Response::error(400, &e.to_string()),
        },
        ExploreView::Summary => match explorer.summary() {
            Ok(summary) => {
                let mut out = String::from("{");
                out.push_str(&format!(
                    "\"dataset\":{},",
                    crate::http::json_string(summary.dataset.as_str())
                ));
                match &summary.label {
                    Some(label) => out.push_str(&format!(
                        "\"label\":{},",
                        crate::http::json_string(label)
                    )),
                    None => out.push_str("\"label\":null,"),
                }
                out.push_str(&format!(
                    "\"observations\":{},\"enriched\":{}}}\n",
                    summary.observations, summary.enriched
                ));
                Response::json(out)
            }
            Err(e) => Response::error(400, &e.to_string()),
        },
        ExploreView::Members => {
            let Some(level) = request.query_param("level") else {
                return Response::error(400, "missing ?level=<level iri>");
            };
            match explorer.members(&Iri::new(level.clone())) {
                Ok(members) => {
                    let mut out = String::from("{\"level\":");
                    out.push_str(&crate::http::json_string(&level));
                    out.push_str(",\"members\":[");
                    for (i, info) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"member\":{},\"label\":{}}}",
                            crate::http::json_string(&info.member.to_string()),
                            crate::http::json_string(&info.label),
                        ));
                    }
                    out.push_str("]}\n");
                    Response::json(out)
                }
                Err(e) => Response::error(400, &e.to_string()),
            }
        }
    }
}

fn datasets(state: &ServerState) -> Response {
    match explorer::list_cubes(state.tool.endpoint()) {
        Ok(cubes) => {
            let mut out = String::from("[");
            for (i, cube) in cubes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"dataset\":{},\"observations\":{},\"enriched\":{}}}",
                    crate::http::json_string(cube.dataset.as_str()),
                    cube.observations,
                    cube.enriched,
                ));
            }
            out.push_str("]\n");
            Response::json(out)
        }
        Err(e) => Response::error(500, &e.to_string()),
    }
}

fn metrics_route(state: &ServerState, request: &Request) -> Response {
    let snapshot = state.metrics.snapshot();
    let wants_json = request.query_param("format").as_deref() == Some("json")
        || request
            .header("accept")
            .is_some_and(|a| a.contains("application/json"));
    if wants_json {
        Response::json(snapshot.to_json())
    } else {
        Response::text(snapshot.render_text())
    }
}
