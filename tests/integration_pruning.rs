//! The zone-map pruning differential gate (EXPERIMENTS.md §E17 support).
//!
//! Pruning must be invisible in results and visible only in the scan
//! counters: every query in the battery returns *bit-identical* cubes with
//! pruning on and off, at one worker and at several, while the counters
//! stay monotone (`segments_pruned + segments_dead <= segments_total`,
//! pruned scans never read more rows than unpruned ones) and collapse to
//! zero when pruning is disabled. The battery runs on the time-ordered
//! generator layout, where a leaf-month dice provably skips whole
//! segments.
//!
//! These tests drive the switch through `ExecOptions`, so they hold under
//! any environment; the process-wide `QB2OLAP_NO_PRUNE` knob has its own
//! test below, and ci.sh additionally reruns the qlsmith campaign and this
//! suite with the knob set.

use std::collections::BTreeMap;

use cubestore::{
    execute_with_options, CubeQuery, ExecOptions, MemberFilter, MemberPredicate, MeasureFilter,
};
use qb2olap::{demo, ExecutionBackend, Qb2Olap};
use rdf::vocab::{demo_schema, rdfs, sdmx_dimension};
use sparql::ast::CmpOp;

/// A dice comparing a level attribute's string form with a constant.
fn attribute_dice(dimension: rdf::Iri, level: rdf::Iri, attribute: rdf::Iri, value: &str) -> MemberFilter {
    MemberFilter::Compare {
        dimension,
        level,
        attribute,
        predicate: MemberPredicate::Str {
            op: CmpOp::Eq,
            value: value.to_string(),
        },
    }
}

/// The query battery: full scans, clustered and unclustered dices, slices,
/// roll-ups and a HAVING filter — enough shapes to cover every branch of
/// the segment-pruning decision (`segment_prunable`).
fn query_battery() -> Vec<(&'static str, CubeQuery)> {
    let time_dim = demo_schema::time_dim();
    let month = sdmx_dimension::ref_period();
    let year = demo_schema::year();
    let citizenship = demo_schema::citizenship_dim();
    let continent = demo_schema::continent();
    vec![
        ("bottom-level cube", CubeQuery::default()),
        (
            "full rollup, no dice",
            CubeQuery {
                rollups: BTreeMap::from([
                    (citizenship.clone(), continent.clone()),
                    (time_dim.clone(), year.clone()),
                ]),
                ..CubeQuery::default()
            },
        ),
        (
            "leaf month dice (clustered)",
            CubeQuery {
                member_filters: vec![attribute_dice(
                    time_dim.clone(),
                    month.clone(),
                    rdfs::label(),
                    "2013-01",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "mid-level year dice",
            CubeQuery {
                rollups: BTreeMap::from([(time_dim.clone(), year.clone())]),
                member_filters: vec![attribute_dice(time_dim.clone(), year, rdfs::label(), "2014")],
                ..CubeQuery::default()
            },
        ),
        (
            "continent dice (unclustered)",
            CubeQuery {
                rollups: BTreeMap::from([(citizenship.clone(), continent.clone())]),
                member_filters: vec![attribute_dice(
                    citizenship,
                    continent,
                    demo_schema::continent_name(),
                    "Africa",
                )],
                ..CubeQuery::default()
            },
        ),
        (
            "slice + leaf dice + having",
            CubeQuery {
                slices: vec![demo_schema::term("sexDim"), demo_schema::term("ageDim")],
                member_filters: vec![attribute_dice(
                    time_dim,
                    month,
                    rdfs::label(),
                    "2013-02",
                )],
                measure_filters: vec![MeasureFilter::Compare {
                    measure: rdf::vocab::sdmx_measure::obs_value(),
                    op: CmpOp::Gt,
                    value: rdf::Term::Literal(rdf::Literal::integer(0)),
                }],
                ..CubeQuery::default()
            },
        ),
    ]
}

#[test]
fn battery_is_bit_identical_with_pruning_on_and_off_at_any_worker_count() {
    // 12k time-ordered observations ≈ 3 segments, month "2013-01" fully
    // inside segment 0.
    let config = datagen::EurostatConfig {
        observations: 12_000,
        time_ordered: true,
        ..Default::default()
    };
    let demo = demo::setup_demo_cube(&config).unwrap();
    let tool = Qb2Olap::new(demo.endpoint.clone());
    let querying = tool.querying(&demo.dataset).unwrap();
    let cube = querying.materialize().unwrap();
    cube.verify_zone_invariants().unwrap();
    let live_rows = cube.live_row_count() as u64;

    for (name, query) in query_battery() {
        let (baseline, unpruned) = execute_with_options(
            &cube,
            &query,
            ExecOptions {
                threads: 1,
                prune: false,
            },
        )
        .unwrap_or_else(|e| panic!("'{name}' failed unpruned: {e}"));
        assert_eq!(unpruned.segments_pruned, 0, "'{name}': pruning was disabled");
        assert_eq!(unpruned.rows_scanned, live_rows, "'{name}': unpruned scans all live rows");

        for threads in [1usize, 4] {
            for prune in [false, true] {
                let (output, stats) =
                    execute_with_options(&cube, &query, ExecOptions { threads, prune })
                        .unwrap_or_else(|e| {
                            panic!("'{name}' failed at {threads} threads, prune={prune}: {e}")
                        });
                assert_eq!(
                    output, baseline,
                    "'{name}' diverges at {threads} threads, prune={prune}"
                );
                // Monotone sanity on the segment counters.
                assert!(
                    stats.segments_pruned + stats.segments_dead <= stats.segments_total,
                    "'{name}': pruned {} + dead {} > total {}",
                    stats.segments_pruned,
                    stats.segments_dead,
                    stats.segments_total
                );
                assert!(
                    stats.rows_scanned <= unpruned.rows_scanned,
                    "'{name}': pruning increased rows scanned"
                );
                if !prune {
                    assert_eq!(stats.segments_pruned, 0, "'{name}': prune=false still pruned");
                }
            }
        }
    }

    // The clustered leaf dice actually exercises the pruner: on the
    // time-ordered layout the first month lives entirely in segment 0, so
    // the other segments are skipped and the scan touches a fraction of
    // the live rows.
    let (_, query) = query_battery().swap_remove(2);
    let (_, stats) = execute_with_options(
        &cube,
        &query,
        ExecOptions {
            threads: 1,
            prune: true,
        },
    )
    .unwrap();
    assert!(stats.segments_total >= 3, "expected a multi-segment cube");
    assert!(
        stats.segments_pruned >= stats.segments_total - 1,
        "leaf dice pruned {} of {} segments",
        stats.segments_pruned,
        stats.segments_total
    );
    assert!(
        stats.rows_scanned < live_rows / 2,
        "leaf dice scanned {} of {live_rows} live rows",
        stats.rows_scanned
    );

    // A full-rollup query with no dice prunes nothing.
    let (_, query) = query_battery().swap_remove(1);
    let (_, stats) = execute_with_options(
        &cube,
        &query,
        ExecOptions {
            threads: 1,
            prune: true,
        },
    )
    .unwrap();
    assert_eq!(stats.segments_pruned, 0, "nothing to prune without a dice");
}

/// The process-wide kill switch: `QB2OLAP_NO_PRUNE` turns pruning off for
/// every execution that does not pass explicit options — and doing so must
/// not change a single cell of the QL workload. The QL layer reaches the
/// scan through `ExecOptions::with_threads`, which reads the knob.
///
/// This is the only test in the binary that touches the environment; the
/// battery above uses explicit `ExecOptions` precisely so it cannot race
/// with this one.
#[test]
fn the_no_prune_knob_is_invisible_in_ql_results() {
    let saved = std::env::var_os("QB2OLAP_NO_PRUNE");
    std::env::remove_var("QB2OLAP_NO_PRUNE");
    assert!(cubestore::pruning_enabled());

    let demo = demo::setup_demo_cube(&datagen::EurostatConfig {
        observations: 6_000,
        time_ordered: true,
        ..Default::default()
    })
    .unwrap();
    let tool = Qb2Olap::new(demo.endpoint.clone());
    let querying = tool.querying(&demo.dataset).unwrap();

    let mut workload: Vec<(String, String)> = datagen::workload::bench_queries()
        .into_iter()
        .map(|(name, text)| (name.to_string(), text))
        .collect();
    workload.extend(datagen::workload::generated_queries(17, 12));

    let run_all = || -> Vec<qb2olap::ResultCube> {
        workload
            .iter()
            .map(|(name, text)| {
                let prepared = querying
                    .prepare(text)
                    .unwrap_or_else(|e| panic!("'{name}' failed to prepare: {e}"));
                querying
                    .execute(&prepared, ExecutionBackend::Columnar)
                    .unwrap_or_else(|e| panic!("'{name}' failed on the columnar backend: {e}"))
            })
            .collect()
    };

    let pruned = run_all();
    std::env::set_var("QB2OLAP_NO_PRUNE", "1");
    assert!(!cubestore::pruning_enabled());
    let unpruned = run_all();
    // `0` and the empty string mean "leave pruning on".
    std::env::set_var("QB2OLAP_NO_PRUNE", "0");
    assert!(cubestore::pruning_enabled());
    std::env::set_var("QB2OLAP_NO_PRUNE", "");
    assert!(cubestore::pruning_enabled());
    match saved {
        Some(value) => std::env::set_var("QB2OLAP_NO_PRUNE", value),
        None => std::env::remove_var("QB2OLAP_NO_PRUNE"),
    }

    for (((name, _), with), without) in workload.iter().zip(&pruned).zip(&unpruned) {
        assert_eq!(
            with, without,
            "'{name}' changed under QB2OLAP_NO_PRUNE=1"
        );
    }
}
