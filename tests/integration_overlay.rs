//! The overlay / background-fold consistency gates (ISSUE 9, ARCHITECTURE.md
//! §"Overlay & background fold").
//!
//! Snapshot serving promises two things at once: **reads never wait on
//! maintenance** (appliable deltas accrete into an overlay inline,
//! structural changes fold on a background thread while the current pin
//! keeps serving) and **every pin is bit-identical** to a cube built from
//! scratch at the pin's epoch. These tests attack both promises:
//!
//! * a concurrency stress test races N readers against a mutating writer
//!   and the background fold threads, checking every pinned snapshot
//!   against a scratch-materialized oracle at exactly that epoch — a torn
//!   snapshot (base and overlay from different epochs) or a lost/duplicated
//!   row fails the run;
//! * a slow-endpoint regression test forces a structural rebuild that takes
//!   hundreds of milliseconds and asserts concurrent snapshot serving stays
//!   at pin cost throughout (the serve path may hold the slot lock only for
//!   pin/swap-sized sections);
//! * the `QB2OLAP_NO_OVERLAY` kill switch degrades snapshot serving to the
//!   blocking path — fresh, never overlaid, and still bit-identical.
//!
//! The tests serialize on one static mutex: the kill-switch test mutates
//! the process environment the other two read through `overlay_enabled`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use cubestore::{
    execute, execute_snapshot, CubeCatalog, CubeQuery, MaintenanceStrategy, MaterializedCube,
    QueryOutput,
};
use qb4olap::CubeSchema;
use qlsmith::fixture::{firi, fuzz_cube};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sparql::{Endpoint, LocalEndpoint, Query, QueryResults, SparqlError};

/// Serializes the tests in this binary: the kill-switch test flips
/// `QB2OLAP_NO_OVERLAY`, which the others read on every `serve_snapshot`.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The query battery every pin is checked with: the bottom-level cube and a
/// two-dimension roll-up (the merged overlay must extend roll-up maps, not
/// just raw columns).
fn battery() -> Vec<CubeQuery> {
    vec![
        CubeQuery::default(),
        CubeQuery {
            rollups: BTreeMap::from([
                (firi("dim/geo"), firi("lv/country")),
                (firi("dim/time"), firi("lv/quarter")),
            ]),
            ..CubeQuery::default()
        },
    ]
}

/// The oracle: a scratch materialization of the endpoint's *current* state,
/// run through the battery. Callers must guarantee the store does not
/// mutate while this runs (the writer thread is the sole mutator and calls
/// this between its own mutations).
fn scratch_oracle(endpoint: &dyn Endpoint, schema: &CubeSchema) -> Vec<QueryOutput> {
    let scratch = MaterializedCube::from_endpoint(endpoint, schema).expect("scratch build");
    battery()
        .iter()
        .map(|q| execute(&scratch, q).expect("scratch execute"))
        .collect()
}

#[test]
fn concurrent_readers_match_the_scratch_oracle_at_every_pinned_epoch() {
    let _env = env_guard();
    const READERS: usize = 4;
    const WRITER_STEPS: usize = 48;

    let mut cube = fuzz_cube();
    cube.endpoint.enable_change_tracking();
    let schema = cube.schema.clone();
    let endpoint = cube.endpoint.clone();
    let catalog = CubeCatalog::new();

    // Every epoch the writer produces maps to the battery outputs of a
    // scratch cube at exactly that epoch. Readers spin until the entry for
    // their pinned epoch appears (the writer records it right after the
    // mutation, but a reader can pin the new epoch first).
    let expected: Mutex<HashMap<u64, Vec<QueryOutput>>> = Mutex::new(HashMap::new());
    expected
        .lock()
        .unwrap()
        .insert(endpoint.epoch(), scratch_oracle(&endpoint, &schema));

    let first = catalog.serve_snapshot(&endpoint, &schema).expect("first build");
    first.verify_consistent().expect("first pin");
    assert!(!first.is_overlaid(), "a fresh build has nothing to overlay");

    let done = AtomicBool::new(false);
    let pins = AtomicUsize::new(0);
    let overlaid_pins = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let expected = &expected;
        let done = &done;
        let pins = &pins;
        let overlaid_pins = &overlaid_pins;
        let catalog = &catalog;
        let schema = &schema;

        // The writer: appends (overlay-appliable), removals (tombstone
        // deltas) and ragged-link toggles (delta refusals that force
        // background rebuilds), each followed by its oracle entry.
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x0E11A);
            for step in 0..WRITER_STEPS {
                match step % 8 {
                    6 => cube.toggle_ragged_link(),
                    7 => {
                        cube.remove_observation(&mut rng);
                    }
                    _ => cube.append_observation(&mut rng),
                }
                let epoch = cube.endpoint.epoch();
                let outputs = scratch_oracle(&cube.endpoint, schema);
                expected.lock().unwrap().insert(epoch, outputs);
                std::thread::sleep(Duration::from_millis(1));
            }
            done.store(true, Ordering::SeqCst);
        });

        for _ in 0..READERS {
            let endpoint = endpoint.clone();
            scope.spawn(move || {
                let battery = battery();
                let check_pin = || {
                    let snapshot = catalog
                        .serve_snapshot(&endpoint, schema)
                        .expect("serve_snapshot");
                    snapshot.verify_consistent().expect("pinned snapshot");
                    // Overlay bookkeeping is now checked (not saturating)
                    // subtraction: a mis-merged fold records an underflow
                    // that no live pin may ever carry.
                    if let Some(overlay) = snapshot.overlay() {
                        assert!(
                            overlay.bookkeeping_underflow().is_none(),
                            "live pin carries a bookkeeping underflow"
                        );
                    }
                    pins.fetch_add(1, Ordering::Relaxed);
                    if snapshot.is_overlaid() {
                        overlaid_pins.fetch_add(1, Ordering::Relaxed);
                    }
                    let epoch = snapshot.epoch();
                    let actual: Vec<QueryOutput> = battery
                        .iter()
                        .map(|q| execute_snapshot(&snapshot, q).expect("snapshot execute"))
                        .collect();
                    loop {
                        if let Some(outputs) = expected.lock().unwrap().get(&epoch) {
                            assert_eq!(
                                &actual, outputs,
                                "pinned snapshot diverged from the scratch oracle at epoch {epoch}"
                            );
                            break;
                        }
                        // The map is complete once the writer is done, so a
                        // missing entry then means the catalog served an
                        // epoch the store never had.
                        assert!(
                            !done.load(Ordering::SeqCst),
                            "pinned epoch {epoch} was never produced by the writer"
                        );
                        std::thread::yield_now();
                    }
                };
                while !done.load(Ordering::SeqCst) {
                    check_pin();
                }
                // One more pin after the writer stopped, so every reader
                // also checks a quiescent state.
                check_pin();
            });
        }
    });

    // Convergence: once maintenance drains, the pin is current and matches
    // the final oracle entry.
    for _ in 0..16 {
        catalog.wait_for_maintenance(&schema.dataset);
        let snapshot = catalog.serve_snapshot(&endpoint, &schema).expect("settle");
        if snapshot.epoch() == endpoint.epoch() && !catalog.maintenance_in_flight(&schema.dataset)
        {
            break;
        }
    }
    let settled = catalog.serve_snapshot(&endpoint, &schema).expect("settled");
    assert_eq!(settled.epoch(), endpoint.epoch(), "catalog settles at the store epoch");
    let final_outputs: Vec<QueryOutput> = battery()
        .iter()
        .map(|q| execute_snapshot(&settled, q).expect("settled execute"))
        .collect();
    assert_eq!(
        Some(&final_outputs),
        expected.lock().unwrap().get(&endpoint.epoch()),
        "settled snapshot matches the final oracle entry"
    );

    // The run must actually have exercised the machinery, not just hit.
    assert!(pins.load(Ordering::Relaxed) >= READERS * 2, "readers barely ran");
    assert!(
        overlaid_pins.load(Ordering::Relaxed) > 0,
        "no reader ever saw an overlaid pin"
    );
    let strategies: Vec<MaintenanceStrategy> = catalog
        .reports(&schema.dataset)
        .iter()
        .map(|r| r.strategy)
        .collect();
    assert!(
        strategies.contains(&MaintenanceStrategy::Overlay),
        "appends must accrete into overlays: {strategies:?}"
    );
    assert!(
        strategies.contains(&MaintenanceStrategy::Rebuild),
        "ragged-link toggles must force rebuilds: {strategies:?}"
    );
    let metrics = catalog.metrics().snapshot();
    assert!(metrics.counter("catalog.overlay.accretions") > 0);
    assert!(metrics.counter("catalog.overlay.folds_started") > 0);
    assert_eq!(
        metrics.counter("catalog.overlay.folds") + metrics.counter("catalog.overlay.fold_failures"),
        metrics.counter("catalog.overlay.folds_started"),
        "every fold must land or be counted as failed"
    );
    assert_eq!(metrics.counter("catalog.overlay.fold_failures"), 0);
}

/// A delegating endpoint whose query paths sleep: materializing through it
/// is slow, and so is the frozen handle it gives background folds — which
/// opens a wide window during which snapshot serving must stay at pin cost.
struct SlowEndpoint {
    inner: LocalEndpoint,
    delay: Duration,
}

impl Endpoint for SlowEndpoint {
    fn query(&self, sparql: &str) -> Result<QueryResults, SparqlError> {
        std::thread::sleep(self.delay);
        self.inner.query(sparql)
    }

    fn query_parsed(&self, query: &Query) -> Result<QueryResults, SparqlError> {
        std::thread::sleep(self.delay);
        self.inner.query_parsed(query)
    }

    fn insert_triples(&self, triples: &[rdf::Triple]) -> Result<usize, SparqlError> {
        self.inner.insert_triples(triples)
    }

    fn insert_triples_named(
        &self,
        graph: &rdf::Iri,
        triples: &[rdf::Triple],
    ) -> Result<usize, SparqlError> {
        self.inner.insert_triples_named(graph, triples)
    }

    fn triple_count(&self) -> usize {
        self.inner.triple_count()
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn deltas_since(&self, since: u64) -> Option<Vec<rdf::StoreDelta>> {
        self.inner.deltas_since(since)
    }

    fn enable_change_tracking(&self) {
        self.inner.enable_change_tracking();
    }

    fn background_handle(&self) -> Option<Arc<dyn Endpoint + Send + Sync>> {
        Some(Arc::new(SlowEndpoint {
            inner: LocalEndpoint::with_store(self.inner.store().snapshot()),
            delay: self.delay,
        }))
    }
}

#[test]
fn a_slow_background_fold_never_delays_snapshot_serving() {
    let _env = env_guard();
    let mut cube = fuzz_cube();
    cube.endpoint.enable_change_tracking();
    let schema = cube.schema.clone();
    let slow = SlowEndpoint {
        inner: cube.endpoint.clone(),
        delay: Duration::from_millis(40),
    };
    let catalog = CubeCatalog::new();

    // First build goes through the slow path (nothing to serve yet), and
    // its battery outputs are the stale oracle for the fold window below.
    catalog.serve_snapshot(&slow, &schema).expect("first build");
    let stale_epoch = slow.epoch();
    let stale_outputs = scratch_oracle(&cube.endpoint, &schema);

    // A structural change: the rollup-link delta is refused, so the next
    // snapshot serve spawns a background rebuild over the slow handle.
    cube.toggle_ragged_link();
    let started = Instant::now();
    let pin = catalog.serve_snapshot(&slow, &schema).expect("stale pin");
    let first_pin = started.elapsed();
    assert!(
        first_pin < Duration::from_millis(200),
        "the refusing serve must hand off to a background fold, not rebuild inline \
         (took {first_pin:?})"
    );
    assert_eq!(pin.epoch(), stale_epoch, "the pin is the stale entry");

    // While the fold grinds through its sleepy queries, every concurrent
    // serve must complete at pin cost and keep returning the consistent
    // stale state.
    let mut in_flight_pins = 0usize;
    let mut max_pin = Duration::ZERO;
    while catalog.maintenance_in_flight(&schema.dataset) && in_flight_pins < 10_000 {
        let t = Instant::now();
        let snapshot = catalog.serve_snapshot(&slow, &schema).expect("in-flight pin");
        let elapsed = t.elapsed();
        max_pin = max_pin.max(elapsed);
        snapshot.verify_consistent().expect("in-flight pin");
        assert_eq!(snapshot.epoch(), stale_epoch, "stale-but-consistent during the fold");
        let outputs: Vec<QueryOutput> = battery()
            .iter()
            .map(|q| execute_snapshot(&snapshot, q).expect("in-flight execute"))
            .collect();
        assert_eq!(outputs, stale_outputs, "in-flight pins serve the stale oracle");
        in_flight_pins += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
    catalog.wait_for_maintenance(&schema.dataset);

    let report = catalog.last_report(&schema.dataset).expect("fold report");
    assert_eq!(report.strategy, MaintenanceStrategy::Rebuild);
    let overlap = report.overlap.expect("background folds record their overlap window");
    assert!(
        overlap >= slow.delay,
        "the fold must actually have gone through the slow handle ({overlap:?})"
    );
    assert!(
        max_pin < Duration::from_millis(200),
        "serving blocked on the fold: slowest pin {max_pin:?} during a {overlap:?} fold"
    );
    if in_flight_pins > 0 {
        assert!(
            in_flight_pins >= 3,
            "expected several pin-cost serves inside the fold window, got {in_flight_pins}"
        );
    }

    // The fold lands the structural change; results match scratch.
    let settled = catalog.serve_snapshot(&slow, &schema).expect("settled");
    assert_eq!(settled.epoch(), slow.epoch());
    assert!(!settled.is_overlaid(), "a fold publishes a clean base");
    let outputs: Vec<QueryOutput> = battery()
        .iter()
        .map(|q| execute_snapshot(&settled, q).expect("settled execute"))
        .collect();
    assert_eq!(outputs, scratch_oracle(&cube.endpoint, &schema));
}

/// The process-wide kill switch: `QB2OLAP_NO_OVERLAY` routes every
/// `serve_snapshot` through the blocking path — pins come back fresh and
/// never overlaid, and not a single cell may change.
#[test]
fn the_no_overlay_knob_degrades_snapshot_serving_to_blocking() {
    let _env = env_guard();
    let saved = std::env::var_os("QB2OLAP_NO_OVERLAY");
    std::env::remove_var("QB2OLAP_NO_OVERLAY");
    assert!(cubestore::overlay_enabled());

    let mut cube = fuzz_cube();
    cube.endpoint.enable_change_tracking();
    let schema = cube.schema.clone();
    let catalog = CubeCatalog::new();
    let mut rng = StdRng::seed_from_u64(0x0FF0);

    // Overlay on: an append accretes instead of folding.
    catalog.serve_snapshot(&cube.endpoint, &schema).expect("first build");
    cube.append_observation(&mut rng);
    let overlaid = catalog.serve_snapshot(&cube.endpoint, &schema).expect("overlaid pin");
    assert!(overlaid.is_overlaid());
    assert_eq!(overlaid.epoch(), cube.endpoint.epoch());
    let on_outputs: Vec<QueryOutput> = battery()
        .iter()
        .map(|q| execute_snapshot(&overlaid, q).expect("overlaid execute"))
        .collect();
    assert_eq!(on_outputs, scratch_oracle(&cube.endpoint, &schema));

    // Knob set: the same call now takes the blocking path — a fresh,
    // clean-base pin via a delta fold, bit-identical all the same.
    std::env::set_var("QB2OLAP_NO_OVERLAY", "1");
    assert!(!cubestore::overlay_enabled());
    cube.append_observation(&mut rng);
    let blocking = catalog.serve_snapshot(&cube.endpoint, &schema).expect("blocking pin");
    assert!(!blocking.is_overlaid(), "the knob must fold instead of overlaying");
    assert_eq!(blocking.epoch(), cube.endpoint.epoch());
    assert_eq!(
        catalog.last_report(&schema.dataset).expect("report").strategy,
        MaintenanceStrategy::Delta,
        "the blocking path folds deltas into the base"
    );
    let off_outputs: Vec<QueryOutput> = battery()
        .iter()
        .map(|q| execute_snapshot(&blocking, q).expect("blocking execute"))
        .collect();
    assert_eq!(off_outputs, scratch_oracle(&cube.endpoint, &schema));

    // `0` and the empty string mean "leave the overlay on".
    std::env::set_var("QB2OLAP_NO_OVERLAY", "0");
    assert!(cubestore::overlay_enabled());
    std::env::set_var("QB2OLAP_NO_OVERLAY", "");
    assert!(cubestore::overlay_enabled());
    match saved {
        Some(value) => std::env::set_var("QB2OLAP_NO_OVERLAY", value),
        None => std::env::remove_var("QB2OLAP_NO_OVERLAY"),
    }
}
