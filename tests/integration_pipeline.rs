//! End-to-end integration test: Figure 1's architecture — one endpoint, three
//! modules — exercised from raw QB data to a result cube.

use qb2olap::{demo, Endpoint, Qb2Olap, SparqlVariant};
use rdf::vocab::{demo_schema, eurostat_property, qb4o};

#[test]
fn qb_data_to_result_cube() {
    // The QB dataset is loaded into the endpoint (demo starting state).
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(1_000));
    let observations_before = qb::count_observations(&endpoint, &data.dataset).unwrap();
    assert_eq!(observations_before, 1_000);

    // Before enrichment the Exploration and Querying modules refuse the cube.
    let tool = Qb2Olap::new(endpoint.clone());
    assert!(tool.explorer(&data.dataset).is_err());
    assert!(tool.querying(&data.dataset).is_err());

    // Enrichment module: the demo choices.
    let stats = demo::enrich_demo_cube(&endpoint, &data.dataset).unwrap();
    assert!(stats.schema_triples > 0);
    assert!(stats.instance_triples > 0);
    assert_eq!(stats.dimensions, 6);

    // The observations were NOT rewritten: QB4OLAP reuses data already
    // published in QB (a key design point of the vocabulary).
    let observations_after = qb::count_observations(&endpoint, &data.dataset).unwrap();
    assert_eq!(observations_after, observations_before);

    // Exploration module: the schema tree shows the paper's citizenship
    // hierarchy and the member clusters are consistent.
    let explorer = tool.explorer(&data.dataset).unwrap();
    let tree = explorer.schema_tree().unwrap();
    assert!(tree.contains("citizenshipDim"));
    assert!(tree.contains("level continent"));
    let clusters = explorer
        .cluster_by_level(&demo_schema::citizenship_dim())
        .unwrap();
    let countries = clusters.get(&eurostat_property::citizen()).unwrap().len();
    let continents = clusters.get(&demo_schema::continent()).unwrap().len();
    assert!(countries > continents, "{countries} countries vs {continents} continents");

    // Querying module: roll up to continents; the result has one cell per
    // continent actually present in the data and preserves the grand total.
    let querying = tool.querying(&data.dataset).unwrap();
    let (prepared, cube, _) = querying
        .run(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    assert!(!cube.is_empty());
    assert!(cube.len() >= continents, "at least one cell per continent");
    let grand_total: f64 = endpoint
        .select(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
             SELECT (SUM(?v) AS ?t) WHERE { ?o a qb:Observation ; sdmx-measure:obsValue ?v }",
        )
        .unwrap()
        .get(0, "t")
        .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
        .unwrap();
    assert!((cube.first_measure_total() - grand_total).abs() < 1e-6);

    // Both SPARQL variants agree.
    let direct = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let alternative = querying
        .execute(&prepared, SparqlVariant::Alternative)
        .unwrap();
    assert_eq!(direct, alternative);

    // The generated schema triples use the QB4OLAP vocabulary as in the
    // paper's Section II listing.
    assert!(endpoint
        .ask(&format!(
            "PREFIX qb4o: <{}> PREFIX qb: <http://purl.org/linked-data/cube#>
             ASK {{ ?dsd qb:component ?c . ?c qb4o:level <{}> ; qb4o:cardinality qb4o:ManyToOne }}",
            qb4o::NAMESPACE,
            eurostat_property::citizen().as_str()
        ))
        .unwrap());
}

#[test]
fn demo_cube_at_paper_scale_subset() {
    // A 5k-observation subset keeps the integration suite fast while still
    // exercising the same code paths as the 80k demo configuration
    // (EXPERIMENTS.md E7 reproduces the full 80k scale).
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(5_000)).unwrap();
    assert_eq!(cube.generated.observation_count, 5_000);
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let (_, result, _) = tool
        .querying(&cube.dataset)
        .unwrap()
        .run(&datagen::workload::by_political_organisation())
        .unwrap();
    assert!(!result.is_empty());
    // The destination axis collapsed to the political-organisation level:
    // at most two distinct coordinates (EU / EFTA) appear on it.
    let polorg_axis = result
        .axes
        .iter()
        .position(|a| a.level.as_str().ends_with("politicalOrg"))
        .expect("politicalOrg axis present");
    let distinct: std::collections::BTreeSet<_> = result
        .cells
        .iter()
        .map(|c| c.coordinates[polorg_axis].clone())
        .collect();
    assert!(distinct.len() <= 2, "{distinct:?}");
}
