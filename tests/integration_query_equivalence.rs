//! Cross-checks of the QL → SPARQL translation: the two generated variants,
//! the unoptimised vs simplified program, and an independent in-memory
//! aggregation must all agree (experiment E6 / E10 support).

use std::collections::BTreeMap;

use qb2olap::{demo, Endpoint, Qb2Olap, SparqlVariant};
use rdf::Term;

fn demo_tool(observations: usize) -> (Qb2Olap, rdf::Iri) {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(observations)).unwrap();
    (Qb2Olap::new(cube.endpoint.clone()), cube.dataset)
}

#[test]
fn all_workload_queries_have_equivalent_variants() {
    let (tool, dataset) = demo_tool(1_500);
    let querying = tool.querying(&dataset).unwrap();
    for (name, text) in datagen::workload::bench_queries() {
        let prepared = querying
            .prepare(&text)
            .unwrap_or_else(|e| panic!("{name} failed to prepare: {e}"));
        let direct = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
        let alternative = querying
            .execute(&prepared, SparqlVariant::Alternative)
            .unwrap();
        assert_eq!(direct, alternative, "variants disagree for '{name}'");
    }
}

#[test]
fn unoptimized_program_returns_the_same_cube() {
    let (tool, dataset) = demo_tool(1_000);
    let querying = tool.querying(&dataset).unwrap();
    let (_, optimised, _) = querying.run(&datagen::workload::mary_query()).unwrap();
    let (prepared, unoptimised, _) = querying
        .run(&datagen::workload::mary_query_unoptimized())
        .unwrap();
    assert!(prepared.report.fused_operations >= 2);
    assert!(prepared.report.slices_moved >= 1);
    assert_eq!(optimised, unoptimised);
}

#[test]
fn rollup_to_continent_matches_independent_aggregation() {
    let (tool, dataset) = demo_tool(1_200);
    let querying = tool.querying(&dataset).unwrap();

    // QB2OLAP's answer.
    let (_, cube, _) = querying
        .run(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();

    // Independent aggregation computed directly from the observation and
    // code-list triples, bypassing the QL/QB4OLAP machinery entirely.
    let endpoint = tool.endpoint();
    let rows = endpoint
        .select(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
             PREFIX property: <http://eurostat.linked-statistics.org/property#>
             PREFIX dic: <http://eurostat.linked-statistics.org/dic/>
             SELECT ?obs ?citizen ?v WHERE {
               ?obs a qb:Observation ; property:citizen ?citizen ; sdmx-measure:obsValue ?v .
             }",
        )
        .unwrap();
    let continent_of: BTreeMap<Term, Term> = endpoint
        .select(
            "PREFIX dic: <http://eurostat.linked-statistics.org/dic/>
             SELECT ?c ?cont WHERE { ?c <http://eurostat.linked-statistics.org/dic/continent> ?cont }",
        )
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| match (r.first().cloned().flatten(), r.get(1).cloned().flatten()) {
            (Some(c), Some(cont)) => Some((c, cont)),
            _ => None,
        })
        .collect();

    let mut expected: BTreeMap<Term, f64> = BTreeMap::new();
    for i in 0..rows.len() {
        let citizen = rows.get(i, "citizen").unwrap();
        let value = rows
            .get(i, "v")
            .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
            .unwrap();
        let continent = continent_of.get(citizen).expect("every country has a continent");
        *expected.entry(continent.clone()).or_default() += value;
    }

    // Group the QB2OLAP cube's cells by the continent coordinate (the cube
    // also keeps the other non-sliced dimensions, so cells must be summed).
    let continent_axis = cube
        .axes
        .iter()
        .position(|a| a.level == rdf::vocab::demo_schema::continent())
        .expect("continent axis present");
    let mut actual: BTreeMap<Term, f64> = BTreeMap::new();
    for cell in &cube.cells {
        let continent = cell.coordinates[continent_axis].clone();
        let value = cell.values[0]
            .as_ref()
            .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
            .unwrap_or(0.0);
        *actual.entry(continent).or_default() += value;
    }

    assert_eq!(expected.len(), actual.len());
    for (continent, total) in expected {
        let got = actual.get(&continent).copied().unwrap_or(f64::NAN);
        assert!(
            (got - total).abs() < 1e-6,
            "continent {continent}: expected {total}, got {got}"
        );
    }
}

#[test]
fn mary_query_only_returns_african_citizens_applying_in_france() {
    let (tool, dataset) = demo_tool(4_000);
    let querying = tool.querying(&dataset).unwrap();
    let (_, cube, _) = querying.run(&datagen::workload::mary_query()).unwrap();
    assert!(!cube.is_empty(), "the 4k sample contains matching observations");

    // Every cell's citizenship coordinate is the Africa continent member and
    // the destination coordinate is France.
    let continent_axis = cube
        .axes
        .iter()
        .position(|a| a.level == rdf::vocab::demo_schema::continent())
        .unwrap();
    let geo_axis = cube
        .axes
        .iter()
        .position(|a| a.level == rdf::vocab::eurostat_property::geo())
        .unwrap();
    for cell in &cube.cells {
        assert_eq!(
            cell.coordinates[continent_axis],
            datagen::eurostat::continent_member("Africa")
        );
        assert_eq!(cell.coordinates[geo_axis], datagen::eurostat::geo_member("FR"));
    }
}
