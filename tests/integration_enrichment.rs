//! Integration tests of the Enrichment module over the generated Eurostat
//! data: discovery quality, external (DBpedia) enrichment, quasi-FD
//! behaviour under noise, and QB validation of the input.

use enrichment::{EnrichmentConfig, EnrichmentSession};
use qb2olap::demo::demo_enrichment_config;
use rdf::vocab::{dbpedia, eurostat_property, sdmx_dimension};

#[test]
fn discovered_hierarchies_cover_all_demo_dimensions() {
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(800));
    let mut session =
        EnrichmentSession::start(&endpoint, &data.dataset, demo_enrichment_config()).unwrap();
    session.redefine().unwrap();

    // Citizenship, destination, time and age all expose roll-up candidates.
    for (level, property) in [
        (eurostat_property::citizen(), datagen::eurostat::continent_property()),
        (eurostat_property::geo(), datagen::eurostat::political_org_property()),
        (sdmx_dimension::ref_period(), datagen::eurostat::year_property()),
        (eurostat_property::age(), datagen::eurostat::age_group_property()),
    ] {
        let candidates = session.discover_candidates(&level).unwrap();
        assert!(
            candidates.level_candidate(&property).is_some(),
            "no candidate {property} for level {level}",
            property = property.as_str(),
            level = level.as_str()
        );
    }

    // The sex dimension has no object-valued functional property, so no
    // roll-up candidate is suggested (only label attributes).
    let sex = session.discover_candidates(&eurostat_property::sex()).unwrap();
    assert!(sex.levels.is_empty());
    assert!(!sex.attributes.is_empty());
}

#[test]
fn external_dbpedia_candidates_require_following_same_as() {
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(400));

    let mut with_external =
        EnrichmentSession::start(&endpoint, &data.dataset, EnrichmentConfig::default()).unwrap();
    with_external.redefine().unwrap();
    let candidates = with_external
        .discover_candidates(&eurostat_property::citizen())
        .unwrap();
    let government = candidates
        .level_candidate(&dbpedia::government_type())
        .expect("external candidate found when sameAs links are followed");
    assert!(government.profile.via_same_as);

    let mut without_external = EnrichmentSession::start(
        &endpoint,
        &data.dataset,
        EnrichmentConfig::default().without_external_sources(),
    )
    .unwrap();
    without_external.redefine().unwrap();
    let candidates = without_external
        .discover_candidates(&eurostat_property::citizen())
        .unwrap();
    assert!(candidates.level_candidate(&dbpedia::government_type()).is_none());
}

#[test]
fn external_government_type_level_can_be_added_and_queried() {
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(600));
    let mut session =
        EnrichmentSession::start(&endpoint, &data.dataset, demo_enrichment_config()).unwrap();
    session.redefine().unwrap();
    let candidates = session
        .discover_candidates(&eurostat_property::citizen())
        .unwrap();
    let government = candidates
        .level_candidate(&dbpedia::government_type())
        .unwrap()
        .clone();
    let level = session
        .add_level(&eurostat_property::citizen(), &government, "governmentType")
        .unwrap();
    session.load_into_endpoint().unwrap();

    // The new level's members come from the external dataset and are now
    // queryable through the roll-up machinery.
    let pairs = qb4olap::rollup_pairs(&endpoint, &eurostat_property::citizen(), &level).unwrap();
    assert!(!pairs.is_empty());
    assert!(pairs
        .iter()
        .all(|(_, parent)| parent.as_iri().map(|i| i.as_str().contains("dbpedia.org")).unwrap_or(false)));
}

#[test]
fn quasi_fd_threshold_trades_noise_for_recall() {
    let noisy = datagen::EurostatConfig {
        observations: 400,
        noise: datagen::NoiseConfig {
            missing_link_fraction: 0.1,
            conflicting_link_fraction: 0.1,
        },
        ..Default::default()
    };
    let (endpoint, data) = datagen::load_demo_endpoint(&noisy);

    let thresholds = [0.0, 0.05, 0.15, 0.3];
    let mut accepted = Vec::new();
    for threshold in thresholds {
        let config = EnrichmentConfig::default()
            .without_external_sources()
            .with_fd_error_threshold(threshold)
            .with_min_support(0.5);
        let mut session = EnrichmentSession::start(&endpoint, &data.dataset, config).unwrap();
        session.redefine().unwrap();
        let candidates = session
            .discover_candidates(&eurostat_property::citizen())
            .unwrap();
        accepted.push(
            candidates
                .level_candidate(&datagen::eurostat::continent_property())
                .is_some(),
        );
    }
    // Acceptance is monotone in the threshold and flips from rejected to
    // accepted somewhere in the sweep.
    assert!(!accepted[0], "strict FD must reject the noisy link");
    assert!(*accepted.last().unwrap(), "a lenient quasi-FD accepts it");
    for window in accepted.windows(2) {
        assert!(!window[0] || window[1], "acceptance must be monotone");
    }
}

#[test]
fn generated_qb_data_passes_validation() {
    let (endpoint, data) = datagen::load_demo_endpoint(&datagen::EurostatConfig::small(300));
    let dataset = qb::load_dataset(&endpoint, &data.dataset).unwrap();
    let report = qb::validate_dataset(&endpoint, &data.dataset, &dataset.structure).unwrap();
    assert!(
        report.is_valid(),
        "generated data violates QB constraints: {:?}",
        report.errors()
    );
}
