//! Differential tests between the two execution backends: every workload
//! query — the named bench queries plus a seeded randomly generated
//! workload — must return *identical* result cubes (same axes, same
//! measures, same canonically-ordered cells) from the SPARQL translation
//! and from the columnar cube engine, including on ragged hierarchies
//! where members are missing an ancestor at the roll-up target level —
//! and, since the cube catalog is live, after *any* interleaving of store
//! mutations (incremental delta refreshes and rebuild fallbacks alike).

use qb2olap::{demo, Endpoint, ExecutionBackend, Qb2Olap, SparqlVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf::vocab::{qb, rdf as rdfv, rdfs, sdmx_dimension, sdmx_measure, skos};
use rdf::{Iri, Literal, Term, Triple};

fn demo_tool(observations: usize) -> (Qb2Olap, Iri) {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(observations)).unwrap();
    (Qb2Olap::new(cube.endpoint.clone()), cube.dataset)
}

#[test]
fn bench_and_generated_workloads_agree_across_backends() {
    let (tool, dataset) = demo_tool(1_200);
    let querying = tool.querying(&dataset).unwrap();

    let mut workload: Vec<(String, String)> = datagen::workload::bench_queries()
        .into_iter()
        .map(|(name, text)| (name.to_string(), text))
        .collect();
    workload.extend(datagen::workload::generated_queries(42, 24));

    for (name, text) in &workload {
        let prepared = querying
            .prepare(text)
            .unwrap_or_else(|e| panic!("workload query '{name}' failed to prepare: {e}\n{text}"));
        let sparql_cube = querying
            .execute(&prepared, SparqlVariant::Direct)
            .unwrap_or_else(|e| panic!("SPARQL backend failed for '{name}': {e}"));
        let columnar_cube = querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap_or_else(|e| panic!("columnar backend failed for '{name}': {e}"));
        assert_eq!(
            sparql_cube, columnar_cube,
            "backends disagree for workload query '{name}':\n{text}"
        );
    }
}

/// Surgically removes the `skos:broader` links of one member, making the
/// hierarchy ragged at that member, and returns how many links were cut.
fn cut_broader_links(tool: &Qb2Olap, member: &rdf::Term) -> usize {
    let store = tool.endpoint().store();
    let links = store.triples_matching(Some(member), Some(&skos::broader()), None);
    for triple in &links {
        assert!(store.remove(triple));
    }
    links.len()
}

/// The observation nodes of the dataset, in a deterministic order.
fn observation_nodes(tool: &Qb2Olap, dataset: &Iri) -> Vec<Term> {
    tool.endpoint()
        .select(&format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT ?o WHERE {{ ?o a qb:Observation ; qb:dataSet <{}> }} ORDER BY ?o",
            dataset.as_str()
        ))
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| r.first().cloned().flatten())
        .collect()
}

/// Removes one observation *completely* as a single batched mutation (one
/// `StoreDelta`), the shape the catalog can absorb by tombstoning the row.
/// Returns how many triples went.
fn remove_observation(tool: &Qb2Olap, node: &Term) -> usize {
    let store = tool.endpoint().store();
    let triples = store.triples_matching(Some(node), None, None);
    assert!(!triples.is_empty(), "observation {node} has triples");
    store.remove_all(&triples)
}

#[test]
fn ragged_hierarchy_drops_members_identically_in_both_backends() {
    let (tool, dataset) = demo_tool(900);

    // Total over all observations, before making anything ragged.
    let sum_for = |filter: &str| -> f64 {
        tool.endpoint()
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
                 PREFIX property: <http://eurostat.linked-statistics.org/property#>
                 SELECT (SUM(?v) AS ?total) WHERE {{
                   ?o a qb:Observation ; sdmx-measure:obsValue ?v .
                   {filter}
                 }}"
            ))
            .unwrap()
            .get(0, "total")
            .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
            .unwrap_or(0.0)
    };
    let full_total = sum_for("");
    let syria_total = sum_for(&format!(
        "?o property:citizen <{}> .",
        datagen::eurostat::citizen_member("SY")
            .as_iri()
            .unwrap()
            .as_str()
    ));
    assert!(syria_total > 0.0, "the 900-row sample has Syrian applicants");

    // Make the citizenship hierarchy ragged at Syria (no continent), then
    // open a fresh querying module so both backends see the mutated store.
    assert!(cut_broader_links(&tool, &datagen::eurostat::citizen_member("SY")) > 0);
    let querying = tool.querying(&dataset).unwrap();

    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        sparql_cube, columnar_cube,
        "backends disagree on the ragged citizenship roll-up"
    );
    // Both drop exactly the observations of the now-ragged member.
    assert!(
        (sparql_cube.first_measure_total() - (full_total - syria_total)).abs() < 1e-6,
        "expected the roll-up to lose exactly Syria's total"
    );

    // A query that keeps citizenship at the bottom level still sees Syria.
    let prepared = querying
        .prepare(&datagen::workload::totals_by_citizenship())
        .unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(sparql_cube, columnar_cube);
    assert!((sparql_cube.first_measure_total() - full_total).abs() < 1e-6);
}

#[test]
fn ragged_middle_of_a_multi_level_rollup_is_pinned_in_both_backends() {
    let (tool, dataset) = demo_tool(700);

    // Cut the continent → citAll link of Africa: African citizens can then
    // reach `continent` but not `citAll`.
    assert!(cut_broader_links(&tool, &datagen::eurostat::continent_member("Africa")) > 0);
    let querying = tool.querying(&dataset).unwrap();

    let to_cit_all = "PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:citAll);
";
    let prepared = querying.prepare(to_cit_all).unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        sparql_cube, columnar_cube,
        "backends disagree when the middle of a two-step roll-up is ragged"
    );

    // Rolling up only to `continent` is unaffected by the missing top link.
    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    let direct = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(direct, columnar);
    assert!(direct
        .cells
        .iter()
        .any(|c| c.coordinates.contains(&datagen::eurostat::continent_member("Africa"))));
}

/// The mutation-parity gate: interleaves seeded random store mutations —
/// pure observation appends (the delta path), brand-new members with
/// roll-up links and labels, broader-link cuts and observation edits (the
/// rebuild fallback) — with the bench workload, asserting after every
/// round that the catalog-served columnar results stay cell-identical to a
/// fresh SPARQL evaluation and that the catalog-served explorer navigation
/// matches its SPARQL oracle. Stale or divergent cells anywhere fail here.
#[test]
fn interleaved_mutations_keep_catalog_and_sparql_in_lockstep() {
    let (tool, dataset) = demo_tool(800);
    let querying = tool.querying(&dataset).unwrap();
    querying.materialize().unwrap();
    let explorer = tool.explorer(&dataset).unwrap();

    let members_of = |level: &Iri| -> Vec<Term> {
        qb4olap::members_of_level(tool.endpoint(), level).unwrap()
    };
    let citizen_level = rdf::vocab::eurostat_property::citizen();
    let continent_level = rdf::vocab::demo_schema::continent();
    let pools: Vec<(Iri, Vec<Term>)> = [
        citizen_level.clone(),
        rdf::vocab::eurostat_property::geo(),
        sdmx_dimension::ref_period(),
        rdf::vocab::eurostat_property::age(),
        rdf::vocab::eurostat_property::sex(),
        rdf::vocab::eurostat_property::asyl_app(),
    ]
    .into_iter()
    .map(|level| {
        let members = members_of(&level);
        assert!(!members.is_empty(), "level <{}> has members", level.as_str());
        (level, members)
    })
    .collect();
    let continents = members_of(&continent_level);

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut next_obs = 0usize;
    let mut next_member = 0usize;

    // One complete observation over the given citizen member, the other
    // dimensions drawn from the existing member pools.
    let new_observation = |rng: &mut StdRng, citizen: Term, serial: usize| -> Vec<Triple> {
        let node = Term::iri(format!("http://example.org/mutation/obs{serial}"));
        let mut batch = vec![
            Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(node.clone(), qb::data_set(), Term::Iri(dataset.clone())),
            Triple::new(node.clone(), citizen_level.clone(), citizen),
            Triple::new(
                node.clone(),
                sdmx_measure::obs_value(),
                Literal::integer(rng.gen_range(1..500)),
            ),
        ];
        for (level, members) in pools.iter().skip(1) {
            let member = members[rng.gen_range(0..members.len())].clone();
            batch.push(Triple::new(node.clone(), level.clone(), member));
        }
        batch
    };

    enum Mutation {
        AppendExisting,
        AppendNewMember,
        RemoveObservation,
        CutBroaderLink,
        EditObservation,
    }
    let rounds = [
        Mutation::AppendExisting,
        Mutation::AppendNewMember,
        Mutation::RemoveObservation,
        Mutation::AppendExisting,
        Mutation::CutBroaderLink,
        Mutation::AppendExisting,
        Mutation::RemoveObservation,
        Mutation::EditObservation,
    ];

    for (round, mutation) in rounds.iter().enumerate() {
        match mutation {
            Mutation::AppendExisting => {
                // Pure observation append: must refresh via the delta path.
                let mut batch = Vec::new();
                for _ in 0..3 {
                    let citizens = &pools[0].1;
                    let citizen = citizens[rng.gen_range(0..citizens.len())].clone();
                    batch.extend(new_observation(&mut rng, citizen, next_obs));
                    next_obs += 1;
                }
                tool.endpoint().insert_triples(&batch).unwrap();
            }
            Mutation::AppendNewMember => {
                // A brand-new citizenship member, declared, linked into the
                // hierarchy, labeled, and referenced by a new observation —
                // all in one batch (delta-appliable).
                let member = Term::iri(format!("http://example.org/mutation/citizen{next_member}"));
                let continent = continents[rng.gen_range(0..continents.len())].clone();
                let mut batch = vec![
                    qb4olap::member_of_triple(&member, &citizen_level),
                    qb4olap::rollup_triple(&member, &continent),
                    Triple::new(
                        member.clone(),
                        rdfs::label(),
                        Literal::string(format!("New citizenship {next_member}")),
                    ),
                ];
                batch.extend(new_observation(&mut rng, member, next_obs));
                next_obs += 1;
                next_member += 1;
                tool.endpoint().insert_triples(&batch).unwrap();
            }
            Mutation::RemoveObservation => {
                // Remove one whole observation in a single batch: the
                // catalog must absorb it by tombstoning the row (delta
                // path), not rebuilding.
                let nodes = observation_nodes(&tool, &dataset);
                let victim = &nodes[rng.gen_range(0..nodes.len())];
                assert!(remove_observation(&tool, victim) >= 4);
            }
            Mutation::CutBroaderLink => {
                // Make the hierarchy ragged at one member: unappliable, so
                // the catalog must take the rebuild fallback.
                let citizens = &pools[0].1;
                let victim = &citizens[rng.gen_range(0..citizens.len())];
                assert!(
                    cut_broader_links(&tool, victim) > 0,
                    "victim had a continent link"
                );
            }
            Mutation::EditObservation => {
                // Rewrite one materialized observation's measure: remove +
                // re-insert (both unappliable; rebuild fallback).
                let store = tool.endpoint().store();
                let solutions = tool
                    .endpoint()
                    .select(
                        "PREFIX qb: <http://purl.org/linked-data/cube#>
                         PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
                         SELECT ?o ?v WHERE { ?o a qb:Observation ; sdmx-measure:obsValue ?v }
                         ORDER BY ?o LIMIT 1",
                    )
                    .unwrap();
                let node = solutions.get(0, "o").cloned().unwrap();
                let value = solutions.get(0, "v").cloned().unwrap();
                assert!(store.remove(&Triple::new(
                    node.clone(),
                    sdmx_measure::obs_value(),
                    value
                )));
                store.insert(&Triple::new(
                    node,
                    sdmx_measure::obs_value(),
                    Literal::integer(9_999),
                ));
            }
        }

        // Every workload query: catalog-served columnar results must be
        // cell-identical to a fresh SPARQL evaluation of the same query.
        for (name, text) in datagen::workload::bench_queries() {
            let prepared = querying.prepare(&text).unwrap();
            let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
            let columnar_cube = querying
                .execute(&prepared, ExecutionBackend::Columnar)
                .unwrap();
            assert_eq!(
                sparql_cube, columnar_cube,
                "backends diverge for '{name}' after mutation round {round}"
            );
        }

        // Catalog-served exploration must match its SPARQL oracle too.
        assert_eq!(
            explorer.members(&citizen_level).unwrap(),
            explorer.members_via_sparql(&citizen_level).unwrap(),
            "member listing diverges after mutation round {round}"
        );
        assert_eq!(
            explorer.member_count(&continent_level).unwrap(),
            explorer.member_count_via_sparql(&continent_level).unwrap()
        );
        assert_eq!(
            explorer
                .rollup_edges(&citizen_level, &continent_level)
                .unwrap(),
            explorer
                .rollup_edges_via_sparql(&citizen_level, &continent_level)
                .unwrap(),
            "roll-up navigation diverges after mutation round {round}"
        );
    }

    // The interleaving exercised both maintenance paths.
    use qb2olap::cubestore::MaintenanceStrategy;
    let reports = querying.maintenance_reports();
    assert_eq!(reports[0].strategy, MaintenanceStrategy::Fresh);
    let deltas = reports
        .iter()
        .filter(|r| r.strategy == MaintenanceStrategy::Delta)
        .count();
    let rebuilds = reports
        .iter()
        .filter(|r| r.strategy == MaintenanceStrategy::Rebuild)
        .count();
    assert!(deltas >= 3, "observation appends refresh via deltas: {reports:?}");
    assert!(rebuilds >= 2, "unappliable mutations fall back to rebuilds: {reports:?}");
    assert!(reports
        .iter()
        .filter(|r| r.strategy == MaintenanceStrategy::Rebuild)
        .all(|r| r.reason.is_some()));
    // The whole-observation removals were absorbed as tombstones, not
    // rebuilds: at least one delta-strategy refresh reports removed rows.
    assert!(
        reports
            .iter()
            .any(|r| r.strategy == MaintenanceStrategy::Delta && r.rows_removed > 0),
        "no removal was absorbed via the tombstone path: {reports:?}"
    );
}

/// The tombstone/compaction gate: seeded whole-observation removals are
/// absorbed as tombstones until the live-row fraction crosses the
/// compaction threshold, at which point the catalog re-materializes — and
/// at *every* boundary the catalog-served columnar results must stay
/// cell-identical to fresh SPARQL evaluation, the explorer summary
/// identical to the SPARQL dataset listing.
#[test]
fn removals_stay_in_lockstep_across_compaction_boundaries() {
    use qb2olap::cubestore::{MaintenanceStrategy, RebuildReason};

    let (tool, dataset) = demo_tool(400);
    let querying = tool.querying(&dataset).unwrap();
    let initial = querying.materialize().unwrap();
    let initial_rows = initial.row_count();
    let explorer = tool.explorer(&dataset).unwrap();

    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    let assert_parity = |round: usize| {
        for (name, text) in datagen::workload::bench_queries() {
            let prepared = querying.prepare(&text).unwrap();
            let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
            let columnar_cube = querying
                .execute(&prepared, ExecutionBackend::Columnar)
                .unwrap();
            assert_eq!(
                sparql_cube, columnar_cube,
                "backends diverge for '{name}' after removal round {round}"
            );
        }
        // The catalog-served summary (observation count, label) must track
        // the removals exactly like the SPARQL dataset listing does.
        let summary = explorer.summary().unwrap();
        let listed = explorer::list_cubes(tool.endpoint())
            .unwrap()
            .into_iter()
            .find(|c| c.dataset == dataset)
            .unwrap();
        assert_eq!(
            summary.observations, listed.observations,
            "summary diverges from the SPARQL listing after round {round}"
        );
    };

    // Remove ~60 observations per round until the catalog compacts; the
    // physical row space only shrinks at the compaction boundary.
    let mut compacted_at = None;
    for round in 0..6 {
        let nodes = observation_nodes(&tool, &dataset);
        for _ in 0..60 {
            let victim = nodes[rng.gen_range(0..nodes.len())].clone();
            if tool.endpoint().store().triples_matching(Some(&victim), None, None).is_empty() {
                continue; // already removed this round
            }
            remove_observation(&tool, &victim);
        }
        assert_parity(round);
        let report = querying.maintenance_reports().last().cloned().unwrap();
        match report.strategy {
            MaintenanceStrategy::Delta => {
                assert!(report.rows_removed > 0, "removals tombstone: {report:?}");
            }
            MaintenanceStrategy::Compaction => {
                let reason = report.reason.clone().expect("compaction reports a reason");
                assert!(
                    matches!(reason, RebuildReason::LowLiveFraction { .. }),
                    "{reason}"
                );
                compacted_at = Some(round);
                break;
            }
            other => panic!("unexpected refresh strategy {other:?}: {report:?}"),
        }
    }
    let compacted_at = compacted_at.expect("enough removals to cross the 0.5 live fraction");

    // After the compaction boundary the cube is dense again and still in
    // lockstep — including for one more removal + append round.
    let compacted = querying.materialize().unwrap();
    assert_eq!(compacted.tombstoned_rows(), 0, "compaction reclaimed the dead rows");
    assert!(compacted.row_count() < initial_rows, "physical rows shrank");
    let nodes = observation_nodes(&tool, &dataset);
    let victim = nodes[rng.gen_range(0..nodes.len())].clone();
    remove_observation(&tool, &victim);
    assert_parity(compacted_at + 1);
    let report = querying.maintenance_reports().last().cloned().unwrap();
    assert_eq!(report.strategy, MaintenanceStrategy::Delta);
    assert_eq!(report.rows_removed, 1);
}
