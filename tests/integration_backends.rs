//! Differential tests between the two execution backends: every workload
//! query — the named bench queries plus a seeded randomly generated
//! workload — must return *identical* result cubes (same axes, same
//! measures, same canonically-ordered cells) from the SPARQL translation
//! and from the columnar cube engine, including on ragged hierarchies
//! where members are missing an ancestor at the roll-up target level —
//! and, since the cube catalog is live, after *any* interleaving of store
//! mutations (incremental delta refreshes and rebuild fallbacks alike).

use qb2olap::{demo, Endpoint, ExecutionBackend, Qb2Olap, SparqlVariant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf::vocab::{qb, rdf as rdfv, rdfs, sdmx_dimension, sdmx_measure, skos};
use rdf::{Iri, Literal, Term, Triple};

fn demo_tool(observations: usize) -> (Qb2Olap, Iri) {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(observations)).unwrap();
    (Qb2Olap::new(cube.endpoint.clone()), cube.dataset)
}

#[test]
fn bench_and_generated_workloads_agree_across_backends() {
    let (tool, dataset) = demo_tool(1_200);
    let querying = tool.querying(&dataset).unwrap();

    let mut workload: Vec<(String, String)> = datagen::workload::bench_queries()
        .into_iter()
        .map(|(name, text)| (name.to_string(), text))
        .collect();
    workload.extend(datagen::workload::generated_queries(42, 24));

    for (name, text) in &workload {
        let prepared = querying
            .prepare(text)
            .unwrap_or_else(|e| panic!("workload query '{name}' failed to prepare: {e}\n{text}"));
        let sparql_cube = querying
            .execute(&prepared, SparqlVariant::Direct)
            .unwrap_or_else(|e| panic!("SPARQL backend failed for '{name}': {e}"));
        let columnar_cube = querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap_or_else(|e| panic!("columnar backend failed for '{name}': {e}"));
        assert_eq!(
            sparql_cube, columnar_cube,
            "backends disagree for workload query '{name}':\n{text}"
        );
    }
}

/// Surgically removes the `skos:broader` links of one member, making the
/// hierarchy ragged at that member, and returns how many links were cut.
fn cut_broader_links(tool: &Qb2Olap, member: &rdf::Term) -> usize {
    let store = tool.endpoint().store();
    let links = store.triples_matching(Some(member), Some(&skos::broader()), None);
    for triple in &links {
        assert!(store.remove(triple));
    }
    links.len()
}

/// The observation nodes of the dataset, in a deterministic order.
fn observation_nodes(tool: &Qb2Olap, dataset: &Iri) -> Vec<Term> {
    tool.endpoint()
        .select(&format!(
            "PREFIX qb: <http://purl.org/linked-data/cube#>
             SELECT ?o WHERE {{ ?o a qb:Observation ; qb:dataSet <{}> }} ORDER BY ?o",
            dataset.as_str()
        ))
        .unwrap()
        .rows
        .iter()
        .filter_map(|r| r.first().cloned().flatten())
        .collect()
}

/// Removes one observation *completely* as a single batched mutation (one
/// `StoreDelta`), the shape the catalog can absorb by tombstoning the row.
/// Returns how many triples went.
fn remove_observation(tool: &Qb2Olap, node: &Term) -> usize {
    let store = tool.endpoint().store();
    let triples = store.triples_matching(Some(node), None, None);
    assert!(!triples.is_empty(), "observation {node} has triples");
    store.remove_all(&triples)
}

#[test]
fn ragged_hierarchy_drops_members_identically_in_both_backends() {
    let (tool, dataset) = demo_tool(900);

    // Total over all observations, before making anything ragged.
    let sum_for = |filter: &str| -> f64 {
        tool.endpoint()
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
                 PREFIX property: <http://eurostat.linked-statistics.org/property#>
                 SELECT (SUM(?v) AS ?total) WHERE {{
                   ?o a qb:Observation ; sdmx-measure:obsValue ?v .
                   {filter}
                 }}"
            ))
            .unwrap()
            .get(0, "total")
            .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
            .unwrap_or(0.0)
    };
    let full_total = sum_for("");
    let syria_total = sum_for(&format!(
        "?o property:citizen <{}> .",
        datagen::eurostat::citizen_member("SY")
            .as_iri()
            .unwrap()
            .as_str()
    ));
    assert!(syria_total > 0.0, "the 900-row sample has Syrian applicants");

    // Make the citizenship hierarchy ragged at Syria (no continent), then
    // open a fresh querying module so both backends see the mutated store.
    assert!(cut_broader_links(&tool, &datagen::eurostat::citizen_member("SY")) > 0);
    let querying = tool.querying(&dataset).unwrap();

    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        sparql_cube, columnar_cube,
        "backends disagree on the ragged citizenship roll-up"
    );
    // Both drop exactly the observations of the now-ragged member.
    assert!(
        (sparql_cube.first_measure_total() - (full_total - syria_total)).abs() < 1e-6,
        "expected the roll-up to lose exactly Syria's total"
    );

    // A query that keeps citizenship at the bottom level still sees Syria.
    let prepared = querying
        .prepare(&datagen::workload::totals_by_citizenship())
        .unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(sparql_cube, columnar_cube);
    assert!((sparql_cube.first_measure_total() - full_total).abs() < 1e-6);
}

#[test]
fn ragged_middle_of_a_multi_level_rollup_is_pinned_in_both_backends() {
    let (tool, dataset) = demo_tool(700);

    // Cut the continent → citAll link of Africa: African citizens can then
    // reach `continent` but not `citAll`.
    assert!(cut_broader_links(&tool, &datagen::eurostat::continent_member("Africa")) > 0);
    let querying = tool.querying(&dataset).unwrap();

    let to_cit_all = "PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:citAll);
";
    let prepared = querying.prepare(to_cit_all).unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        sparql_cube, columnar_cube,
        "backends disagree when the middle of a two-step roll-up is ragged"
    );

    // Rolling up only to `continent` is unaffected by the missing top link.
    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    let direct = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(direct, columnar);
    assert!(direct
        .cells
        .iter()
        .any(|c| c.coordinates.contains(&datagen::eurostat::continent_member("Africa"))));
}

/// The mutation-parity gate: interleaves seeded random store mutations —
/// pure observation appends (the delta path), brand-new members with
/// roll-up links and labels, broader-link cuts and observation edits (the
/// rebuild fallback) — with the bench workload, asserting after every
/// round that the catalog-served columnar results stay cell-identical to a
/// fresh SPARQL evaluation and that the catalog-served explorer navigation
/// matches its SPARQL oracle. Stale or divergent cells anywhere fail here.
#[test]
fn interleaved_mutations_keep_catalog_and_sparql_in_lockstep() {
    let (tool, dataset) = demo_tool(800);
    let querying = tool.querying(&dataset).unwrap();
    querying.materialize().unwrap();
    let explorer = tool.explorer(&dataset).unwrap();

    let members_of = |level: &Iri| -> Vec<Term> {
        qb4olap::members_of_level(tool.endpoint(), level).unwrap()
    };
    let citizen_level = rdf::vocab::eurostat_property::citizen();
    let continent_level = rdf::vocab::demo_schema::continent();
    let pools: Vec<(Iri, Vec<Term>)> = [
        citizen_level.clone(),
        rdf::vocab::eurostat_property::geo(),
        sdmx_dimension::ref_period(),
        rdf::vocab::eurostat_property::age(),
        rdf::vocab::eurostat_property::sex(),
        rdf::vocab::eurostat_property::asyl_app(),
    ]
    .into_iter()
    .map(|level| {
        let members = members_of(&level);
        assert!(!members.is_empty(), "level <{}> has members", level.as_str());
        (level, members)
    })
    .collect();
    let continents = members_of(&continent_level);

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let mut next_obs = 0usize;
    let mut next_member = 0usize;

    // One complete observation over the given citizen member, the other
    // dimensions drawn from the existing member pools.
    let new_observation = |rng: &mut StdRng, citizen: Term, serial: usize| -> Vec<Triple> {
        let node = Term::iri(format!("http://example.org/mutation/obs{serial}"));
        let mut batch = vec![
            Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
            Triple::new(node.clone(), qb::data_set(), Term::Iri(dataset.clone())),
            Triple::new(node.clone(), citizen_level.clone(), citizen),
            Triple::new(
                node.clone(),
                sdmx_measure::obs_value(),
                Literal::integer(rng.gen_range(1..500)),
            ),
        ];
        for (level, members) in pools.iter().skip(1) {
            let member = members[rng.gen_range(0..members.len())].clone();
            batch.push(Triple::new(node.clone(), level.clone(), member));
        }
        batch
    };

    enum Mutation {
        AppendExisting,
        AppendNewMember,
        RemoveObservation,
        CutBroaderLink,
        EditObservation,
    }
    let rounds = [
        Mutation::AppendExisting,
        Mutation::AppendNewMember,
        Mutation::RemoveObservation,
        Mutation::AppendExisting,
        Mutation::CutBroaderLink,
        Mutation::AppendExisting,
        Mutation::RemoveObservation,
        Mutation::EditObservation,
    ];

    for (round, mutation) in rounds.iter().enumerate() {
        match mutation {
            Mutation::AppendExisting => {
                // Pure observation append: must refresh via the delta path.
                let mut batch = Vec::new();
                for _ in 0..3 {
                    let citizens = &pools[0].1;
                    let citizen = citizens[rng.gen_range(0..citizens.len())].clone();
                    batch.extend(new_observation(&mut rng, citizen, next_obs));
                    next_obs += 1;
                }
                tool.endpoint().insert_triples(&batch).unwrap();
            }
            Mutation::AppendNewMember => {
                // A brand-new citizenship member, declared, linked into the
                // hierarchy, labeled, and referenced by a new observation —
                // all in one batch (delta-appliable).
                let member = Term::iri(format!("http://example.org/mutation/citizen{next_member}"));
                let continent = continents[rng.gen_range(0..continents.len())].clone();
                let mut batch = vec![
                    qb4olap::member_of_triple(&member, &citizen_level),
                    qb4olap::rollup_triple(&member, &continent),
                    Triple::new(
                        member.clone(),
                        rdfs::label(),
                        Literal::string(format!("New citizenship {next_member}")),
                    ),
                ];
                batch.extend(new_observation(&mut rng, member, next_obs));
                next_obs += 1;
                next_member += 1;
                tool.endpoint().insert_triples(&batch).unwrap();
            }
            Mutation::RemoveObservation => {
                // Remove one whole observation in a single batch: the
                // catalog must absorb it by tombstoning the row (delta
                // path), not rebuilding.
                let nodes = observation_nodes(&tool, &dataset);
                let victim = &nodes[rng.gen_range(0..nodes.len())];
                assert!(remove_observation(&tool, victim) >= 4);
            }
            Mutation::CutBroaderLink => {
                // Make the hierarchy ragged at one member: unappliable, so
                // the catalog must take the rebuild fallback.
                let citizens = &pools[0].1;
                let victim = &citizens[rng.gen_range(0..citizens.len())];
                assert!(
                    cut_broader_links(&tool, victim) > 0,
                    "victim had a continent link"
                );
            }
            Mutation::EditObservation => {
                // Rewrite one materialized observation's measure: remove +
                // re-insert (both unappliable; rebuild fallback).
                let store = tool.endpoint().store();
                let solutions = tool
                    .endpoint()
                    .select(
                        "PREFIX qb: <http://purl.org/linked-data/cube#>
                         PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
                         SELECT ?o ?v WHERE { ?o a qb:Observation ; sdmx-measure:obsValue ?v }
                         ORDER BY ?o LIMIT 1",
                    )
                    .unwrap();
                let node = solutions.get(0, "o").cloned().unwrap();
                let value = solutions.get(0, "v").cloned().unwrap();
                assert!(store.remove(&Triple::new(
                    node.clone(),
                    sdmx_measure::obs_value(),
                    value
                )));
                store.insert(&Triple::new(
                    node,
                    sdmx_measure::obs_value(),
                    Literal::integer(9_999),
                ));
            }
        }

        // Every workload query: catalog-served columnar results must be
        // cell-identical to a fresh SPARQL evaluation of the same query.
        for (name, text) in datagen::workload::bench_queries() {
            let prepared = querying.prepare(&text).unwrap();
            let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
            let columnar_cube = querying
                .execute(&prepared, ExecutionBackend::Columnar)
                .unwrap();
            assert_eq!(
                sparql_cube, columnar_cube,
                "backends diverge for '{name}' after mutation round {round}"
            );
        }

        // Catalog-served exploration must match its SPARQL oracle too.
        assert_eq!(
            explorer.members(&citizen_level).unwrap(),
            explorer.members_via_sparql(&citizen_level).unwrap(),
            "member listing diverges after mutation round {round}"
        );
        assert_eq!(
            explorer.member_count(&continent_level).unwrap(),
            explorer.member_count_via_sparql(&continent_level).unwrap()
        );
        assert_eq!(
            explorer
                .rollup_edges(&citizen_level, &continent_level)
                .unwrap(),
            explorer
                .rollup_edges_via_sparql(&citizen_level, &continent_level)
                .unwrap(),
            "roll-up navigation diverges after mutation round {round}"
        );
    }

    // The interleaving exercised both maintenance paths.
    use qb2olap::cubestore::MaintenanceStrategy;
    let reports = querying.maintenance_reports();
    assert_eq!(reports[0].strategy, MaintenanceStrategy::Fresh);
    let deltas = reports
        .iter()
        .filter(|r| r.strategy == MaintenanceStrategy::Delta)
        .count();
    let rebuilds = reports
        .iter()
        .filter(|r| r.strategy == MaintenanceStrategy::Rebuild)
        .count();
    assert!(deltas >= 3, "observation appends refresh via deltas: {reports:?}");
    assert!(rebuilds >= 2, "unappliable mutations fall back to rebuilds: {reports:?}");
    assert!(reports
        .iter()
        .filter(|r| r.strategy == MaintenanceStrategy::Rebuild)
        .all(|r| r.reason.is_some()));
    // The whole-observation removals were absorbed as tombstones, not
    // rebuilds: at least one delta-strategy refresh reports removed rows.
    assert!(
        reports
            .iter()
            .any(|r| r.strategy == MaintenanceStrategy::Delta && r.rows_removed > 0),
        "no removal was absorbed via the tombstone path: {reports:?}"
    );
}

mod mutation_fuzzer {
    //! The mutation-sequence differential fuzzer: one seeded `StdRng`
    //! drives a long random sequence of interleaved pure-data mutations —
    //! integer and **float** observation appends, brand-new members,
    //! whole- and **partial**-observation removals (measure strips,
    //! dataset unlinks, dimension strips) — against **one** `Store`
    //! carrying two datasets (the integer demo cube plus a float-measure
    //! cube), and after *every* step asserts
    //!
    //! * the catalog refreshed both cubes via the **delta** path (any
    //!   `Rebuild`/`Compaction` strategy fails the run — every mutation in
    //!   the sequence is one PR 5 made delta-appliable), and
    //! * catalog-served columnar results stay **bit-identical** to fresh
    //!   SPARQL evaluation, for the integer workload queries and for the
    //!   float cube's SUM/AVG aggregates (periodically also across scan
    //!   thread counts 1/2/8 and against the explorer's SPARQL oracles).
    //!
    //! `QB2OLAP_FUZZ_STEPS` / `QB2OLAP_FUZZ_SEED` override the defaults
    //! for longer local soaks; ci.sh pins the fixed-seed smoke run.

    use std::collections::{BTreeMap, BTreeSet};

    use qb2olap::cubestore::{
        execute_with_threads, CubeCatalog, CubeQuery, MaintenanceStrategy, MaterializedCube,
    };
    use qb2olap::{Endpoint, ExecutionBackend, Qb2Olap, SparqlVariant};
    use qb4olap::{
        AggregateFunction, Cardinality, CubeSchema, Dimension, Hierarchy, HierarchyStep,
        LevelComponent, MeasureSpec,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rdf::vocab::{qb, rdf as rdfv, sdmx_measure};
    use rdf::{Iri, Literal, Term, Triple};

    use super::{demo_tool, observation_nodes};

    fn firi(suffix: &str) -> Iri {
        Iri::new(format!("http://example.org/float/{suffix}"))
    }

    fn fmember(suffix: &str) -> Term {
        Term::iri(format!("http://example.org/float/member/{suffix}"))
    }

    /// A quarter-step decimal: exactly representable, canonical lexical
    /// form round-trips through the columnar encoding.
    fn quarters(rng: &mut StdRng) -> Literal {
        Literal::decimal(rng.gen_range(-4_000..=4_000i64) as f64 / 4.0)
    }

    /// Loads a small float-measure dataset (city → country hierarchy, two
    /// decimal measures: a SUM rate and an AVG index) into the demo store
    /// and returns its QB4OLAP schema. No labels: the fuzzer keeps every
    /// mutation delta-appliable for *both* cubes, and attribute values for
    /// members unknown to the other cube would refuse.
    fn load_float_dataset(tool: &Qb2Olap, rng: &mut StdRng) -> CubeSchema {
        let city = firi("lv/city");
        let country = firi("lv/country");
        let rate = firi("measure/rate");
        let index = firi("measure/index");

        let mut builder = ::qb::QbDatasetBuilder::new(firi("ds"), firi("dsd"))
            .dimension(city.clone())
            .measure(rate.clone())
            .measure(index.clone());
        for i in 0..24 {
            let mut obs = ::qb::Observation::new(Term::iri(format!(
                "http://example.org/float/obs/init{i}"
            )));
            obs.dimensions.insert(city.clone(), fmember(&format!("fc{}", i % 8)));
            obs.measures
                .insert(rate.clone(), Term::Literal(quarters(rng)));
            obs.measures
                .insert(index.clone(), Term::Literal(quarters(rng)));
            builder = builder.observation(obs);
        }
        let (_, mut triples) = builder.build();
        for i in 0..8 {
            triples.push(qb4olap::member_of_triple(&fmember(&format!("fc{i}")), &city));
            triples.push(qb4olap::rollup_triple(
                &fmember(&format!("fc{i}")),
                &fmember(&format!("FK{}", i % 3)),
            ));
        }
        for k in 0..3 {
            triples.push(qb4olap::member_of_triple(&fmember(&format!("FK{k}")), &country));
        }
        tool.endpoint().insert_triples(&triples).unwrap();

        let mut schema = CubeSchema::new(firi("dsdQB4O"), firi("ds"));
        let mut hierarchy = Hierarchy::new(firi("hier/city"));
        hierarchy.levels = vec![city.clone(), country.clone()];
        hierarchy.steps = vec![HierarchyStep {
            child: city.clone(),
            parent: country,
            cardinality: Cardinality::ManyToOne,
        }];
        let mut dimension = Dimension::new(firi("dim/city"));
        dimension.hierarchies.push(hierarchy);
        schema.dimensions.push(dimension);
        schema.level_components.push(LevelComponent {
            level: city,
            cardinality: Cardinality::ManyToOne,
            dimension: Some(firi("dim/city")),
        });
        schema.measures.push(MeasureSpec {
            property: rate,
            aggregate: AggregateFunction::Sum,
        });
        schema.measures.push(MeasureSpec {
            property: index,
            aggregate: AggregateFunction::Avg,
        });
        schema
    }

    /// The float cube's SPARQL oracle: per-city SUM(rate) / AVG(index)
    /// over bottom-level members, compared **term-for-term** (bit-identical
    /// lexical forms) with the catalog-served columnar cells.
    fn assert_float_lockstep(tool: &Qb2Olap, catalog: &CubeCatalog, schema: &CubeSchema, step: usize) {
        let cube = catalog.serve(tool.endpoint(), schema).unwrap();
        let output = execute_with_threads(&cube, &CubeQuery::default(), 1).unwrap();
        let solutions = tool
            .endpoint()
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 PREFIX qb4o: <http://purl.org/qb4olap/cubes#>
                 SELECT ?c (SUM(?v) AS ?sum) (AVG(?w) AS ?avg) WHERE {{
                   ?o a qb:Observation ; qb:dataSet <{}> ;
                      <{}> ?c ; <{}> ?v ; <{}> ?w .
                   ?c qb4o:memberOf <{}> .
                 }} GROUP BY ?c",
                firi("ds").as_str(),
                firi("lv/city").as_str(),
                firi("measure/rate").as_str(),
                firi("measure/index").as_str(),
                firi("lv/city").as_str(),
            ))
            .unwrap();
        let mut oracle: BTreeMap<Term, (Term, Term)> = BTreeMap::new();
        for i in 0..solutions.len() {
            let city = solutions.get(i, "c").cloned().unwrap();
            let sum = solutions.get(i, "sum").cloned().unwrap();
            let avg = solutions.get(i, "avg").cloned().unwrap();
            oracle.insert(city, (sum, avg));
        }
        assert_eq!(
            output.cells.len(),
            oracle.len(),
            "float cube cell count diverges from SPARQL after step {step}"
        );
        for cell in &output.cells {
            let (sum, avg) = oracle
                .get(&cell.coordinates[0])
                .unwrap_or_else(|| panic!("extra columnar cell {:?} at step {step}", cell.coordinates));
            assert_eq!(
                cell.values[0].as_ref(),
                Some(sum),
                "float SUM diverges from SPARQL for {:?} after step {step}",
                cell.coordinates
            );
            assert_eq!(
                cell.values[1].as_ref(),
                Some(avg),
                "float AVG diverges from SPARQL for {:?} after step {step}",
                cell.coordinates
            );
        }
    }

    /// Every refresh so far took the delta path (the first build reports
    /// `Fresh`; anything else fails the run).
    fn assert_delta_only(catalog: &CubeCatalog, dataset: &Iri, step: usize) {
        let report = catalog.last_report(dataset).expect("dataset served");
        assert!(
            matches!(
                report.strategy,
                MaintenanceStrategy::Delta | MaintenanceStrategy::Fresh
            ),
            "unexpected {:?} refresh of <{}> at step {step}: {:?}",
            report.strategy,
            dataset.as_str(),
            report.reason
        );
    }

    #[test]
    fn mutation_sequence_fuzzer_keeps_catalog_and_sparql_in_lockstep() {
        // Centralized knob parsing (obs::env): this site used to accept
        // only decimal, silently ignoring the hex seeds ci.sh pins for the
        // qlsmith campaigns.
        let steps = obs::env::usize_knob("QB2OLAP_FUZZ_STEPS", 200);
        let seed = obs::env::u64_knob("QB2OLAP_FUZZ_SEED", 0xE14_5EED);
        let mut rng = StdRng::seed_from_u64(seed);

        let (tool, dataset) = demo_tool(250);
        // The float dataset's QB structure must be in the store *before*
        // the first materialization: structure triples are schema-level and
        // would (correctly) force a rebuild if they arrived as a delta.
        let float_schema = load_float_dataset(&tool, &mut rng);
        let float_dataset = float_schema.dataset.clone();
        let catalog = tool.catalog().clone();
        let querying = tool.querying(&dataset).unwrap();
        querying.materialize().unwrap();
        catalog.serve(tool.endpoint(), &float_schema).unwrap();
        let explorer = tool.explorer(&dataset).unwrap();

        let citizen_level = rdf::vocab::eurostat_property::citizen();
        let continent_level = rdf::vocab::demo_schema::continent();
        let demo_levels: Vec<(Iri, Vec<Term>)> = [
            citizen_level.clone(),
            rdf::vocab::eurostat_property::geo(),
            rdf::vocab::sdmx_dimension::ref_period(),
            rdf::vocab::eurostat_property::age(),
            rdf::vocab::eurostat_property::sex(),
            rdf::vocab::eurostat_property::asyl_app(),
        ]
        .into_iter()
        .map(|level| {
            let members = qb4olap::members_of_level(tool.endpoint(), &level).unwrap();
            assert!(!members.is_empty());
            (level, members)
        })
        .collect();
        let continents = qb4olap::members_of_level(tool.endpoint(), &continent_level).unwrap();
        let workload: Vec<(&str, String)> = datagen::workload::bench_queries();

        // Observations whose fragments are *dropped* (partially removed)
        // may not be touched again without forcing a rebuild; the fuzzer
        // mirrors the decision table and steers around them.
        let mut forbidden: BTreeSet<Term> = BTreeSet::new();
        let mut next_obs = 0usize;
        let mut next_member = 0usize;
        let mut op_counts = [0usize; 9];

        let demo_observation = |rng: &mut StdRng, serial: usize| -> Vec<Triple> {
            let node = Term::iri(format!("http://example.org/fuzz/obs{serial}"));
            let mut batch = vec![
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::Iri(dataset.clone())),
                Triple::new(
                    node.clone(),
                    sdmx_measure::obs_value(),
                    Literal::integer(rng.gen_range(1..500)),
                ),
            ];
            for (level, members) in &demo_levels {
                let member = members[rng.gen_range(0..members.len())].clone();
                batch.push(Triple::new(node.clone(), level.clone(), member));
            }
            batch
        };

        let live_victims = |tool: &Qb2Olap, dataset: &Iri, forbidden: &BTreeSet<Term>| -> Vec<Term> {
            observation_nodes(tool, dataset)
                .into_iter()
                .filter(|node| !forbidden.contains(node))
                .collect()
        };

        let float_observation = |rng: &mut StdRng, city: Term, serial: usize| -> Vec<Triple> {
            let node = Term::iri(format!("http://example.org/float/fuzz/obs{serial}"));
            vec![
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::Iri(firi("ds"))),
                Triple::new(node.clone(), firi("lv/city"), city),
                Triple::new(node.clone(), firi("measure/rate"), quarters(rng)),
                Triple::new(node, firi("measure/index"), quarters(rng)),
            ]
        };

        for step in 0..steps {
            let op = rng.gen_range(0..9u32);
            op_counts[op as usize] += 1;
            match op {
                // Integer observation appends (1–3 per batch).
                0 => {
                    let mut batch = Vec::new();
                    for _ in 0..rng.gen_range(1..=3usize) {
                        batch.extend(demo_observation(&mut rng, next_obs));
                        next_obs += 1;
                    }
                    tool.endpoint().insert_triples(&batch).unwrap();
                }
                // A brand-new citizenship member (declared, linked into the
                // hierarchy) plus an observation referencing it.
                1 => {
                    let member =
                        Term::iri(format!("http://example.org/fuzz/citizen{next_member}"));
                    let continent = continents[rng.gen_range(0..continents.len())].clone();
                    let mut batch = vec![
                        qb4olap::member_of_triple(&member, &citizen_level),
                        qb4olap::rollup_triple(&member, &continent),
                    ];
                    let mut obs = demo_observation(&mut rng, next_obs);
                    next_obs += 1;
                    next_member += 1;
                    // Rebind the citizenship dimension to the new member.
                    obs.retain(|t| t.predicate != citizen_level);
                    obs.push(Triple::new(obs[0].subject.clone(), citizen_level.clone(), member));
                    batch.extend(obs);
                    tool.endpoint().insert_triples(&batch).unwrap();
                }
                // Whole-observation removal (one batch = one delta).
                2 => {
                    let victims = live_victims(&tool, &dataset, &forbidden);
                    if victims.len() > 150 {
                        let victim = &victims[rng.gen_range(0..victims.len())];
                        let removed = tool
                            .endpoint()
                            .store()
                            .remove_matching(Some(victim), None, None);
                        assert!(removed.len() >= 4);
                    }
                }
                // Partial removal: strip the measure value → the fragment
                // is *dropped*, the row tombstoned, no rebuild.
                3 => {
                    let victims = live_victims(&tool, &dataset, &forbidden);
                    if victims.len() > 150 {
                        let victim = victims[rng.gen_range(0..victims.len())].clone();
                        let removed = tool.endpoint().store().remove_matching(
                            Some(&victim),
                            Some(&sdmx_measure::obs_value()),
                            None,
                        );
                        assert_eq!(removed.len(), 1);
                        forbidden.insert(victim);
                    }
                }
                // Partial removal: strip the dataset link → the fragment is
                // invisible to a fresh build.
                4 => {
                    let victims = live_victims(&tool, &dataset, &forbidden);
                    if victims.len() > 150 {
                        let victim = victims[rng.gen_range(0..victims.len())].clone();
                        let removed = tool.endpoint().store().remove_matching(
                            Some(&victim),
                            Some(&qb::data_set()),
                            None,
                        );
                        assert_eq!(removed.len(), 1);
                        forbidden.insert(victim);
                    }
                }
                // Partial removal: strip one dimension value → the
                // surviving (still complete) row is re-appended with that
                // dimension unbound.
                5 => {
                    let victims = live_victims(&tool, &dataset, &forbidden);
                    if !victims.is_empty() {
                        let victim = victims[rng.gen_range(0..victims.len())].clone();
                        // Any of the five non-citizenship dimensions.
                        let (level, _) = &demo_levels[rng.gen_range(1..demo_levels.len())];
                        tool.endpoint()
                            .store()
                            .remove_matching(Some(&victim), Some(level), None);
                    }
                }
                // Float observation appends (the lifted NonIntegralAppend).
                6 => {
                    let mut batch = Vec::new();
                    for _ in 0..rng.gen_range(1..=2usize) {
                        let city = fmember(&format!("fc{}", rng.gen_range(0..8)));
                        batch.extend(float_observation(&mut rng, city, next_obs));
                        next_obs += 1;
                    }
                    tool.endpoint().insert_triples(&batch).unwrap();
                }
                // A new float-cube member + observation.
                7 => {
                    let member = fmember(&format!("fuzz{next_member}"));
                    next_member += 1;
                    let mut batch = vec![
                        qb4olap::member_of_triple(&member, &firi("lv/city")),
                        qb4olap::rollup_triple(&member, &fmember(&format!("FK{}", rng.gen_range(0..3)))),
                    ];
                    batch.extend(float_observation(&mut rng, member, next_obs));
                    next_obs += 1;
                    tool.endpoint().insert_triples(&batch).unwrap();
                }
                // Float removals: whole observation, or a one-measure strip
                // that drops the fragment.
                _ => {
                    let victims = live_victims(&tool, &float_dataset, &forbidden);
                    if victims.len() > 20 {
                        let victim = victims[rng.gen_range(0..victims.len())].clone();
                        if rng.gen_range(0..2) == 0 {
                            assert!(
                                tool.endpoint()
                                    .store()
                                    .remove_matching(Some(&victim), None, None)
                                    .len()
                                    >= 5
                            );
                        } else {
                            let removed = tool.endpoint().store().remove_matching(
                                Some(&victim),
                                Some(&firi("measure/index")),
                                None,
                            );
                            assert_eq!(removed.len(), 1);
                            forbidden.insert(victim);
                        }
                    }
                }
            }

            // Both cubes must absorb the step via the delta path...
            querying.materialize().unwrap();
            catalog.serve(tool.endpoint(), &float_schema).unwrap();
            assert_delta_only(&catalog, &dataset, step);
            assert_delta_only(&catalog, &float_dataset, step);

            // ... and stay in lockstep with fresh SPARQL evaluation: one
            // rotating workload query per step, the float aggregates every
            // step, the full battery periodically.
            let heavy = step % 25 == 24;
            let checks: Vec<&(&str, String)> = if heavy {
                workload.iter().collect()
            } else {
                vec![&workload[step % workload.len()]]
            };
            for (name, text) in checks {
                let prepared = querying.prepare(text).unwrap();
                let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
                let columnar_cube = querying
                    .execute(&prepared, ExecutionBackend::Columnar)
                    .unwrap();
                assert_eq!(
                    sparql_cube, columnar_cube,
                    "backends diverge for '{name}' after fuzz step {step} (seed {seed})"
                );
            }
            assert_float_lockstep(&tool, &catalog, &float_schema, step);
            if heavy {
                // Thread-count sweep on the float cube: chunked compensated
                // sums must be bit-identical at 1/2/8 workers.
                let cube = catalog.serve(tool.endpoint(), &float_schema).unwrap();
                let reference = execute_with_threads(&cube, &CubeQuery::default(), 1).unwrap();
                for threads in [2usize, 8] {
                    assert_eq!(
                        execute_with_threads(&cube, &CubeQuery::default(), threads).unwrap(),
                        reference,
                        "float scan diverges at {threads} threads after step {step}"
                    );
                }
                // Catalog-served exploration matches its SPARQL oracle.
                assert_eq!(
                    explorer.members(&citizen_level).unwrap(),
                    explorer.members_via_sparql(&citizen_level).unwrap()
                );
                assert_eq!(
                    explorer
                        .rollup_edges(&citizen_level, &continent_level)
                        .unwrap(),
                    explorer
                        .rollup_edges_via_sparql(&citizen_level, &continent_level)
                        .unwrap()
                );
                // The delta-refreshed demo cube still matches a
                // from-scratch materialization, physically: same live rows.
                let served = querying.materialize().unwrap();
                let rebuilt =
                    MaterializedCube::from_endpoint(tool.endpoint(), querying.schema()).unwrap();
                assert_eq!(served.live_row_count(), rebuilt.row_count());
                assert_eq!(
                    served.stats().observations_seen,
                    rebuilt.stats().observations_seen
                );
            }
        }

        // The sequence exercised every mutation class and never rebuilt.
        assert!(
            op_counts.iter().all(|&count| count > 0),
            "seed {seed} did not exercise every op in {steps} steps: {op_counts:?}"
        );
        for ds in [&dataset, &float_dataset] {
            let reports = catalog.reports(ds);
            assert!(
                reports
                    .iter()
                    .all(|r| matches!(
                        r.strategy,
                        MaintenanceStrategy::Delta | MaintenanceStrategy::Fresh
                    )),
                "<{}> saw a non-delta refresh: {reports:?}",
                ds.as_str()
            );
            assert!(
                reports.iter().any(|r| r.rows_removed > 0),
                "<{}> absorbed no removal via tombstones",
                ds.as_str()
            );
        }
    }
}

/// The tombstone/compaction gate: seeded whole-observation removals are
/// absorbed as tombstones until the live-row fraction crosses the
/// compaction threshold, at which point the catalog re-materializes — and
/// at *every* boundary the catalog-served columnar results must stay
/// cell-identical to fresh SPARQL evaluation, the explorer summary
/// identical to the SPARQL dataset listing.
#[test]
fn removals_stay_in_lockstep_across_compaction_boundaries() {
    use qb2olap::cubestore::{MaintenanceStrategy, RebuildReason};

    let (tool, dataset) = demo_tool(400);
    let querying = tool.querying(&dataset).unwrap();
    let initial = querying.materialize().unwrap();
    let initial_rows = initial.row_count();
    let explorer = tool.explorer(&dataset).unwrap();

    let mut rng = StdRng::seed_from_u64(0xDEAD_BEEF);
    let assert_parity = |round: usize| {
        for (name, text) in datagen::workload::bench_queries() {
            let prepared = querying.prepare(&text).unwrap();
            let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
            let columnar_cube = querying
                .execute(&prepared, ExecutionBackend::Columnar)
                .unwrap();
            assert_eq!(
                sparql_cube, columnar_cube,
                "backends diverge for '{name}' after removal round {round}"
            );
        }
        // The catalog-served summary (observation count, label) must track
        // the removals exactly like the SPARQL dataset listing does.
        let summary = explorer.summary().unwrap();
        let listed = explorer::list_cubes(tool.endpoint())
            .unwrap()
            .into_iter()
            .find(|c| c.dataset == dataset)
            .unwrap();
        assert_eq!(
            summary.observations, listed.observations,
            "summary diverges from the SPARQL listing after round {round}"
        );
    };

    // Remove ~60 observations per round until the catalog compacts; the
    // physical row space only shrinks at the compaction boundary.
    let mut compacted_at = None;
    for round in 0..6 {
        let nodes = observation_nodes(&tool, &dataset);
        for _ in 0..60 {
            let victim = nodes[rng.gen_range(0..nodes.len())].clone();
            if tool.endpoint().store().triples_matching(Some(&victim), None, None).is_empty() {
                continue; // already removed this round
            }
            remove_observation(&tool, &victim);
        }
        assert_parity(round);
        let report = querying.maintenance_reports().last().cloned().unwrap();
        match report.strategy {
            MaintenanceStrategy::Delta => {
                assert!(report.rows_removed > 0, "removals tombstone: {report:?}");
            }
            MaintenanceStrategy::Compaction => {
                let reason = report.reason.clone().expect("compaction reports a reason");
                assert!(
                    matches!(reason, RebuildReason::LowLiveFraction { .. }),
                    "{reason}"
                );
                compacted_at = Some(round);
                break;
            }
            other => panic!("unexpected refresh strategy {other:?}: {report:?}"),
        }
    }
    let compacted_at = compacted_at.expect("enough removals to cross the 0.5 live fraction");

    // After the compaction boundary the cube is dense again and still in
    // lockstep — including for one more removal + append round.
    let compacted = querying.materialize().unwrap();
    assert_eq!(compacted.tombstoned_rows(), 0, "compaction reclaimed the dead rows");
    assert!(compacted.row_count() < initial_rows, "physical rows shrank");
    let nodes = observation_nodes(&tool, &dataset);
    let victim = nodes[rng.gen_range(0..nodes.len())].clone();
    remove_observation(&tool, &victim);
    assert_parity(compacted_at + 1);
    let report = querying.maintenance_reports().last().cloned().unwrap();
    assert_eq!(report.strategy, MaintenanceStrategy::Delta);
    assert_eq!(report.rows_removed, 1);
}
