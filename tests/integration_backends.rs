//! Differential tests between the two execution backends: every workload
//! query — the named bench queries plus a seeded randomly generated
//! workload — must return *identical* result cubes (same axes, same
//! measures, same canonically-ordered cells) from the SPARQL translation
//! and from the columnar cube engine, including on ragged hierarchies
//! where members are missing an ancestor at the roll-up target level.

use qb2olap::{demo, Endpoint, ExecutionBackend, Qb2Olap, SparqlVariant};
use rdf::vocab::skos;
use rdf::Iri;

fn demo_tool(observations: usize) -> (Qb2Olap, Iri) {
    let cube = demo::setup_demo_cube(&datagen::EurostatConfig::small(observations)).unwrap();
    (Qb2Olap::new(cube.endpoint.clone()), cube.dataset)
}

#[test]
fn bench_and_generated_workloads_agree_across_backends() {
    let (tool, dataset) = demo_tool(1_200);
    let querying = tool.querying(&dataset).unwrap();

    let mut workload: Vec<(String, String)> = datagen::workload::bench_queries()
        .into_iter()
        .map(|(name, text)| (name.to_string(), text))
        .collect();
    workload.extend(datagen::workload::generated_queries(42, 24));

    for (name, text) in &workload {
        let prepared = querying
            .prepare(text)
            .unwrap_or_else(|e| panic!("workload query '{name}' failed to prepare: {e}\n{text}"));
        let sparql_cube = querying
            .execute(&prepared, SparqlVariant::Direct)
            .unwrap_or_else(|e| panic!("SPARQL backend failed for '{name}': {e}"));
        let columnar_cube = querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap_or_else(|e| panic!("columnar backend failed for '{name}': {e}"));
        assert_eq!(
            sparql_cube, columnar_cube,
            "backends disagree for workload query '{name}':\n{text}"
        );
    }
}

/// Surgically removes the `skos:broader` links of one member, making the
/// hierarchy ragged at that member, and returns how many links were cut.
fn cut_broader_links(tool: &Qb2Olap, member: &rdf::Term) -> usize {
    let store = tool.endpoint().store();
    let links = store.triples_matching(Some(member), Some(&skos::broader()), None);
    for triple in &links {
        assert!(store.remove(triple));
    }
    links.len()
}

#[test]
fn ragged_hierarchy_drops_members_identically_in_both_backends() {
    let (tool, dataset) = demo_tool(900);

    // Total over all observations, before making anything ragged.
    let sum_for = |filter: &str| -> f64 {
        tool.endpoint()
            .select(&format!(
                "PREFIX qb: <http://purl.org/linked-data/cube#>
                 PREFIX sdmx-measure: <http://purl.org/linked-data/sdmx/2009/measure#>
                 PREFIX property: <http://eurostat.linked-statistics.org/property#>
                 SELECT (SUM(?v) AS ?total) WHERE {{
                   ?o a qb:Observation ; sdmx-measure:obsValue ?v .
                   {filter}
                 }}"
            ))
            .unwrap()
            .get(0, "total")
            .and_then(|t| t.as_literal().and_then(|l| l.as_double()))
            .unwrap_or(0.0)
    };
    let full_total = sum_for("");
    let syria_total = sum_for(&format!(
        "?o property:citizen <{}> .",
        datagen::eurostat::citizen_member("SY")
            .as_iri()
            .unwrap()
            .as_str()
    ));
    assert!(syria_total > 0.0, "the 900-row sample has Syrian applicants");

    // Make the citizenship hierarchy ragged at Syria (no continent), then
    // open a fresh querying module so both backends see the mutated store.
    assert!(cut_broader_links(&tool, &datagen::eurostat::citizen_member("SY")) > 0);
    let querying = tool.querying(&dataset).unwrap();

    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        sparql_cube, columnar_cube,
        "backends disagree on the ragged citizenship roll-up"
    );
    // Both drop exactly the observations of the now-ragged member.
    assert!(
        (sparql_cube.first_measure_total() - (full_total - syria_total)).abs() < 1e-6,
        "expected the roll-up to lose exactly Syria's total"
    );

    // A query that keeps citizenship at the bottom level still sees Syria.
    let prepared = querying
        .prepare(&datagen::workload::totals_by_citizenship())
        .unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(sparql_cube, columnar_cube);
    assert!((sparql_cube.first_measure_total() - full_total).abs() < 1e-6);
}

#[test]
fn ragged_middle_of_a_multi_level_rollup_is_pinned_in_both_backends() {
    let (tool, dataset) = demo_tool(700);

    // Cut the continent → citAll link of Africa: African citizens can then
    // reach `continent` but not `citAll`.
    assert!(cut_broader_links(&tool, &datagen::eurostat::continent_member("Africa")) > 0);
    let querying = tool.querying(&dataset).unwrap();

    let to_cit_all = "PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:citAll);
";
    let prepared = querying.prepare(to_cit_all).unwrap();
    let sparql_cube = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar_cube = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        sparql_cube, columnar_cube,
        "backends disagree when the middle of a two-step roll-up is ragged"
    );

    // Rolling up only to `continent` is unaffected by the missing top link.
    let prepared = querying
        .prepare(&datagen::workload::rollup_citizenship_to_continent())
        .unwrap();
    let direct = querying.execute(&prepared, SparqlVariant::Direct).unwrap();
    let columnar = querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(direct, columnar);
    assert!(direct
        .cells
        .iter()
        .any(|c| c.coordinates.contains(&datagen::eurostat::continent_member("Africa"))));
}
