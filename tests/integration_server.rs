//! The HTTP serving front end, end to end (ISSUE 10, ARCHITECTURE.md
//! §"HTTP serving").
//!
//! Two families of coverage:
//!
//! * **protocol hardening** — malformed request lines and headers, bodies
//!   past the cap, unknown routes, unsupported methods, stalled requests,
//!   handler deadlines, pool saturation, keep-alive reuse and graceful
//!   shutdown each get the *specific* status code the contract promises
//!   (`400`/`404`/`405`/`408`/`413`/`429`), never a hang or a panic;
//! * **wire fidelity** — over the E7 workload, every `/ql` and `/sparql`
//!   response body is **bit-identical** to serializing the library-side
//!   result with the same canonical serializer, and engine errors arrive
//!   as `400` with the engine's own message.
//!
//! Protocol tests run over an empty endpoint (no cube needed); fidelity
//! tests build the demo cube once per test.

use std::time::Duration;

use qb2olap::Qb2Olap;
use qb2olap_server::client::Client;
use qb2olap_server::{
    cube_to_json, percent_encode, solutions_to_json, QbServer, ServerConfig,
};
use sparql::Endpoint;

/// A server over an empty endpoint — enough for every protocol-level test.
fn empty_server(config: ServerConfig) -> QbServer {
    qb2olap_server::start(Qb2Olap::with_empty_endpoint(), config).expect("bind server")
}

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 8,
        request_timeout: Duration::from_secs(5),
        keepalive_idle: Duration::from_millis(500),
        max_body_bytes: 4096,
        max_head_bytes: 2048,
        debug_delay_header: true,
        ..ServerConfig::default()
    }
}

#[test]
fn malformed_requests_get_specific_errors() {
    let server = empty_server(test_config());

    // Each raw byte salvo opens a fresh connection: error responses close it.
    let check = |raw: &str, want_status: u16, want_fragment: &str| {
        let mut client = Client::connect(server.addr()).expect("connect");
        client.send_raw(raw.as_bytes()).expect("send");
        let response = client.read_response().expect("response");
        assert_eq!(
            response.status,
            want_status,
            "{raw:?} → {}",
            response.body_text()
        );
        assert!(
            response.body_text().contains(want_fragment),
            "{raw:?} body {:?} lacks {want_fragment:?}",
            response.body_text()
        );
    };

    check("GARBAGE\r\n\r\n", 400, "malformed request line");
    check("GET /x HTTP/9.9\r\n\r\n", 400, "unsupported protocol");
    check("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400, "malformed header");
    check(
        "POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        400,
        "Content-Length",
    );
    check(
        "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        400,
        "Transfer-Encoding",
    );
    check("DELETE /ql HTTP/1.1\r\n\r\n", 405, "DELETE");
    check(
        "POST /ql HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
        413,
        "exceeds",
    );
    let huge_head = format!("GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(4096));
    check(&huge_head, 431, "request head");

    // Routing-level errors ride a healthy connection.
    let mut client = Client::connect(server.addr()).expect("connect");
    let response = client.get("/no/such/route").expect("request");
    assert_eq!(response.status, 404);
    let response = client.get("/ql").expect("request");
    assert_eq!(response.status, 400, "missing query text is a client error");
    assert!(response.body_text().contains("missing query"));

    let snapshot = server.metrics();
    assert!(snapshot.counter("server.responses.400") >= 4);
    assert!(snapshot.counter("server.responses.404") >= 1);
    server.shutdown();
}

#[test]
fn stalled_and_overlong_requests_time_out_as_408() {
    let mut config = test_config();
    config.request_timeout = Duration::from_millis(100);
    config.keepalive_idle = Duration::from_millis(200);
    let server = empty_server(config);

    // A handler that overruns the per-request deadline: the response is
    // replaced with 408.
    let mut client = Client::connect(server.addr()).expect("connect");
    let response = client
        .request("GET", "/health", None, &[("X-Qb2olap-Test-Sleep-Ms", "250")])
        .expect("request");
    assert_eq!(response.status, 408, "deadline overrun → 408");
    assert!(response.body_text().contains("deadline"));

    // A request that stalls mid-flight (half a request line, then
    // silence): the read timeout fires and the server answers 408 rather
    // than waiting forever.
    let mut client = Client::connect(server.addr()).expect("connect");
    client.send_raw(b"GET /health HTT").expect("partial send");
    let response = client.read_response().expect("response");
    assert_eq!(response.status, 408, "mid-request stall → 408");

    assert!(server.metrics().counter("server.timeouts") >= 2);
    server.shutdown();
}

#[test]
fn saturated_pool_refuses_with_429() {
    let mut config = test_config();
    config.workers = 1;
    config.queue_capacity = 0; // rendezvous: admit only when a worker is idle
    let server = empty_server(config);
    let addr = server.addr();

    // Occupy the single worker...
    let busy = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .request("GET", "/health", None, &[("X-Qb2olap-Test-Sleep-Ms", "600")])
            .expect("request")
    });
    std::thread::sleep(Duration::from_millis(150));

    // ... so the next connection finds queue and workers full: 429 at
    // admission, before any handler runs.
    let mut refused = Client::connect(addr).expect("connect");
    let response = refused.get("/health").expect("request");
    assert_eq!(response.status, 429);
    assert!(response.body_text().contains("saturated"));

    // The busy request was unaffected by the refusal.
    let busy_response = busy.join().expect("busy thread");
    assert_eq!(busy_response.status, 200);

    assert!(server.metrics().counter("server.rejected.saturated") >= 1);
    server.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let server = empty_server(test_config());
    let mut client = Client::connect(server.addr()).expect("connect");

    assert_eq!(client.get("/health").expect("1st").status, 200);
    assert_eq!(client.get("/metrics").expect("2nd").status, 200);
    // Even an application error (404) keeps the connection usable.
    assert_eq!(client.get("/nope").expect("3rd").status, 404);
    assert_eq!(client.get("/health").expect("4th").status, 200);

    let snapshot = server.metrics();
    assert_eq!(
        snapshot.counter("server.connections"),
        1,
        "four requests, one connection"
    );
    assert_eq!(snapshot.counter("server.requests"), 4);
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let mut config = test_config();
    config.keepalive_idle = Duration::from_millis(200);
    let server = empty_server(config);
    let addr = server.addr();

    // A request still running when shutdown starts must complete.
    let in_flight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .request("GET", "/health", None, &[("X-Qb2olap-Test-Sleep-Ms", "300")])
            .expect("request")
    });
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown(); // blocks until workers drained

    let response = in_flight.join().expect("in-flight thread");
    assert_eq!(response.status, 200, "in-flight request drained, not dropped");

    // The listener is gone: new connections are refused (or reset at the
    // first read on platforms that accept into a dead backlog).
    let late = Client::connect(addr).and_then(|mut c| c.get("/health"));
    assert!(late.is_err(), "server no longer serves after shutdown");
}

#[test]
fn wire_responses_match_library_results_bit_for_bit() {
    let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(200))
        .expect("demo cube");
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let server = qb2olap_server::start(tool.clone(), test_config()).expect("bind server");
    let mut client = Client::connect(server.addr()).expect("connect");

    // /ql over the whole E7 workload: wire body == canonical serialization
    // of the library result computed on a settled snapshot.
    let querying = tool.querying(&cube.dataset).expect("enriched cube");
    let snapshot = querying.snapshot_settled().expect("settled snapshot");
    for (name, ql) in datagen::workload::bench_queries() {
        let prepared = querying.prepare(&ql).expect("prepare");
        let want = cube_to_json(
            &querying
                .execute_on_snapshot(&prepared, &snapshot)
                .expect("library execute"),
        );
        let response = client.post("/ql", &ql).expect("wire execute");
        assert_eq!(response.status, 200, "{name}: {}", response.body_text());
        assert_eq!(response.body_text(), want, "{name}: wire and library bodies differ");
        let epoch: u64 = response
            .header("x-qb2olap-epoch")
            .expect("epoch header")
            .parse()
            .expect("numeric epoch");
        assert_eq!(epoch, snapshot.epoch(), "{name}: served from the same epoch");
    }

    // /sparql: same contract against Endpoint::select.
    let sparql = "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 10";
    let want = solutions_to_json(&cube.endpoint.select(sparql).expect("library select"));
    let response = client
        .get(&format!("/sparql?query={}", percent_encode(sparql)))
        .expect("wire select");
    assert_eq!(response.status, 200);
    assert_eq!(response.body_text(), want);

    // Engine errors surface as 400 carrying the engine's own message.
    let broken_ql = "QUERY $C1 := ROLLUP (data:migr_asyappctzm, schema:nopeDim, schema:nope);";
    let library_error = querying.prepare(broken_ql).expect_err("bad QL").to_string();
    let response = client.post("/ql", broken_ql).expect("wire error");
    assert_eq!(response.status, 400);
    let want_error = format!(
        "{{\"error\":{}}}\n",
        qb2olap_server::http::json_string(&library_error)
    );
    assert_eq!(
        response.body_text(),
        want_error,
        "the engine's message travels to the client verbatim"
    );
    let bad_sparql = client.get("/sparql?query=NOT+SPARQL").expect("wire error");
    assert_eq!(bad_sparql.status, 400);

    server.shutdown();
}

#[test]
fn exploration_explain_and_metrics_are_served() {
    let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(200))
        .expect("demo cube");
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let server = qb2olap_server::start(tool, test_config()).expect("bind server");
    let mut client = Client::connect(server.addr()).expect("connect");

    let datasets = client.get("/datasets").expect("datasets");
    assert_eq!(datasets.status, 200);
    assert!(datasets.body_text().contains(cube.dataset.as_str()));

    let tree = client.get("/explore/schema").expect("schema");
    assert_eq!(tree.status, 200);
    assert!(tree.body_text().contains("citizenshipDim"));

    let summary = client.get("/explore/summary").expect("summary");
    assert_eq!(summary.status, 200);
    assert!(summary.body_text().contains("\"enriched\":true"));

    let level = rdf::vocab::eurostat_property::citizen();
    let members = client
        .get(&format!("/explore/members?level={}", percent_encode(level.as_str())))
        .expect("members");
    assert_eq!(members.status, 200, "{}", members.body_text());
    assert!(members.body_text().contains("\"members\":["));
    assert!(members.body_text().len() > 20, "members list is non-empty");

    let missing_level = client.get("/explore/members").expect("members sans level");
    assert_eq!(missing_level.status, 400);

    let explained = client
        .post("/explain", &datagen::workload::mary_query())
        .expect("explain");
    assert_eq!(explained.status, 200);
    assert!(explained.body_text().contains("EXPLAIN ANALYZE"));

    // Metrics: text by default, JSON on request, and the server's own
    // series appear alongside the engine's.
    let text = client.get("/metrics").expect("metrics text");
    assert_eq!(text.header("content-type"), Some("text/plain; charset=utf-8"));
    assert!(text.body_text().contains("server.requests"));
    assert!(text.body_text().contains("server.request.explain"));
    assert!(text.body_text().contains("server.latency_ns.explore"));
    assert!(text.body_text().contains("catalog."));
    let json = client.get("/metrics?format=json").expect("metrics json");
    assert_eq!(json.header("content-type"), Some("application/json"));
    assert!(json.body_text().contains("\"counters\""));

    server.shutdown();
}
