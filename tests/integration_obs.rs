//! Observability gates (wired into `ci.sh`):
//!
//! * **explain-smoke** — `EXPLAIN ANALYZE` on a workload query must name
//!   every pipeline step with timings and row counts, on both execution
//!   backends, with a non-empty logical plan.
//! * **metrics-invariant** — a delta-only mutation run must report zero
//!   rebuilds *through the metrics snapshot* (`catalog.refresh.rebuild`),
//!   not by scraping maintenance reports, so the counters themselves are
//!   part of the contract.
//! * **pruning-visibility** — zone-map segment pruning must be observable
//!   through the query profile alone: a selective dice reports
//!   `segments_pruned > 0`, a full roll-up reports exactly zero, and the
//!   plan carries a `SEGMENTS` line.

use qb2olap::{Endpoint, ExecutionBackend, Qb2Olap, SparqlVariant};
use rdf::vocab::{eurostat_property, qb, rdf as rdfv, sdmx_measure};
use rdf::{Literal, Term, Triple};

#[test]
fn explain_smoke_profiles_every_pipeline_step_on_both_backends() {
    let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(400)).unwrap();
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).unwrap();
    let prepared = querying.prepare(&datagen::workload::mary_query()).unwrap();

    let (sparql_cube, sparql_profile) = querying
        .execute_profiled(&prepared, SparqlVariant::Direct)
        .unwrap();
    assert_eq!(
        sparql_profile.step_names(),
        vec!["translate-sparql", "select", "assemble-cube"],
        "the SPARQL profile names every execution step"
    );
    assert!(
        !sparql_profile.plan.is_empty(),
        "the logical plan must not be empty"
    );
    assert_eq!(
        sparql_profile.plan.len(),
        prepared.pipeline.operation_count(),
        "one plan line per pipeline operation"
    );

    let (columnar_cube, columnar_profile) = querying
        .execute_profiled(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        columnar_profile.step_names(),
        vec![
            "materialize",
            "lower-pipeline",
            "plan-axes",
            "compile-filters",
            "scan",
            "aggregate",
            "assemble-cube"
        ],
        "the columnar profile names every execution step"
    );
    assert!(!columnar_profile.plan.is_empty());
    assert_eq!(sparql_cube, columnar_cube, "profiling must not break parity");

    // The facade's EXPLAIN renders both backends with their plans, step
    // timings and row counts.
    let explained = tool
        .explain(&cube.dataset, &datagen::workload::mary_query())
        .unwrap();
    assert!(explained.contains("EXPLAIN ANALYZE (backend=sparql:direct"));
    assert!(explained.contains("EXPLAIN ANALYZE (backend=columnar"));
    assert!(explained.contains("SLICE dimension=<"));
    assert!(explained.contains("rows="));
    assert!(explained.contains("scan"));
}

#[test]
fn query_profiles_expose_segment_pruning_through_the_profile_alone() {
    let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(400)).unwrap();
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).unwrap();

    // A dice on a continent that does not exist: the zone maps prove every
    // segment irrelevant, so the scan visits nothing — and the profile
    // says so without any access to the executor internals.
    let atlantis = "PREFIX data: <http://eurostat.linked-statistics.org/data/>;
PREFIX schema: <http://www.fing.edu.uy/inco/cubes/schemas/migr_asyapp#>;
QUERY
$C1 := ROLLUP (data:migr_asyappctzm, schema:citizenshipDim, schema:continent);
$C2 := DICE ($C1, schema:citizenshipDim|schema:continent|schema:continentName = \"Atlantis\");
";
    let prepared = querying.prepare(atlantis).unwrap();
    let (result, profile) = querying
        .execute_profiled(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert!(result.is_empty(), "no observation is Atlantean");
    assert!(
        profile.counter("segments_pruned") >= 1,
        "a selective dice must prune:\n{:?}",
        profile.counters
    );
    assert!(
        profile.counter("segments_pruned") + profile.counter("segments_dead")
            <= profile.counter("segments_total"),
        "segment counters must stay monotone:\n{:?}",
        profile.counters
    );
    assert_eq!(profile.counter("rows_scanned"), 0, "pruned segments are never read");
    assert!(
        profile.plan.iter().any(|line| line.starts_with("SEGMENTS ")),
        "the plan carries the segment summary:\n{:?}",
        profile.plan
    );

    // A full roll-up with no dice cannot prune anything.
    let prepared = querying
        .prepare(&datagen::workload::totals_by_citizenship())
        .unwrap();
    let (_, profile) = querying
        .execute_profiled(&prepared, ExecutionBackend::Columnar)
        .unwrap();
    assert_eq!(
        profile.counter("segments_pruned"),
        0,
        "nothing to prune without a dice:\n{:?}",
        profile.counters
    );
    assert!(profile.counter("segments_total") >= 1);

    // The same facts flow into the process-wide metrics registry.
    let snapshot = tool.metrics();
    assert!(snapshot.counter("cubestore.scan.segments_total") >= 2);
    assert!(snapshot.counter("cubestore.scan.segments_pruned") >= 1);
}

#[test]
fn delta_only_mutation_run_reports_zero_rebuilds_via_the_snapshot() {
    let cube = qb2olap::demo::setup_demo_cube(&datagen::EurostatConfig::small(300)).unwrap();
    let tool = Qb2Olap::new(cube.endpoint.clone());
    let querying = tool.querying(&cube.dataset).unwrap();
    let prepared = querying
        .prepare(&datagen::workload::totals_by_citizenship())
        .unwrap();
    querying
        .execute(&prepared, ExecutionBackend::Columnar)
        .unwrap();

    // Five pure appends — the incremental-maintenance sweet spot: each one
    // must refresh the served columns via the delta path.
    for i in 0..5u32 {
        let node = Term::iri(format!("http://example.org/obs/obs-late-{i}"));
        cube.endpoint
            .insert_triples(&[
                Triple::new(node.clone(), rdfv::type_(), Term::Iri(qb::observation())),
                Triple::new(node.clone(), qb::data_set(), Term::Iri(cube.dataset.clone())),
                Triple::new(
                    node.clone(),
                    eurostat_property::citizen(),
                    datagen::eurostat::citizen_member("SY"),
                ),
                Triple::new(node, sdmx_measure::obs_value(), Literal::integer(10 + i as i64)),
            ])
            .unwrap();
        querying
            .execute(&prepared, ExecutionBackend::Columnar)
            .unwrap();
    }

    // The invariant is asserted on the metrics snapshot alone.
    let snapshot = tool.metrics();
    assert_eq!(
        snapshot.counter("catalog.refresh.fresh"),
        1,
        "exactly one initial materialization"
    );
    assert!(
        snapshot.counter("catalog.refresh.delta") >= 5,
        "every append must refresh via the delta path:\n{}",
        snapshot.render_text()
    );
    assert_eq!(
        snapshot.counter("catalog.refresh.rebuild"),
        0,
        "a delta-only mutation run must never rebuild:\n{}",
        snapshot.render_text()
    );
    assert_eq!(
        snapshot.counter_prefix_sum("catalog.refusal."),
        0,
        "no delta refusals on pure appends"
    );
    assert!(snapshot.counter("ql.execute.columnar") >= 6);
}
