//! The qlsmith campaign: seeded, grammar-covering differential fuzzing of
//! the whole QL pipeline (three execution backends, bit-identical cells)
//! and of the SPARQL SELECT surface (direct AST evaluation vs the
//! pretty-print → parse → evaluate text path), interleaved with live store
//! mutations so generated queries also run against delta-refreshed,
//! tombstoned and rebuild-fallback catalog states.
//!
//! Knobs (see `crates/fuzz/src/lib.rs`): `QB2OLAP_FUZZ_SEED`,
//! `QB2OLAP_FUZZ_PROGRAMS`, `QB2OLAP_FUZZ_QUERIES`. `ci.sh` pins the seed
//! and raises both counts to 500.

use std::path::Path;

use ql::cubestore::MaintenanceStrategy;
use ql::ast::{CubeRef, DiceCondition, DiceOp, DiceOperand, DiceValue, QlOperation};
use ql::{CubeCell, QlError, QueryingModule, ResultCube};
use qlsmith::corpus::{corpus_programs, read_corpus_file, write_corpus_file};
use qlsmith::diff::{check_program, check_select, ModuleOracle, QlOracle};
use qlsmith::fixture::{firi, fuzz_cube, FuzzCube};
use qlsmith::ql_gen::{assemble, GrammarCoverage, QlGenerator};
use qlsmith::shrink::shrink_ql;
use qlsmith::sparql_gen::{SparqlCoverage, SparqlGenerator};
use qlsmith::universe::SchemaUniverse;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Applies one store mutation, cycling through the three kinds the
/// mutation fuzzer exercises: hierarchy raggedness toggles (refused by
/// the delta path → rebuild), observation appends (delta) and whole-row
/// removals (delta + tombstone, eventually compaction).
fn mutate(cube: &mut FuzzCube, rng: &mut StdRng, round: usize) {
    match round % 3 {
        0 => cube.toggle_ragged_link(),
        1 => cube.append_observation(rng),
        _ => {
            cube.remove_observation(rng);
        }
    }
}

#[test]
fn ql_campaign_is_bit_identical_across_backends_and_mutations() {
    let mut cube = fuzz_cube();
    let endpoint = cube.endpoint.clone();
    let schema = cube.schema.clone();
    let universe = SchemaUniverse::from_endpoint(&endpoint, &schema).unwrap();
    let generator = QlGenerator::new(&universe, &schema);
    let module = QueryingModule::with_schema(&endpoint, schema.clone());
    let oracle = ModuleOracle::new(&module);

    let programs = qlsmith::campaign_programs();
    let mut rng = StdRng::seed_from_u64(qlsmith::campaign_seed());
    let mut coverage = GrammarCoverage::default();
    coverage.record_aggregates(&universe);

    for spotlight in 0..programs {
        if spotlight > 0 && spotlight % 10 == 0 {
            mutate(&mut cube, &mut rng, spotlight / 10);
        }
        let program = generator.generate(&mut rng, spotlight);
        coverage.record(&program);
        let text = program.to_ql_string();
        let verdict = check_program(&oracle, &text)
            .unwrap_or_else(|e| panic!("program {spotlight} failed to execute: {e}\n{text}"));
        assert!(
            verdict.is_none(),
            "program {spotlight} diverged: {verdict:?}"
        );
    }

    // The campaign ends with a per-production metrics snapshot
    // (`fuzz.ql.production.*` counters): the grammar gate reads hit counts
    // from it, not from recorder-internal state.
    let snapshot = coverage.snapshot();
    assert_eq!(
        GrammarCoverage::missing_in(&snapshot),
        Vec::<&'static str>::new(),
        "the campaign must touch every QL grammar production:\n{}",
        snapshot.render_text()
    );
    assert!(
        snapshot.counter("fuzz.ql.production.qloperation-slice") >= 1
            && snapshot.counter("fuzz.ql.production.diceop-ne") >= 1,
        "per-production hit counts are readable from the snapshot"
    );

    // The campaign really ran against mid-mutation-sequence states: the
    // catalog saw the first build, delta refreshes (appends/removals) and
    // refusal-driven rebuild fallbacks (raggedness toggles).
    let reports = module.maintenance_reports();
    let strategies: Vec<MaintenanceStrategy> = reports.iter().map(|r| r.strategy).collect();
    assert!(
        strategies.contains(&MaintenanceStrategy::Delta)
            || strategies.contains(&MaintenanceStrategy::Overlay),
        "appends/removals must refresh incrementally (delta fold or overlay \
         accretion): {strategies:?}"
    );
    assert!(
        strategies.contains(&MaintenanceStrategy::Rebuild),
        "raggedness toggles must force rebuild fallbacks: {strategies:?}"
    );
    assert_eq!(
        strategies.first(),
        Some(&MaintenanceStrategy::Fresh),
        "the history starts with the first materialization"
    );
}

#[test]
fn sparql_campaign_text_and_parsed_paths_agree() {
    let mut cube = fuzz_cube();
    let endpoint = cube.endpoint.clone();
    let schema = cube.schema.clone();
    let universe = SchemaUniverse::from_endpoint(&endpoint, &schema).unwrap();
    let generator = SparqlGenerator::new(&universe);

    let queries = qlsmith::campaign_queries();
    let mut rng = StdRng::seed_from_u64(qlsmith::campaign_seed() ^ 0x5A5E);
    let mut coverage = SparqlCoverage::default();

    for spotlight in 0..queries {
        if spotlight > 0 && spotlight % 10 == 0 {
            mutate(&mut cube, &mut rng, spotlight / 10);
        }
        let query = generator.generate(&mut rng, spotlight);
        coverage.record(&query);
        let mismatch = check_select(&endpoint, &query);
        assert!(
            mismatch.is_none(),
            "query {spotlight}: the two evaluation paths diverged: {mismatch:?}"
        );
    }

    let snapshot = coverage.snapshot();
    assert_eq!(
        SparqlCoverage::missing_in(&snapshot),
        Vec::<String>::new(),
        "the campaign must touch every SELECT grammar production:\n{}",
        snapshot.render_text()
    );
    assert!(
        snapshot.counter("fuzz.sparql.production.patternelement-triple") >= 1,
        "per-production hit counts are readable from the snapshot"
    );
}

/// An oracle with a deliberately seeded defect: whenever the program text
/// contains a `!=` dice it appends a phantom cell to the last backend's
/// result. The harness self-test below proves the differential driver
/// catches it, the shrinker reduces the trigger to one statement, and the
/// corpus round-trip replays it.
struct FaultyOracle<'e> {
    inner: ModuleOracle<'e>,
}

impl QlOracle for FaultyOracle<'_> {
    fn evaluate(&self, ql_text: &str) -> Result<Vec<(&'static str, ResultCube)>, QlError> {
        let mut results = self.inner.evaluate(ql_text)?;
        if ql_text.contains("!=") {
            if let Some((_, cube)) = results.last_mut() {
                cube.cells.push(CubeCell {
                    coordinates: Vec::new(),
                    values: Vec::new(),
                });
            }
        }
        Ok(results)
    }
}

fn measure_dice(measure: &str, op: DiceOp, value: f64) -> QlOperation {
    QlOperation::Dice {
        cube: CubeRef::Variable(String::new()),
        condition: DiceCondition::Comparison {
            operand: DiceOperand::Measure(firi(measure)),
            op,
            value: DiceValue::Number(value),
        },
    }
}

#[test]
fn seeded_mismatch_is_caught_shrunk_and_replayed_from_the_corpus() {
    let cube = fuzz_cube();
    let module = QueryingModule::with_schema(&cube.endpoint, cube.schema.clone());
    let real = ModuleOracle::new(&module);
    let faulty = FaultyOracle {
        inner: ModuleOracle::new(&module),
    };

    // A four-step program whose only "interesting" ingredient is the `!=`
    // dice the faulty oracle keys on.
    let program = assemble(
        firi("ds"),
        vec![
            QlOperation::Slice {
                cube: CubeRef::Variable(String::new()),
                dimension: firi("dim/cat"),
            },
            QlOperation::Rollup {
                cube: CubeRef::Variable(String::new()),
                dimension: firi("dim/geo"),
                level: firi("lv/country"),
            },
            measure_dice("m/int_sum", DiceOp::Gt, 1.0),
            measure_dice("m/int_sum", DiceOp::Ne, 7.0),
        ],
    );

    // 1. The differential driver catches the seeded defect…
    let full_text = program.to_ql_string();
    let caught = check_program(&faulty, &full_text).unwrap();
    assert!(caught.is_some(), "the driver must flag the seeded mismatch");
    // …which the honest oracle does not exhibit.
    assert!(check_program(&real, &full_text).unwrap().is_none());

    // 2. The shrinker reduces the trigger to a single statement.
    let minimal = shrink_ql(&program, &cube.schema, |text| {
        matches!(check_program(&faulty, text), Ok(Some(_)))
    });
    assert_eq!(
        minimal.statements.len(),
        1,
        "only the != dice should survive: {}",
        minimal.to_ql_string()
    );
    assert!(minimal.to_ql_string().contains("!="));

    // 3. The minimized trigger round-trips through a corpus file and
    //    replays green against the honest oracle.
    let dir = std::env::temp_dir().join("qlsmith-selftest-corpus");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("selftest-ne-dice.ql");
    write_corpus_file(
        &path,
        qlsmith::campaign_seed(),
        "harness self-test: seeded oracle defect on != dices",
        &minimal.to_ql_string(),
    )
    .unwrap();
    let entry = read_corpus_file(&path).unwrap();
    let replayed = ql::parse_ql(&entry.ql_text).unwrap();
    ql::simplify(&replayed, &cube.schema).unwrap();
    assert!(
        check_program(&real, &entry.ql_text).unwrap().is_none(),
        "the corpus entry must replay green on the honest oracle"
    );
    // The faulty oracle still trips on the replayed text, proving the
    // corpus file preserves the trigger, not just some program.
    assert!(check_program(&faulty, &entry.ql_text).unwrap().is_some());
    std::fs::remove_file(&path).ok();
}

#[test]
fn committed_corpus_replays_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = corpus_programs(&dir).unwrap();
    assert!(
        !entries.is_empty(),
        "the regression corpus must not be empty"
    );

    let cube = fuzz_cube();
    let module = QueryingModule::with_schema(&cube.endpoint, cube.schema.clone());
    let oracle = ModuleOracle::new(&module);
    for (path, entry) in entries {
        let program = ql::parse_ql(&entry.ql_text)
            .unwrap_or_else(|e| panic!("{}: corpus entry does not parse: {e}", path.display()));
        ql::simplify(&program, &cube.schema)
            .unwrap_or_else(|e| panic!("{}: corpus entry is ill-formed: {e}", path.display()));
        let verdict = check_program(&oracle, &entry.ql_text)
            .unwrap_or_else(|e| panic!("{}: corpus entry failed to execute: {e}", path.display()));
        assert!(
            verdict.is_none(),
            "{}: corpus entry regressed: {verdict:?}",
            path.display()
        );
    }
}
