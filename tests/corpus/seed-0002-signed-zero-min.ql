# qlsmith regression
# seed: 0xe155eed
# note: MIN over a float measure whose pool holds -0.0/+0.0 ties; guards the
# sign-normalizing tie-break in sparql::numeric::float_min (an earlier draft
# let the scan order pick the winning zero, so backends with different row
# orders disagreed on the sign bit)

QUERY
$C1 := ROLLUP (<http://qlsmith.example/ds>, <http://qlsmith.example/dim/geo>, <http://qlsmith.example/lv/country>);
$C2 := DICE ($C1, <http://qlsmith.example/m/float_min> <= 0);
