# qlsmith regression
# seed: 0xe155eed
# note: harness self-test shape — a lone != dice over the integer SUM measure

QUERY
$C1 := DICE (<http://qlsmith.example/ds>, <http://qlsmith.example/m/int_sum> != 7);
