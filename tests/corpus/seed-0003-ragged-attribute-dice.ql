# qlsmith regression
# seed: 0xe155eed
# note: roll-up to the ragged continent level (country K2 has no continent)
# followed by a string-attribute dice at the target level; guards the
# ragged-member drop semantics agreeing across all three backends

QUERY
$C1 := ROLLUP (<http://qlsmith.example/ds>, <http://qlsmith.example/dim/geo>, <http://qlsmith.example/lv/continent>);
$C2 := DICE ($C1, <http://qlsmith.example/dim/geo>|<http://qlsmith.example/lv/continent>|<http://qlsmith.example/attr/continentCode> = "AF");
